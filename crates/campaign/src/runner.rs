//! Parallel campaign runner: seeded trials fanned over worker threads.
//!
//! Determinism contract: every trial outcome depends only on
//! `(master_seed, scheme, trial_index)` (see [`TrialExecutor::run`]) —
//! plus the stratification plan, itself a pure function of the config —
//! and aggregation is commutative integer counting plus an
//! order-normalizing sort of the event log. A campaign's
//! [`CampaignResult`] is therefore **bit-identical** for any worker
//! count, including 1, no matter how the scheduler interleaves workers.
//!
//! # Work distribution
//!
//! Workers claim *chunks* of the trial range from a shared atomic
//! cursor (work-stealing), rather than fixed strided slices: a worker
//! that gets descheduled — or draws a run of expensive faulty trials —
//! simply claims fewer chunks, so stragglers no longer bound the
//! wall-clock. Chunks are large enough (64–65536 trials) that cursor
//! traffic is negligible, and each worker accumulates into its own
//! cache-line-padded [`Partial`] slot, so no two workers ever write the
//! same line (no false sharing on the accumulators).

use crate::sampler::{StrataPlan, Stratum};
use crate::trial::{CampaignScheme, TrialExecutor, TrialOutcome, TrialResult};
use dve_reliability::accel::AccelParams;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// How trial fault samples are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Every trial draws from the plain per-chip Bernoulli law.
    Plain,
    /// Trials are partitioned into `(fault count, all-chip)` strata with
    /// rare cells oversampled; estimates are reweighted by the exact
    /// cell masses (see [`StrataPlan`]). `tail_min` is the lower edge of
    /// the aggregated tail cells.
    Stratified {
        /// Counts `>= tail_min` share one pair of tail cells.
        tail_min: u8,
    },
}

impl SamplingMode {
    /// The default stratified mode (tail edge at
    /// [`crate::sampler::DEFAULT_TAIL_MIN`]).
    pub fn stratified_default() -> SamplingMode {
        SamplingMode::Stratified {
            tail_min: crate::sampler::DEFAULT_TAIL_MIN,
        }
    }
}

/// Campaign-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master seed; everything derives from it.
    pub master_seed: u64,
    /// Trials per scheme.
    pub trials: u64,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Accelerated window parameters shared by sampler and the
    /// analytical cross-check.
    pub params: AccelParams,
    /// Memory operations replayed per faulty trial (0 disables the
    /// system replay; adjudication still runs).
    pub replay_ops: u64,
    /// Plain Monte Carlo or stratified rare-event sampling.
    pub sampling: SamplingMode,
}

/// Worker count for tests that must exercise the parallel claim/merge
/// path regardless of the host's core count. Campaign results are
/// bit-identical for any worker count, so tests pin this rather than
/// trusting `available_parallelism` (which reports 1 in small CI
/// containers, where a default of 1 worker would silently skip the
/// merge logic under test).
pub const MERGE_TEST_WORKERS: usize = 2;

impl CampaignConfig {
    /// The paper-accelerated default: 10k plain trials on every
    /// available core (1 worker on a single-core machine — tests that
    /// need the merge path exercised pin [`MERGE_TEST_WORKERS`]
    /// instead of relying on this default).
    pub fn paper_default() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0xD5E_2021,
            trials: 10_000,
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            params: AccelParams::paper_accelerated(),
            replay_ops: 0,
            sampling: SamplingMode::Plain,
        }
    }
}

/// Integer outcome histogram for one scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// No data at risk.
    pub clean: u64,
    /// Corrected, all faults transient.
    pub ce_transient: u64,
    /// Corrected but permanently degraded.
    pub ce_degraded: u64,
    /// Detected uncorrectable.
    pub due: u64,
    /// Silent data corruption.
    pub sdc: u64,
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::Clean => self.clean += 1,
            TrialOutcome::CeTransient => self.ce_transient += 1,
            TrialOutcome::CeDegraded => self.ce_degraded += 1,
            TrialOutcome::Due => self.due += 1,
            TrialOutcome::Sdc => self.sdc += 1,
        }
    }

    /// Merges another histogram in (order-independent).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.clean += other.clean;
        self.ce_transient += other.ce_transient;
        self.ce_degraded += other.ce_degraded;
        self.due += other.due;
        self.sdc += other.sdc;
    }

    /// Total trials recorded.
    pub fn total(&self) -> u64 {
        self.clean + self.ce_transient + self.ce_degraded + self.due + self.sdc
    }
}

/// One stratum's share of a stratified campaign: the cell, its exact
/// probability mass under the plain law, its allocated trials and the
/// outcome histogram observed inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumResult {
    /// Which cell.
    pub stratum: Stratum,
    /// Exact cell mass under the plain sampling law.
    pub weight: f64,
    /// Trials allocated to the cell.
    pub trials: u64,
    /// Outcomes observed within the cell.
    pub counts: OutcomeCounts,
}

/// One scheme's campaign output.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The scheme exercised.
    pub scheme: CampaignScheme,
    /// Outcome histogram over all trials.
    pub counts: OutcomeCounts,
    /// Sum of pair-overlap counts across trials (Dvé DUE driver).
    pub overlap_sum: u64,
    /// Sum of sampled fault counts across trials.
    pub fault_sum: u64,
    /// Per-stratum breakdown; empty for plain campaigns.
    pub strata: Vec<StratumResult>,
    /// Recovery events from faulty-trial replays, tagged by trial and
    /// sorted by `(trial, at, addr)` so the log is deterministic for
    /// any worker count.
    pub events: Vec<(u64, dve::RecoveryEvent)>,
}

/// Per-worker accumulator, padded out to its own pair of cache lines so
/// adjacent workers' slots never share one (the false sharing that made
/// the old runner *lose* throughput from 1 to 2 workers).
#[repr(align(128))]
#[derive(Debug, Default)]
struct Partial {
    counts: OutcomeCounts,
    overlap_sum: u64,
    fault_sum: u64,
    strata_counts: Vec<OutcomeCounts>,
    events: Vec<(u64, dve::RecoveryEvent)>,
}

impl Partial {
    fn absorb(&mut self, stratum: Option<usize>, r: TrialResult) {
        self.counts.record(r.outcome);
        if let Some(idx) = stratum {
            self.strata_counts[idx].record(r.outcome);
        }
        self.overlap_sum += r.overlap as u64;
        self.fault_sum += r.fault_count as u64;
        let trial = r.trial;
        self.events.extend(r.events.into_iter().map(|e| (trial, e)));
    }
}

/// Chunk of trials claimed per cursor bump: large enough that the
/// shared cursor sees a few hundred claims per campaign at most, small
/// enough that stealing still load-balances tail stragglers.
fn chunk_size(trials: u64, workers: usize) -> u64 {
    (trials / (workers as u64 * 32)).clamp(64, 65_536)
}

/// Runs one scheme's campaign under `cfg`.
///
/// # Example
///
/// ```
/// use dve_campaign::runner::{run_campaign, CampaignConfig};
/// use dve_campaign::trial::CampaignScheme;
///
/// let mut cfg = CampaignConfig::paper_default();
/// cfg.trials = 200;
/// cfg.workers = 2;
/// let r = run_campaign(&cfg, CampaignScheme::Chipkill);
/// assert_eq!(r.counts.total(), 200);
/// ```
pub fn run_campaign(cfg: &CampaignConfig, scheme: CampaignScheme) -> CampaignResult {
    let workers = cfg.workers.max(1);
    let plan: Option<StrataPlan> = match cfg.sampling {
        SamplingMode::Plain => None,
        SamplingMode::Stratified { tail_min } => Some(
            TrialExecutor::new(scheme, cfg.params, cfg.replay_ops)
                .strata_plan(tail_min, cfg.trials),
        ),
    };
    let n_strata = plan.as_ref().map_or(0, |p| p.strata.len());
    let mut partials: Vec<Partial> = (0..workers)
        .map(|_| Partial {
            strata_counts: vec![OutcomeCounts::default(); n_strata],
            ..Partial::default()
        })
        .collect();

    let cursor = AtomicU64::new(0);
    let chunk = chunk_size(cfg.trials, workers);
    thread::scope(|s| {
        for part in partials.iter_mut() {
            let cfg = *cfg;
            let cursor = &cursor;
            let plan = plan.as_ref();
            s.spawn(move || {
                let exec = TrialExecutor::new(scheme, cfg.params, cfg.replay_ops);
                // One scratch per worker: trial outcomes depend only on
                // `(master_seed, scheme, trial)`, never on buffer reuse,
                // so sharing scratch across a worker's claimed chunks
                // keeps results bit-identical while eliminating the
                // per-trial allocation churn.
                let mut scratch = exec.make_scratch();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= cfg.trials {
                        break;
                    }
                    let end = (start + chunk).min(cfg.trials);
                    for trial in start..end {
                        let r = match plan {
                            None => exec.run_with(cfg.master_seed, trial, &mut scratch),
                            Some(p) => {
                                exec.run_stratified_with(cfg.master_seed, trial, p, &mut scratch)
                            }
                        };
                        part.absorb(plan.map(|p| p.stratum_of(trial)), r);
                    }
                }
            });
        }
    });

    let mut counts = OutcomeCounts::default();
    let mut overlap_sum = 0;
    let mut fault_sum = 0;
    let mut strata_counts = vec![OutcomeCounts::default(); n_strata];
    let mut events = Vec::new();
    for p in partials {
        counts.merge(&p.counts);
        overlap_sum += p.overlap_sum;
        fault_sum += p.fault_sum;
        for (acc, c) in strata_counts.iter_mut().zip(&p.strata_counts) {
            acc.merge(c);
        }
        events.extend(p.events);
    }
    // Normalize the merge order away. Every addend above is commutative
    // and this sort key is unique per trial block, so the result cannot
    // depend on which worker claimed which chunk.
    events.sort_by_key(|(trial, e)| (*trial, e.at, e.addr));
    let strata = plan.map_or_else(Vec::new, |p| {
        p.strata
            .iter()
            .zip(strata_counts)
            .map(|(spec, counts)| StratumResult {
                stratum: spec.stratum,
                weight: spec.weight,
                trials: spec.trials,
                counts,
            })
            .collect()
    });
    CampaignResult {
        scheme,
        counts,
        overlap_sum,
        fault_sum,
        strata,
        events,
    }
}

/// Runs all schemes in [`CampaignScheme::ALL`] order.
pub fn run_all(cfg: &CampaignConfig) -> Vec<CampaignResult> {
    CampaignScheme::ALL
        .iter()
        .map(|&s| run_campaign(cfg, s))
        .collect()
}

/// Wilson score interval for a binomial proportion at ~95% confidence
/// (`z = 1.96`). Returns `(low, high)`; well-behaved at `successes = 0`
/// (low = 0 exactly) unlike the normal approximation.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    let low = ((center - spread) / denom).max(0.0);
    let high = ((center + spread) / denom).min(1.0);
    (low, high)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> CampaignConfig {
        CampaignConfig {
            master_seed: 0xBEEF,
            trials: 600,
            workers,
            params: AccelParams::paper_accelerated(),
            replay_ops: 8,
            sampling: SamplingMode::Plain,
        }
    }

    #[test]
    fn identical_across_worker_counts() {
        for scheme in CampaignScheme::ALL {
            let one = run_campaign(&small_cfg(1), scheme);
            let four = run_campaign(&small_cfg(4), scheme);
            let seven = run_campaign(&small_cfg(7), scheme);
            assert_eq!(one, four, "{}", scheme.label());
            assert_eq!(one, seven, "{}", scheme.label());
        }
    }

    #[test]
    fn stratified_identical_across_worker_counts() {
        let stratified = |workers| {
            let mut cfg = small_cfg(workers);
            cfg.sampling = SamplingMode::stratified_default();
            cfg
        };
        for scheme in CampaignScheme::ALL {
            let one = run_campaign(&stratified(1), scheme);
            let many = run_campaign(&stratified(MERGE_TEST_WORKERS), scheme);
            let odd = run_campaign(&stratified(5), scheme);
            assert_eq!(one, many, "{}", scheme.label());
            assert_eq!(one, odd, "{}", scheme.label());
        }
    }

    #[test]
    fn identical_across_runs() {
        let cfg = small_cfg(3);
        let a = run_campaign(&cfg, CampaignScheme::DveChipkill);
        let b = run_campaign(&cfg, CampaignScheme::DveChipkill);
        assert_eq!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut cfg = small_cfg(2);
        let a = run_campaign(&cfg, CampaignScheme::Chipkill);
        cfg.master_seed ^= 1;
        let b = run_campaign(&cfg, CampaignScheme::Chipkill);
        assert_ne!(a.counts, b.counts);
    }

    #[test]
    fn totals_match_trials() {
        let cfg = small_cfg(5);
        for r in run_all(&cfg) {
            assert_eq!(r.counts.total(), cfg.trials, "{}", r.scheme.label());
            assert!(r.strata.is_empty(), "plain campaign grew strata");
        }
    }

    #[test]
    fn stratified_counts_match_the_plan() {
        let mut cfg = small_cfg(MERGE_TEST_WORKERS);
        cfg.trials = 5_000;
        cfg.replay_ops = 0;
        cfg.sampling = SamplingMode::stratified_default();
        let r = run_campaign(&cfg, CampaignScheme::DveDsd);
        assert_eq!(r.counts.total(), cfg.trials);
        let per_cell: u64 = r.strata.iter().map(|s| s.counts.total()).sum();
        assert_eq!(per_cell, cfg.trials, "every trial lands in its cell");
        for s in &r.strata {
            assert_eq!(s.counts.total(), s.trials, "{}", s.stratum.label());
        }
        let mass: f64 = r.strata.iter().map(|s| s.weight).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_sorted_and_tagged() {
        let r = run_campaign(&small_cfg(4), CampaignScheme::DveTsd);
        assert!(!r.events.is_empty(), "replay produced no events");
        let keys: Vec<_> = r.events.iter().map(|(t, e)| (*t, e.at, e.addr)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(r.events.iter().all(|(t, _)| *t < 600));
    }

    #[test]
    fn wilson_brackets_the_point_estimate() {
        let (lo, hi) = wilson_interval(50, 1000);
        assert!(lo < 0.05 && 0.05 < hi);
        assert!(lo > 0.03 && hi < 0.07);
        let (lo, hi) = wilson_interval(0, 1000);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
        let (lo, hi) = wilson_interval(1000, 1000);
        assert!(lo > 0.99 && hi == 1.0);
    }

    #[test]
    fn chipkill_due_rate_is_plausible() {
        // P(k >= 2) with n = 9, p = 0.05 is about 7.1%; 10k trials keep
        // the empirical rate within a generous band.
        let mut cfg = small_cfg(4);
        cfg.trials = 10_000;
        cfg.replay_ops = 0;
        let r = run_campaign(&cfg, CampaignScheme::Chipkill);
        let rate = (r.counts.due + r.counts.sdc) as f64 / cfg.trials as f64;
        assert!((0.05..0.09).contains(&rate), "rate {rate}");
    }
}
