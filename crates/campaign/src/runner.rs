//! Parallel campaign runner: seeded trials fanned over worker threads.
//!
//! Determinism contract: every trial outcome depends only on
//! `(master_seed, scheme, trial_index)` (see [`TrialExecutor::run`]),
//! and aggregation is pure integer counting plus an order-normalizing
//! sort of the event log — so a campaign's [`CampaignResult`] is
//! **bit-identical** for any worker count, including 1.
//!
//! Workers take strided slices of the trial range (`worker w` runs
//! trials `w, w + workers, w + 2·workers, …`), which balances load
//! without any shared mutable state beyond the final merge.

use crate::trial::{CampaignScheme, TrialExecutor, TrialOutcome, TrialResult};
use dve_reliability::accel::AccelParams;
use std::thread;

/// Campaign-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master seed; everything derives from it.
    pub master_seed: u64,
    /// Trials per scheme.
    pub trials: u64,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Accelerated window parameters shared by sampler and the
    /// analytical cross-check.
    pub params: AccelParams,
    /// Memory operations replayed per faulty trial (0 disables the
    /// system replay; adjudication still runs).
    pub replay_ops: u64,
}

impl CampaignConfig {
    /// The paper-accelerated default: 10k trials, all cores (at least
    /// two workers, so the parallel merge path is always exercised —
    /// results are identical for any worker count anyway).
    pub fn paper_default() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0xD5E_2021,
            trials: 10_000,
            workers: thread::available_parallelism().map_or(2, |n| n.get().max(2)),
            params: AccelParams::paper_accelerated(),
            replay_ops: 0,
        }
    }
}

/// Integer outcome histogram for one scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// No data at risk.
    pub clean: u64,
    /// Corrected, all faults transient.
    pub ce_transient: u64,
    /// Corrected but permanently degraded.
    pub ce_degraded: u64,
    /// Detected uncorrectable.
    pub due: u64,
    /// Silent data corruption.
    pub sdc: u64,
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::Clean => self.clean += 1,
            TrialOutcome::CeTransient => self.ce_transient += 1,
            TrialOutcome::CeDegraded => self.ce_degraded += 1,
            TrialOutcome::Due => self.due += 1,
            TrialOutcome::Sdc => self.sdc += 1,
        }
    }

    /// Merges another histogram in (order-independent).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.clean += other.clean;
        self.ce_transient += other.ce_transient;
        self.ce_degraded += other.ce_degraded;
        self.due += other.due;
        self.sdc += other.sdc;
    }

    /// Total trials recorded.
    pub fn total(&self) -> u64 {
        self.clean + self.ce_transient + self.ce_degraded + self.due + self.sdc
    }
}

/// One scheme's campaign output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// The scheme exercised.
    pub scheme: CampaignScheme,
    /// Outcome histogram over all trials.
    pub counts: OutcomeCounts,
    /// Sum of pair-overlap counts across trials (Dvé DUE driver).
    pub overlap_sum: u64,
    /// Sum of sampled fault counts across trials.
    pub fault_sum: u64,
    /// Recovery events from faulty-trial replays, tagged by trial and
    /// sorted by `(trial, at, addr)` so the log is deterministic for
    /// any worker count.
    pub events: Vec<(u64, dve::RecoveryEvent)>,
}

/// Runs one scheme's campaign under `cfg`.
///
/// # Example
///
/// ```
/// use dve_campaign::runner::{run_campaign, CampaignConfig};
/// use dve_campaign::trial::CampaignScheme;
///
/// let mut cfg = CampaignConfig::paper_default();
/// cfg.trials = 200;
/// cfg.workers = 2;
/// let r = run_campaign(&cfg, CampaignScheme::Chipkill);
/// assert_eq!(r.counts.total(), 200);
/// ```
pub fn run_campaign(cfg: &CampaignConfig, scheme: CampaignScheme) -> CampaignResult {
    let workers = cfg.workers.max(1);
    let mut partials: Vec<Partial> = Vec::with_capacity(workers);
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cfg = *cfg;
                s.spawn(move || {
                    let exec = TrialExecutor::new(scheme, cfg.params, cfg.replay_ops);
                    // One scratch per worker: trial outcomes depend only on
                    // `(master_seed, scheme, trial)`, never on buffer reuse,
                    // so sharing scratch across a worker's strided trials
                    // keeps results bit-identical while eliminating the
                    // per-trial allocation churn.
                    let mut scratch = exec.make_scratch();
                    let mut part = Partial::default();
                    let mut trial = w as u64;
                    while trial < cfg.trials {
                        part.absorb(exec.run_with(cfg.master_seed, trial, &mut scratch));
                        trial += workers as u64;
                    }
                    part
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("campaign worker panicked"));
        }
    });

    let mut counts = OutcomeCounts::default();
    let mut overlap_sum = 0;
    let mut fault_sum = 0;
    let mut events = Vec::new();
    for p in partials {
        counts.merge(&p.counts);
        overlap_sum += p.overlap_sum;
        fault_sum += p.fault_sum;
        events.extend(p.events);
    }
    // Normalize the merge order away.
    events.sort_by_key(|(trial, e)| (*trial, e.at, e.addr));
    CampaignResult {
        scheme,
        counts,
        overlap_sum,
        fault_sum,
        events,
    }
}

/// Runs all schemes in [`CampaignScheme::ALL`] order.
pub fn run_all(cfg: &CampaignConfig) -> Vec<CampaignResult> {
    CampaignScheme::ALL
        .iter()
        .map(|&s| run_campaign(cfg, s))
        .collect()
}

#[derive(Debug, Default)]
struct Partial {
    counts: OutcomeCounts,
    overlap_sum: u64,
    fault_sum: u64,
    events: Vec<(u64, dve::RecoveryEvent)>,
}

impl Partial {
    fn absorb(&mut self, r: TrialResult) {
        self.counts.record(r.outcome);
        self.overlap_sum += r.overlap as u64;
        self.fault_sum += r.fault_count as u64;
        let trial = r.trial;
        self.events.extend(r.events.into_iter().map(|e| (trial, e)));
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence
/// (`z = 1.96`). Returns `(low, high)`; well-behaved at `successes = 0`
/// (low = 0 exactly) unlike the normal approximation.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    let low = ((center - spread) / denom).max(0.0);
    let high = ((center + spread) / denom).min(1.0);
    (low, high)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> CampaignConfig {
        CampaignConfig {
            master_seed: 0xBEEF,
            trials: 600,
            workers,
            params: AccelParams::paper_accelerated(),
            replay_ops: 8,
        }
    }

    #[test]
    fn identical_across_worker_counts() {
        for scheme in CampaignScheme::ALL {
            let one = run_campaign(&small_cfg(1), scheme);
            let four = run_campaign(&small_cfg(4), scheme);
            let seven = run_campaign(&small_cfg(7), scheme);
            assert_eq!(one, four, "{}", scheme.label());
            assert_eq!(one, seven, "{}", scheme.label());
        }
    }

    #[test]
    fn identical_across_runs() {
        let cfg = small_cfg(3);
        let a = run_campaign(&cfg, CampaignScheme::DveChipkill);
        let b = run_campaign(&cfg, CampaignScheme::DveChipkill);
        assert_eq!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut cfg = small_cfg(2);
        let a = run_campaign(&cfg, CampaignScheme::Chipkill);
        cfg.master_seed ^= 1;
        let b = run_campaign(&cfg, CampaignScheme::Chipkill);
        assert_ne!(a.counts, b.counts);
    }

    #[test]
    fn totals_match_trials() {
        let cfg = small_cfg(5);
        for r in run_all(&cfg) {
            assert_eq!(r.counts.total(), cfg.trials, "{}", r.scheme.label());
        }
    }

    #[test]
    fn events_sorted_and_tagged() {
        let r = run_campaign(&small_cfg(4), CampaignScheme::DveTsd);
        assert!(!r.events.is_empty(), "replay produced no events");
        let keys: Vec<_> = r.events.iter().map(|(t, e)| (*t, e.at, e.addr)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(r.events.iter().all(|(t, _)| *t < 600));
    }

    #[test]
    fn wilson_brackets_the_point_estimate() {
        let (lo, hi) = wilson_interval(50, 1000);
        assert!(lo < 0.05 && 0.05 < hi);
        assert!(lo > 0.03 && hi < 0.07);
        let (lo, hi) = wilson_interval(0, 1000);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
        let (lo, hi) = wilson_interval(1000, 1000);
        assert!(lo > 0.99 && hi == 1.0);
    }

    #[test]
    fn chipkill_due_rate_is_plausible() {
        // P(k >= 2) with n = 9, p = 0.05 is about 7.1%; 10k trials keep
        // the empirical rate within a generous band.
        let mut cfg = small_cfg(4);
        cfg.trials = 10_000;
        cfg.replay_ops = 0;
        let r = run_campaign(&cfg, CampaignScheme::Chipkill);
        let rate = (r.counts.due + r.counts.sdc) as f64 / cfg.trials as f64;
        assert!((0.05..0.09).contains(&rate), "rate {rate}");
    }
}
