//! Empirical-vs-analytical cross-validation report and event-log
//! serialization.
//!
//! The sampler and the analytical [`AccelModel`] share one probability
//! space — independent per-chip failures at the same accelerated `p` —
//! so for every scheme the empirical uncorrectable mass (DUE + SDC,
//! since both spend the same "beyond the scheme's correction power"
//! budget) must land inside its Wilson interval around the model's
//! exact binomial expectation. Disagreement means the trial executor
//! and the §IV arithmetic have diverged, which is the bug this report
//! exists to catch.
//!
//! Two serializations of the per-trial recovery-event log ride along:
//! a human-greppable CSV and a compact fixed-record binary format with
//! magic header `DVECAMP1`.

use crate::runner::{
    wilson_interval, CampaignConfig, CampaignResult, OutcomeCounts, StratumResult,
};
use crate::sampler::Stratum;
use crate::trial::CampaignScheme;
use dve::{RecoveryEvent, RecoveryOutcome};
use dve_reliability::accel::{AccelModel, WindowProbs};
use dve_reliability::table1_rows;
use std::fmt;
use std::io::{self, Read, Write};

/// Did the empirical estimate agree with the analytical expectation?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The analytical value lies inside the 95% Wilson interval.
    Agree,
    /// It does not.
    Disagree,
}

/// Multiplicative slack granted to the SDC cross-check: the analytical
/// SDC terms are order-of-magnitude constants (the `n/q` miscorrection
/// locator hit-rate; the MDS minimum-weight escape density, which is
/// exact only for uniform-magnitude whole-chip faults), so the verdict
/// asks the model to land within the empirical CI *widened by this
/// factor* rather than inside it exactly. DUE combinatorics are exact
/// and get no such slack — only an additive allowance for the modeled
/// SDC mass, since the DUE/SDC *split* of the beyond-correction budget
/// is what the miscorrection constant approximates.
pub const SDC_MODEL_FIDELITY: f64 = 4.0;

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Agree => write!(f, "agree"),
            Verdict::Disagree => write!(f, "DISAGREE"),
        }
    }
}

/// One scheme's cross-validation row.
#[derive(Debug, Clone)]
pub struct SchemeReport {
    /// Scheme under test.
    pub scheme: CampaignScheme,
    /// Trials run.
    pub trials: u64,
    /// Empirical DUE proportion.
    pub empirical_due: f64,
    /// 95% Wilson interval around [`Self::empirical_due`].
    pub due_ci: (f64, f64),
    /// Analytical DUE expectation from [`AccelModel`].
    pub analytical_due: f64,
    /// Interval-membership verdict for the DUE rate.
    pub due_verdict: Verdict,
    /// Empirical SDC proportion.
    pub empirical_sdc: f64,
    /// 95% Wilson interval around [`Self::empirical_sdc`].
    pub sdc_ci: (f64, f64),
    /// Expected SDC mass (miscorrection / detection-miss model).
    pub analytical_sdc: f64,
    /// Interval-membership verdict for the SDC rate.
    pub sdc_verdict: Verdict,
    /// Per-stratum breakdown (empty for plain campaigns): cell mass,
    /// trial allocation, raw DUE/SDC counts and *conditional* Wilson
    /// intervals within each cell.
    pub strata: Vec<StratumRow>,
}

/// One stratum's row of a stratified scheme report.
#[derive(Debug, Clone)]
pub struct StratumRow {
    /// Which cell.
    pub stratum: Stratum,
    /// Exact cell mass under the plain law.
    pub weight: f64,
    /// Trials run inside the cell.
    pub trials: u64,
    /// DUE outcomes observed in the cell.
    pub due: u64,
    /// SDC outcomes observed in the cell.
    pub sdc: u64,
    /// 95% Wilson interval for the *conditional* DUE rate in the cell.
    pub due_ci: (f64, f64),
    /// 95% Wilson interval for the *conditional* SDC rate in the cell.
    pub sdc_ci: (f64, f64),
}

impl SchemeReport {
    /// Both rates agree with the model.
    pub fn agrees(&self) -> bool {
        self.due_verdict == Verdict::Agree && self.sdc_verdict == Verdict::Agree
    }

    /// Empirical uncorrectable mass (DUE + SDC).
    pub fn empirical_unc(&self) -> f64 {
        self.empirical_due + self.empirical_sdc
    }
}

/// The full campaign report: one row per scheme plus derived ratios.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-scheme rows, in [`CampaignScheme::ALL`] order.
    pub rows: Vec<SchemeReport>,
}

fn analytical(model: &AccelModel, scheme: CampaignScheme) -> WindowProbs {
    match scheme {
        CampaignScheme::Chipkill => model.chipkill(),
        CampaignScheme::DveDsd => model.dve_detect_only(),
        CampaignScheme::DveTsd => model.dve_tsd(),
        CampaignScheme::DveChipkill => model.dve_chipkill(),
    }
}

fn verdict(analytical: f64, ci: (f64, f64)) -> Verdict {
    if ci.0 <= analytical && analytical <= ci.1 {
        Verdict::Agree
    } else {
        Verdict::Disagree
    }
}

/// Reported intervals are 95% (`z = 1.96`); pass/fail *verdicts* use
/// the same intervals with their half-widths rescaled to `z = 3.89`
/// (two-sided ~99.99%). Eight verdicts gate every campaign run, and
/// stratification makes the 95% intervals tight *and* exactly
/// calibrated — an unbiased estimator misses a 95% interval 5% of the
/// time by construction, so gating at 95% would fail a clean long run
/// with probability ≈ 1 − 0.95⁸ ≈ 34%. At `z = 3.89` the per-run
/// false-alarm rate drops below 0.1% while any real bias larger than
/// ~2 interval widths still fails deterministically. (Verified
/// empirically: a 10⁷-trial stratified run put the Dvé+DSD DUE point
/// +2.9σ above the exact model value while a 2·10⁸-sample audit of the
/// conditional sampler showed no bias — exactly the fluctuation this
/// margin must absorb.)
const GATE_Z_SCALE: f64 = 3.89 / 1.96;

/// Rescales a 95% interval's half-widths around the point estimate to
/// the gate's `z` (see [`GATE_Z_SCALE`]).
fn gate_widen(point: f64, ci: (f64, f64)) -> (f64, f64) {
    (
        (point - GATE_Z_SCALE * (point - ci.0)).max(0.0),
        (point + GATE_Z_SCALE * (ci.1 - point)).min(1.0),
    )
}

/// Widens a CI additively on both sides (used to absorb the modeled
/// miscorrection mass into the DUE check, since the model's DUE/SDC
/// split of the exact beyond-correction budget is approximate).
fn widen_add(ci: (f64, f64), slack: f64) -> (f64, f64) {
    ((ci.0 - slack).max(0.0), ci.1 + slack)
}

/// Widens a CI multiplicatively by [`SDC_MODEL_FIDELITY`].
fn widen_mul(ci: (f64, f64)) -> (f64, f64) {
    (ci.0 / SDC_MODEL_FIDELITY, ci.1 * SDC_MODEL_FIDELITY)
}

/// Unbiased stratified estimate of an outcome rate with its ~95%
/// normal-approximation CI, from per-stratum counts and exact cell
/// masses: `p = Σ wₛ·p̂ₛ`, `Var = Σ wₛ²·p̃ₛ(1−p̃ₛ)/nₛ` with the
/// Agresti-style smoothed `p̃ₛ = (xₛ+½)/(nₛ+1)` in the variance term so
/// zero-count cells report honest (nonzero) uncertainty instead of a
/// collapsed interval. Cells with zero trials, zero/subnormal mass, or
/// a non-finite mass contribute nothing — in particular they never
/// divide by zero and never fold `inf`/`NaN` into the estimate. (The
/// plan builder already clamps underflowed masses to exactly `0.0` and
/// counts them as skipped; the guard here makes the estimator safe for
/// hand-built stratum results too.)
pub fn stratified_rate(
    strata: &[StratumResult],
    count: impl Fn(&OutcomeCounts) -> u64,
) -> (f64, (f64, f64)) {
    let mut point = 0.0;
    let mut var = 0.0;
    for s in strata {
        if s.trials == 0 || !s.weight.is_finite() || s.weight < f64::MIN_POSITIVE {
            continue;
        }
        let n = s.counts.total() as f64;
        let x = count(&s.counts) as f64;
        point += s.weight * (x / n);
        let smoothed = (x + 0.5) / (n + 1.0);
        var += s.weight * s.weight * smoothed * (1.0 - smoothed) / n;
    }
    let spread = 1.96 * var.sqrt();
    (
        point,
        ((point - spread).max(0.0), (point + spread).min(1.0)),
    )
}

impl CampaignReport {
    /// Cross-validates campaign results against the accelerated model.
    ///
    /// Plain campaigns use the raw outcome counts with Wilson
    /// intervals; stratified campaigns use the reweighted
    /// [`stratified_rate`] estimator (unbiased for the same plain-law
    /// rates) and additionally carry per-stratum rows.
    pub fn build(cfg: &CampaignConfig, results: &[CampaignResult]) -> CampaignReport {
        let model = AccelModel::new(cfg.params);
        let rows = results
            .iter()
            .map(|r| {
                let probs = analytical(&model, r.scheme);
                let n = r.counts.total();
                let (empirical_due, due_ci, empirical_sdc, sdc_ci) = if r.strata.is_empty() {
                    (
                        r.counts.due as f64 / n as f64,
                        wilson_interval(r.counts.due, n),
                        r.counts.sdc as f64 / n as f64,
                        wilson_interval(r.counts.sdc, n),
                    )
                } else {
                    let (due, due_ci) = stratified_rate(&r.strata, |c| c.due);
                    let (sdc, sdc_ci) = stratified_rate(&r.strata, |c| c.sdc);
                    (due, due_ci, sdc, sdc_ci)
                };
                let strata = r
                    .strata
                    .iter()
                    .map(|s| StratumRow {
                        stratum: s.stratum,
                        weight: s.weight,
                        trials: s.counts.total(),
                        due: s.counts.due,
                        sdc: s.counts.sdc,
                        due_ci: wilson_interval(s.counts.due, s.counts.total()),
                        sdc_ci: wilson_interval(s.counts.sdc, s.counts.total()),
                    })
                    .collect();
                SchemeReport {
                    scheme: r.scheme,
                    trials: n,
                    empirical_due,
                    due_ci,
                    analytical_due: probs.due,
                    due_verdict: verdict(
                        probs.due,
                        widen_add(gate_widen(empirical_due, due_ci), probs.sdc_expected),
                    ),
                    empirical_sdc,
                    sdc_ci,
                    analytical_sdc: probs.sdc_expected,
                    sdc_verdict: verdict(
                        probs.sdc_expected,
                        widen_mul(gate_widen(empirical_sdc, sdc_ci)),
                    ),
                    strata,
                }
            })
            .collect();
        CampaignReport { rows }
    }

    /// Every scheme agreed on both rates.
    pub fn all_agree(&self) -> bool {
        self.rows.iter().all(SchemeReport::agrees)
    }

    /// Empirical Chipkill-to-scheme DUE improvement ratio — the axis
    /// Table I quotes (`None` when the scheme observed zero DUE trials,
    /// i.e. the improvement is unbounded at this trial count, or the
    /// baseline row is missing).
    pub fn improvement_over_chipkill(&self, scheme: CampaignScheme) -> Option<f64> {
        let base = self
            .rows
            .iter()
            .find(|r| r.scheme == CampaignScheme::Chipkill)?;
        let row = self.rows.iter().find(|r| r.scheme == scheme)?;
        if row.empirical_due == 0.0 {
            return None;
        }
        Some(base.empirical_due / row.empirical_due)
    }

    /// Renders the full report, including the real-scale Table I rows
    /// the accelerated campaign is standing in for.
    pub fn render(&self, cfg: &CampaignConfig) -> String {
        let mut out = String::new();
        let p = cfg.params;
        out.push_str(&format!(
            "campaign: {} trials/scheme, seed {:#x}, {} workers, p(chip)={} over {} chips\n\n",
            cfg.trials, cfg.master_seed, cfg.workers, p.chip_fail_prob, p.chips_per_dimm
        ));
        out.push_str("scheme                DUE                                          SDC\n");
        out.push_str(&format!(
            "{:<14} {:>10} {:>23} {:>10} {:>8}   {:>10} {:>23} {:>10} {:>8}\n",
            "",
            "empirical",
            "95% CI",
            "analytic",
            "verdict",
            "empirical",
            "95% CI",
            "analytic",
            "verdict"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>10.2e} [{:>9.2e},{:>9.2e}] {:>10.2e} {:>8}   {:>10.2e} [{:>9.2e},{:>9.2e}] {:>10.2e} {:>8}\n",
                r.scheme.label(),
                r.empirical_due,
                r.due_ci.0,
                r.due_ci.1,
                r.analytical_due,
                r.due_verdict,
                r.empirical_sdc,
                r.sdc_ci.0,
                r.sdc_ci.1,
                r.analytical_sdc,
                r.sdc_verdict,
            ));
        }
        out.push('\n');
        for r in &self.rows {
            if r.strata.is_empty() {
                continue;
            }
            out.push_str(&format!("per-stratum breakdown ({}):\n", r.scheme.label()));
            out.push_str(&format!(
                "  {:<18} {:>12} {:>10} {:>6} {:>23} {:>6} {:>23}\n",
                "cell", "weight", "trials", "due", "due 95% CI", "sdc", "sdc 95% CI"
            ));
            for s in &r.strata {
                out.push_str(&format!(
                    "  {:<18} {:>12.4e} {:>10} {:>6} [{:>9.2e},{:>9.2e}] {:>6} [{:>9.2e},{:>9.2e}]\n",
                    s.stratum.label(),
                    s.weight,
                    s.trials,
                    s.due,
                    s.due_ci.0,
                    s.due_ci.1,
                    s.sdc,
                    s.sdc_ci.0,
                    s.sdc_ci.1,
                ));
            }
            out.push('\n');
        }
        for scheme in [CampaignScheme::DveDsd, CampaignScheme::DveChipkill] {
            match self.improvement_over_chipkill(scheme) {
                Some(x) => out.push_str(&format!(
                    "empirical DUE improvement, Chipkill -> {}: {:.1}x\n",
                    scheme.label(),
                    x
                )),
                None => out.push_str(&format!(
                    "empirical DUE improvement, Chipkill -> {}: unbounded (0 DUEs observed)\n",
                    scheme.label()
                )),
            }
        }
        out.push_str(&format!(
            "\noverall: {}\n",
            if self.all_agree() {
                "all schemes agree with the analytical model"
            } else {
                "MISMATCH between empirical and analytical rates"
            }
        ));
        out.push_str("\nreal-scale analytical Table I (per 10^9 hours) for reference:\n");
        for row in table1_rows() {
            out.push_str(&format!("  {row}\n"));
        }
        out
    }
}

// ---- event-log serialization ---------------------------------------

fn outcome_code(o: RecoveryOutcome) -> u8 {
    match o {
        RecoveryOutcome::Clean => 0,
        RecoveryOutcome::CorrectedTransient => 1,
        RecoveryOutcome::CorrectedDegraded => 2,
        RecoveryOutcome::MachineCheck => 3,
    }
}

fn outcome_from_code(c: u8) -> io::Result<RecoveryOutcome> {
    Ok(match c {
        0 => RecoveryOutcome::Clean,
        1 => RecoveryOutcome::CorrectedTransient,
        2 => RecoveryOutcome::CorrectedDegraded,
        3 => RecoveryOutcome::MachineCheck,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad outcome")),
    })
}

fn outcome_label(o: RecoveryOutcome) -> &'static str {
    match o {
        RecoveryOutcome::Clean => "clean",
        RecoveryOutcome::CorrectedTransient => "ce-transient",
        RecoveryOutcome::CorrectedDegraded => "ce-degraded",
        RecoveryOutcome::MachineCheck => "machine-check",
    }
}

/// Writes all schemes' recovery events as CSV
/// (`scheme,trial,at,addr,outcome`).
pub fn write_events_csv(w: &mut impl Write, results: &[CampaignResult]) -> io::Result<()> {
    writeln!(w, "scheme,trial,at,addr,outcome")?;
    for r in results {
        for (trial, e) in &r.events {
            writeln!(
                w,
                "{},{},{},{},{}",
                r.scheme.label(),
                trial,
                e.at,
                e.addr,
                outcome_label(e.outcome)
            )?;
        }
    }
    Ok(())
}

/// Magic header of the binary event log.
pub const EVENT_LOG_MAGIC: &[u8; 8] = b"DVECAMP1";

/// Writes the compact binary event log: magic, then per scheme a
/// `[scheme_code: u8, count: u64-le]` header followed by `count`
/// 25-byte records `[trial: u64-le, at: u64-le, addr: u64-le, outcome:
/// u8]`.
pub fn write_events_binary(w: &mut impl Write, results: &[CampaignResult]) -> io::Result<()> {
    w.write_all(EVENT_LOG_MAGIC)?;
    w.write_all(&[results.len() as u8])?;
    for r in results {
        w.write_all(&[r.scheme.stream() as u8])?;
        w.write_all(&(r.events.len() as u64).to_le_bytes())?;
        for (trial, e) in &r.events {
            w.write_all(&trial.to_le_bytes())?;
            w.write_all(&e.at.to_le_bytes())?;
            w.write_all(&e.addr.to_le_bytes())?;
            w.write_all(&[outcome_code(e.outcome)])?;
        }
    }
    Ok(())
}

/// One scheme's decoded event log: `(scheme stream code, tagged events)`.
pub type SchemeEventLog = (u8, Vec<(u64, RecoveryEvent)>);

/// Reads a binary event log back: one [`SchemeEventLog`] per scheme.
pub fn read_events_binary(r: &mut impl Read) -> io::Result<Vec<SchemeEventLog>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != EVENT_LOG_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut n = [0u8; 1];
    r.read_exact(&mut n)?;
    let mut out = Vec::with_capacity(n[0] as usize);
    for _ in 0..n[0] {
        let mut hdr = [0u8; 9];
        r.read_exact(&mut hdr)?;
        let count = u64::from_le_bytes(hdr[1..9].try_into().unwrap());
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut rec = [0u8; 25];
            r.read_exact(&mut rec)?;
            let trial = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let at = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            let addr = u64::from_le_bytes(rec[16..24].try_into().unwrap());
            events.push((
                trial,
                RecoveryEvent {
                    addr,
                    at,
                    outcome: outcome_from_code(rec[24])?,
                },
            ));
        }
        out.push((hdr[0], events));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_all, run_campaign, SamplingMode};
    use dve_reliability::accel::AccelParams;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0xCAFE,
            trials: 4000,
            workers: 4,
            params: AccelParams::paper_accelerated(),
            replay_ops: 4,
            sampling: SamplingMode::Plain,
        }
    }

    #[test]
    fn cross_validation_agrees_at_4k_trials() {
        let cfg = cfg();
        let results = run_all(&cfg);
        let report = CampaignReport::build(&cfg, &results);
        for r in &report.rows {
            assert!(
                r.agrees(),
                "{}: due emp {:.3e} CI [{:.3e},{:.3e}] vs {:.3e}; sdc emp {:.3e} CI [{:.3e},{:.3e}] vs {:.3e}",
                r.scheme.label(),
                r.empirical_due,
                r.due_ci.0,
                r.due_ci.1,
                r.analytical_due,
                r.empirical_sdc,
                r.sdc_ci.0,
                r.sdc_ci.1,
                r.analytical_sdc,
            );
        }
        assert!(report.all_agree());
    }

    #[test]
    fn stratified_estimate_matches_plain_within_ci() {
        // The reweighted stratified estimator targets the same plain-law
        // rates: at the seeded high-fault-rate config both estimators
        // must bracket each other's point estimates.
        let mut plain = cfg();
        plain.trials = 20_000;
        plain.replay_ops = 0;
        let mut strat = plain;
        strat.sampling = SamplingMode::stratified_default();
        for scheme in CampaignScheme::ALL {
            let rp = run_campaign(&plain, scheme);
            let rs = run_campaign(&strat, scheme);
            let rowp = &CampaignReport::build(&plain, &[rp]).rows[0];
            let rows = &CampaignReport::build(&strat, &[rs]).rows[0];
            assert!(rowp.strata.is_empty(), "plain row grew cells");
            assert!(!rows.strata.is_empty(), "stratified row lost its cells");
            // Union of the two CIs must cover both point estimates.
            let lo = rowp.due_ci.0.min(rows.due_ci.0);
            let hi = rowp.due_ci.1.max(rows.due_ci.1);
            assert!(
                lo <= rowp.empirical_due
                    && rowp.empirical_due <= hi
                    && lo <= rows.empirical_due
                    && rows.empirical_due <= hi,
                "{}: plain due {:.4e} [{:.3e},{:.3e}] vs stratified {:.4e} [{:.3e},{:.3e}]",
                scheme.label(),
                rowp.empirical_due,
                rowp.due_ci.0,
                rowp.due_ci.1,
                rows.empirical_due,
                rows.due_ci.0,
                rows.due_ci.1,
            );
        }
    }

    #[test]
    fn zero_probability_strata_produce_finite_estimates() {
        // With p = 0 every stratum except k=0 has zero mass and zero
        // trials; the estimator must skip them without dividing by zero.
        let mut c = cfg();
        c.trials = 500;
        c.replay_ops = 0;
        c.params.chip_fail_prob = 0.0;
        c.sampling = SamplingMode::stratified_default();
        let results = run_all(&c);
        let report = CampaignReport::build(&c, &results);
        for r in &report.rows {
            assert!(r.empirical_due.is_finite() && r.empirical_sdc.is_finite());
            assert!(r.due_ci.0.is_finite() && r.due_ci.1.is_finite());
            assert!(r.sdc_ci.0.is_finite() && r.sdc_ci.1.is_finite());
            assert_eq!(r.empirical_due, 0.0);
            assert_eq!(r.empirical_sdc, 0.0);
        }
        // Rendering must not choke on the empty cells either.
        let text = report.render(&c);
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn degenerate_stratum_weights_never_poison_the_estimate() {
        // Hand-built rows with subnormal, zero, and non-finite masses:
        // the estimator must skip all of them and stay finite, keyed
        // only on the one healthy cell.
        use crate::runner::StratumResult;
        use crate::sampler::Stratum;
        let cell = |weight: f64, trials: u64, due: u64| StratumResult {
            stratum: Stratum {
                count: 1,
                tail: false,
                all_chip: false,
            },
            weight,
            trials,
            counts: OutcomeCounts {
                clean: trials - due,
                ce_transient: 0,
                ce_degraded: 0,
                due,
                sdc: 0,
            },
        };
        let strata = vec![
            cell(0.5, 100, 10),            // healthy
            cell(1e-310, 100, 100),        // subnormal mass: skip
            cell(0.0, 100, 100),           // zero mass: skip
            cell(f64::NAN, 100, 100),      // corrupt mass: skip
            cell(f64::INFINITY, 100, 100), // corrupt mass: skip
        ];
        let (point, (lo, hi)) = stratified_rate(&strata, |c| c.due);
        assert!(point.is_finite() && lo.is_finite() && hi.is_finite());
        assert!((point - 0.05).abs() < 1e-12, "point {point}");
        assert!(lo <= point && point <= hi);
    }

    #[test]
    fn stratified_render_includes_per_stratum_table() {
        let mut c = cfg();
        c.trials = 3_000;
        c.replay_ops = 0;
        c.sampling = SamplingMode::stratified_default();
        let results = run_all(&c);
        let report = CampaignReport::build(&c, &results);
        let text = report.render(&c);
        assert!(text.contains("per-stratum breakdown"));
        assert!(text.contains("k=0"));
        assert!(text.contains("all-chip"));
    }

    #[test]
    fn dve_chipkill_improvement_exceeds_40x() {
        let mut cfg = cfg();
        cfg.trials = 20_000;
        cfg.replay_ops = 0;
        let results = run_all(&cfg);
        let report = CampaignReport::build(&cfg, &results);
        // `None` means zero observed uncorrectables: even better than 40x.
        if let Some(x) = report.improvement_over_chipkill(CampaignScheme::DveChipkill) {
            assert!(x > 40.0, "improvement only {x:.1}x");
        }
    }

    #[test]
    fn render_mentions_every_scheme_and_verdicts() {
        let cfg = cfg();
        let results = run_all(&cfg);
        let report = CampaignReport::build(&cfg, &results);
        let text = report.render(&cfg);
        for s in CampaignScheme::ALL {
            assert!(text.contains(s.label()), "missing {}", s.label());
        }
        assert!(text.contains("agree"));
        assert!(text.contains("Table I"));
    }

    #[test]
    fn binary_event_log_roundtrips() {
        let cfg = cfg();
        let results = run_all(&cfg);
        let mut buf = Vec::new();
        write_events_binary(&mut buf, &results).unwrap();
        assert_eq!(&buf[..8], EVENT_LOG_MAGIC);
        let back = read_events_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), results.len());
        for (got, want) in back.iter().zip(&results) {
            assert_eq!(got.0, want.scheme.stream() as u8);
            assert_eq!(got.1, want.events);
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cfg = cfg();
        let results = run_all(&cfg);
        let mut buf = Vec::new();
        write_events_csv(&mut buf, &results).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("scheme,trial,at,addr,outcome"));
        assert!(lines.next().is_some(), "no event rows");
    }

    #[test]
    fn truncated_binary_log_is_rejected() {
        let cfg = CampaignConfig {
            trials: 300,
            ..cfg()
        };
        let results = run_all(&cfg);
        let mut buf = Vec::new();
        write_events_binary(&mut buf, &results).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_events_binary(&mut buf.as_slice()).is_err());
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(read_events_binary(&mut bad.as_slice()).is_err());
    }
}
