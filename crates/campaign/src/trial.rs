//! One campaign trial: fault sampling, real-codec adjudication, and a
//! system-level replay with recovery-event logging.
//!
//! A trial observes one accelerated scrub-interval window:
//!
//! 1. [`FaultSampler`] draws per-chip failures for the DIMM (pair).
//! 2. **Codeword adjudication**: golden data is encoded with the
//!    scheme's real code, failed chips corrupt their symbol (through
//!    `dve-ecc`'s injector), and the real decoder classifies the result
//!    against the golden data — so detection misses and RS
//!    miscorrections produce *bona fide* SDC outcomes rather than
//!    modeled ones.
//! 3. **System replay**: the same fault set is installed into
//!    `dve-dram` [`FaultState`] hooks under a [`RecoverableMemory`]
//!    pair (or a bare controller for Chipkill), a seeded
//!    `dve-workloads` trace is replayed, the patrol [`Scrubber`] runs a
//!    pass, transient faults clear on the §V-B2 write-repair, and the
//!    recovery events are drained into the trial record.
//!
//! The final outcome comes from the codeword layer (which models Dvé's
//! symbol-union reconstruction across copies exactly); the controller
//! layer is coarser — it flags any faulty DIMM read as uncorrectable
//! without attempting cross-copy reconstruction — so its event stream is
//! a conservative overapproximation, logged for inspection rather than
//! classification.
//!
//! # Zero-allocation trials
//!
//! Campaign throughput is decode-pipeline-bound, so the executor threads
//! a per-worker [`TrialScratch`] (golden data, codeword and work buffers,
//! the RS decoder scratch, the replay address list and the recovery-event
//! buffer) through every trial: the adjudication path of a fault-free
//! trial — the overwhelming majority — touches the heap zero times after
//! the scratch is built. Results remain **bit-identical** for any worker
//! count and to the pre-scratch implementation: the RNG draw order is
//! unchanged and every buffer is fully overwritten per trial.

use crate::sampler::{ChipFault, FaultSample, FaultSampler, Granularity, Side, StrataPlan};
use dve::recovery::{RecoverableMemory, RecoveryEvent};
use dve_dram::config::DramConfig;
use dve_dram::controller::{AccessKind, EccProfile, MemoryController};
use dve_dram::fault::FaultDomain;
use dve_dram::scrub::Scrubber;
use dve_ecc::code::{CheckOutcome, DetectionCode};
use dve_ecc::inject::FaultInjector;
use dve_ecc::rs::{Rs, RsScratch};
use dve_ecc::rs16::Rs16Detect;
use dve_reliability::accel::AccelParams;
use dve_sim::rng::{derive_seed, SplitMix64};
use dve_sim::time::Cycles;
use dve_workloads::{catalog, Op, TraceGenerator};

/// The protection schemes a campaign can exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampaignScheme {
    /// RS(18,16) correcting Chipkill on a single DIMM (baseline).
    Chipkill,
    /// Dvé replication with a detect-only RS(18,16) DSD code.
    DveDsd,
    /// Dvé replication with a detect-only RS over GF(2¹⁶) TSD code.
    DveTsd,
    /// Dvé replication layered over correcting Chipkill DIMMs.
    DveChipkill,
}

impl CampaignScheme {
    /// All schemes in report order.
    pub const ALL: [CampaignScheme; 4] = [
        CampaignScheme::Chipkill,
        CampaignScheme::DveDsd,
        CampaignScheme::DveTsd,
        CampaignScheme::DveChipkill,
    ];

    /// Human-readable scheme name (matches Table I's).
    pub fn label(&self) -> &'static str {
        match self {
            CampaignScheme::Chipkill => "Chipkill",
            CampaignScheme::DveDsd => "Dve+DSD",
            CampaignScheme::DveTsd => "Dve+TSD",
            CampaignScheme::DveChipkill => "Dve+Chipkill",
        }
    }

    /// Seed-derivation stream id for this scheme's trials.
    pub fn stream(&self) -> u64 {
        0xCA00
            + match self {
                CampaignScheme::Chipkill => 0,
                CampaignScheme::DveDsd => 1,
                CampaignScheme::DveTsd => 2,
                CampaignScheme::DveChipkill => 3,
            }
    }

    /// Whether the scheme keeps a replica copy.
    pub fn is_replicated(&self) -> bool {
        !matches!(self, CampaignScheme::Chipkill)
    }

    /// The controller-level ECC profile used in the system replay.
    pub fn ecc_profile(&self) -> EccProfile {
        match self {
            CampaignScheme::Chipkill | CampaignScheme::DveChipkill => EccProfile::chipkill(),
            CampaignScheme::DveDsd => EccProfile::dsd(),
            CampaignScheme::DveTsd => EccProfile::tsd(),
        }
    }
}

/// Final classification of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialOutcome {
    /// No data was ever at risk.
    Clean,
    /// An error was corrected (locally or via replica) and the faulty
    /// copy repaired in place: all contributing faults were transient.
    CeTransient,
    /// An error was corrected but a permanent fault remains: the region
    /// continues with one working copy (or a degraded local symbol).
    CeDegraded,
    /// Detected but uncorrectable: data loss with a machine check.
    Due,
    /// Silent data corruption: the decoder returned wrong data while
    /// claiming success (detection miss or RS miscorrection).
    Sdc,
}

impl TrialOutcome {
    /// Stable single-byte encoding for the binary event log.
    pub fn code(&self) -> u8 {
        match self {
            TrialOutcome::Clean => 0,
            TrialOutcome::CeTransient => 1,
            TrialOutcome::CeDegraded => 2,
            TrialOutcome::Due => 3,
            TrialOutcome::Sdc => 4,
        }
    }
}

/// Everything one trial produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialResult {
    /// Trial index within the campaign.
    pub trial: u64,
    /// Final classification.
    pub outcome: TrialOutcome,
    /// Paired-failure count (identity mapping) — drives Dvé DUEs.
    pub overlap: usize,
    /// Total sampled chip failures.
    pub fault_count: usize,
    /// Recovery events drained from the system replay.
    pub events: Vec<RecoveryEvent>,
}

/// Per-worker reusable buffers threaded through [`TrialExecutor::run_with`].
///
/// Build one per worker thread with [`TrialExecutor::make_scratch`]; its
/// buffers are fully overwritten each trial, so reuse cannot leak state
/// between trials and the campaign stays bit-identical for any worker
/// count. Fault-free trials (the common case) complete without any heap
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct TrialScratch {
    /// Golden dataword drawn per trial.
    golden: Vec<u8>,
    /// The clean encoded codeword.
    clean_cw: Vec<u8>,
    /// Primary copy after fault corruption.
    primary: Vec<u8>,
    /// Replica copy after fault corruption.
    replica: Vec<u8>,
    /// Decoder working copy (decoded in place).
    work: Vec<u8>,
    /// RS decoder scratch (Berlekamp–Massey / Chien / Forney buffers).
    rs: RsScratch,
    /// Replayed trace addresses.
    addrs: Vec<u64>,
    /// Recovery events accumulated by the system replay, copied into the
    /// [`TrialResult`] at the end of each trial.
    events: Vec<RecoveryEvent>,
}

/// Runs trials for one scheme; cheap to construct, reusable across a
/// worker's whole trial range.
#[derive(Debug)]
pub struct TrialExecutor {
    scheme: CampaignScheme,
    sampler: FaultSampler,
    chipkill: Rs,
    dsd: Rs,
    tsd: Rs16Detect,
    /// Memory operations replayed from the workload trace per trial
    /// (0 disables the system replay for pure-statistics campaigns).
    replay_ops: u64,
}

/// Bytes scrubbed/replayed per trial (64 lines).
const REPLAY_REGION_BYTES: u64 = 4096;

impl TrialExecutor {
    /// Builds an executor for `scheme` under `params`.
    pub fn new(scheme: CampaignScheme, params: AccelParams, replay_ops: u64) -> TrialExecutor {
        TrialExecutor {
            scheme,
            sampler: FaultSampler::new(params),
            chipkill: Rs::chipkill(),
            dsd: Rs::dsd(),
            tsd: Rs16Detect::tsd(64),
            replay_ops,
        }
    }

    /// The scheme this executor exercises.
    pub fn scheme(&self) -> CampaignScheme {
        self.scheme
    }

    /// Builds a scratch sized for this executor's largest codeword.
    pub fn make_scratch(&self) -> TrialScratch {
        let max_cw = self.chipkill.codeword_len().max(self.tsd.codeword_len());
        let max_data = self.chipkill.data_len().max(self.tsd.data_len());
        TrialScratch {
            golden: Vec::with_capacity(max_data),
            clean_cw: Vec::with_capacity(max_cw),
            primary: Vec::with_capacity(max_cw),
            replica: Vec::with_capacity(max_cw),
            work: Vec::with_capacity(max_cw),
            rs: self.chipkill.make_scratch(),
            addrs: Vec::with_capacity(self.replay_ops as usize),
            events: Vec::new(),
        }
    }

    /// Runs trial `trial` of the campaign keyed by `master_seed`,
    /// allocating fresh buffers. Convenience wrapper around
    /// [`TrialExecutor::run_with`] for one-off calls and tests.
    pub fn run(&self, master_seed: u64, trial: u64) -> TrialResult {
        let mut scratch = self.make_scratch();
        self.run_with(master_seed, trial, &mut scratch)
    }

    /// Runs trial `trial` of the campaign keyed by `master_seed`, reusing
    /// the caller's scratch buffers. Fully deterministic: the result
    /// depends only on `(master_seed, scheme, trial)` — never on the
    /// scratch's history.
    pub fn run_with(
        &self,
        master_seed: u64,
        trial: u64,
        scratch: &mut TrialScratch,
    ) -> TrialResult {
        scratch.events.clear();
        let seed = derive_seed(master_seed, self.scheme.stream(), trial);
        let mut rng = SplitMix64::new(seed);
        let sample = if self.scheme.is_replicated() {
            self.sampler.sample_pair(&mut rng)
        } else {
            self.sampler.sample_single(&mut rng)
        };
        self.finish_trial(trial, &sample, &mut rng, scratch)
    }

    /// Builds the stratified sampling plan matching this executor's
    /// scheme (pair vs single-DIMM windows) and window parameters.
    pub fn strata_plan(&self, tail_min: u8, trials: u64) -> StrataPlan {
        StrataPlan::build(
            &self.sampler.params(),
            self.scheme.is_replicated(),
            tail_min,
            trials,
        )
    }

    /// Runs trial `trial` under a stratified `plan`: the trial's index
    /// selects its stratum (contiguous per-cell ranges), the sample is
    /// drawn conditioned on that cell, and adjudication/replay proceed
    /// exactly as in [`TrialExecutor::run_with`]. Deterministic in
    /// `(master_seed, scheme, plan, trial)`.
    pub fn run_stratified_with(
        &self,
        master_seed: u64,
        trial: u64,
        plan: &StrataPlan,
        scratch: &mut TrialScratch,
    ) -> TrialResult {
        scratch.events.clear();
        let seed = derive_seed(master_seed, self.scheme.stream(), trial);
        let mut rng = SplitMix64::new(seed);
        let spec = &plan.strata[plan.stratum_of(trial)];
        let sample = self.sampler.sample_stratum(plan, spec, &mut rng);
        self.finish_trial(trial, &sample, &mut rng, scratch)
    }

    /// Shared trial tail: adjudicate the sampled window and replay it
    /// through the system model. Fault-free windows — the common case —
    /// short-circuit to `Clean`: every adjudicator maps an uncorrupted
    /// codeword to `Clean` and the replay is a no-op without faults, so
    /// skipping both is outcome-identical and saves the encode/decode.
    fn finish_trial(
        &self,
        trial: u64,
        sample: &FaultSample,
        rng: &mut SplitMix64,
        scratch: &mut TrialScratch,
    ) -> TrialResult {
        let overlap = sample.pair_overlap(|i| i);
        let outcome = if sample.any() {
            self.adjudicate(sample, overlap, rng, scratch)
        } else {
            TrialOutcome::Clean
        };
        if self.replay_ops > 0 && sample.any() {
            self.replay(sample, rng, scratch);
        }
        TrialResult {
            trial,
            outcome,
            overlap,
            fault_count: sample.faults.len(),
            // Copy out so the accumulation buffer (and its capacity) is
            // reused by the next trial; empty for fault-free trials.
            events: scratch.events.clone(),
        }
    }

    // ---- codeword-level adjudication ---------------------------------

    fn adjudicate(
        &self,
        sample: &FaultSample,
        overlap: usize,
        rng: &mut SplitMix64,
        s: &mut TrialScratch,
    ) -> TrialOutcome {
        match self.scheme {
            CampaignScheme::Chipkill => self.adjudicate_chipkill(sample, rng, s),
            CampaignScheme::DveDsd => {
                self.adjudicate_detect_only(&self.dsd, sample, overlap, rng, s)
            }
            CampaignScheme::DveTsd => {
                self.adjudicate_detect_only(&self.tsd, sample, overlap, rng, s)
            }
            CampaignScheme::DveChipkill => self.adjudicate_dve_chipkill(sample, overlap, rng, s),
        }
    }

    fn fill_golden(golden: &mut Vec<u8>, len: usize, rng: &mut SplitMix64) {
        golden.clear();
        for _ in 0..len / 8 {
            golden.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        for _ in 0..len % 8 {
            golden.push(rng.next_u64() as u8);
        }
    }

    fn ce(&self, sample: &FaultSample) -> TrialOutcome {
        if sample.all_transient(Side::Primary) {
            TrialOutcome::CeTransient
        } else {
            TrialOutcome::CeDegraded
        }
    }

    /// Chipkill alone: one DIMM, local correction, no replica.
    fn adjudicate_chipkill(
        &self,
        sample: &FaultSample,
        rng: &mut SplitMix64,
        s: &mut TrialScratch,
    ) -> TrialOutcome {
        Self::fill_golden(&mut s.golden, self.chipkill.data_len(), rng);
        s.clean_cw.resize(self.chipkill.codeword_len(), 0);
        self.chipkill.encode_into(&s.golden, &mut s.clean_cw);
        s.primary.clear();
        s.primary.extend_from_slice(&s.clean_cw);
        corrupt8(&mut s.primary, sample.faults.iter(), rng);
        let corrupted = s.primary != s.clean_cw;
        s.work.clear();
        s.work.extend_from_slice(&s.primary);
        match self.chipkill.decode_in_place(&mut s.work, &mut s.rs) {
            CheckOutcome::NoError => {
                if corrupted {
                    TrialOutcome::Sdc
                } else {
                    TrialOutcome::Clean
                }
            }
            CheckOutcome::Corrected { .. } => {
                if s.work[..self.chipkill.data_len()] == s.golden[..] {
                    self.ce(sample)
                } else {
                    TrialOutcome::Sdc // miscorrection
                }
            }
            CheckOutcome::DetectedUncorrectable { .. } => TrialOutcome::Due,
        }
    }

    /// Dvé with a detect-only code: detection local, correction via the
    /// replica; when both copies are flagged, symbol-union
    /// reconstruction succeeds unless a chip pair overlaps.
    fn adjudicate_detect_only<C: DetectionCode>(
        &self,
        code: &C,
        sample: &FaultSample,
        overlap: usize,
        rng: &mut SplitMix64,
        s: &mut TrialScratch,
    ) -> TrialOutcome {
        Self::fill_golden(&mut s.golden, code.data_len(), rng);
        s.clean_cw.resize(code.codeword_len(), 0);
        code.encode_into(&s.golden, &mut s.clean_cw);
        let sixteen_bit = matches!(self.scheme, CampaignScheme::DveTsd);

        s.primary.clear();
        s.primary.extend_from_slice(&s.clean_cw);
        s.replica.clear();
        s.replica.extend_from_slice(&s.clean_cw);
        let prim_faults = sample.faults.iter().filter(|f| f.side == Side::Primary);
        let repl_faults = sample.faults.iter().filter(|f| f.side == Side::Replica);
        if sixteen_bit {
            corrupt16(&mut s.primary, prim_faults, rng);
            corrupt16(&mut s.replica, repl_faults, rng);
        } else {
            corrupt8(&mut s.primary, prim_faults, rng);
            corrupt8(&mut s.replica, repl_faults, rng);
        }

        match code.check(&s.primary) {
            CheckOutcome::NoError => {
                if s.primary != s.clean_cw {
                    TrialOutcome::Sdc // detection miss on the home copy
                } else {
                    TrialOutcome::Clean
                }
            }
            CheckOutcome::Corrected { .. } => unreachable!("detect-only code corrected"),
            CheckOutcome::DetectedUncorrectable { .. } => match code.check(&s.replica) {
                CheckOutcome::NoError => {
                    if s.replica != s.clean_cw {
                        TrialOutcome::Sdc // silent wrong data served by replica
                    } else {
                        self.ce(sample)
                    }
                }
                CheckOutcome::Corrected { .. } => unreachable!("detect-only code corrected"),
                CheckOutcome::DetectedUncorrectable { .. } => {
                    // Both copies flagged: recover symbol-by-symbol from
                    // whichever copy holds each symbol intact. Data is
                    // lost only where the same pair failed on both sides.
                    if overlap >= 1 {
                        TrialOutcome::Due
                    } else {
                        TrialOutcome::CeDegraded
                    }
                }
            },
        }
    }

    /// Dvé over Chipkill: each copy locally corrects one symbol; the
    /// replica (then symbol-union reconstruction) handles the rest.
    fn adjudicate_dve_chipkill(
        &self,
        sample: &FaultSample,
        overlap: usize,
        rng: &mut SplitMix64,
        s: &mut TrialScratch,
    ) -> TrialOutcome {
        Self::fill_golden(&mut s.golden, self.chipkill.data_len(), rng);
        s.clean_cw.resize(self.chipkill.codeword_len(), 0);
        self.chipkill.encode_into(&s.golden, &mut s.clean_cw);
        s.primary.clear();
        s.primary.extend_from_slice(&s.clean_cw);
        s.replica.clear();
        s.replica.extend_from_slice(&s.clean_cw);
        corrupt8(
            &mut s.primary,
            sample.faults.iter().filter(|f| f.side == Side::Primary),
            rng,
        );
        corrupt8(
            &mut s.replica,
            sample.faults.iter().filter(|f| f.side == Side::Replica),
            rng,
        );
        s.work.clear();
        s.work.extend_from_slice(&s.primary);
        match self.chipkill.decode_in_place(&mut s.work, &mut s.rs) {
            CheckOutcome::NoError => {
                if s.primary != s.clean_cw {
                    TrialOutcome::Sdc
                } else {
                    TrialOutcome::Clean
                }
            }
            CheckOutcome::Corrected { .. } => {
                if s.work[..self.chipkill.data_len()] == s.golden[..] {
                    self.ce(sample)
                } else {
                    TrialOutcome::Sdc // local miscorrection, replica never asked
                }
            }
            CheckOutcome::DetectedUncorrectable { .. } => {
                s.work.clear();
                s.work.extend_from_slice(&s.replica);
                match self.chipkill.decode_in_place(&mut s.work, &mut s.rs) {
                    CheckOutcome::NoError => {
                        if s.replica != s.clean_cw {
                            TrialOutcome::Sdc
                        } else {
                            self.ce(sample)
                        }
                    }
                    CheckOutcome::Corrected { .. } => {
                        if s.work[..self.chipkill.data_len()] == s.golden[..] {
                            self.ce(sample)
                        } else {
                            TrialOutcome::Sdc
                        }
                    }
                    CheckOutcome::DetectedUncorrectable { .. } => {
                        // Both beyond local correction: with one symbol
                        // locally reconstructible per copy, data is lost
                        // only at two or more pair overlaps.
                        if overlap >= 2 {
                            TrialOutcome::Due
                        } else {
                            TrialOutcome::CeDegraded
                        }
                    }
                }
            }
        }
    }

    // ---- system-level replay -----------------------------------------

    fn replay(&self, sample: &FaultSample, rng: &mut SplitMix64, s: &mut TrialScratch) {
        if self.scheme.is_replicated() {
            self.replay_replicated(sample, rng, s);
        } else {
            self.replay_single(sample, rng, s);
        }
    }

    fn fault_domain(side: Side, chip: usize) -> FaultDomain {
        FaultDomain::Chip {
            channel: match side {
                Side::Primary => 0,
                Side::Replica => 1,
            },
            rank: 0,
            chip,
        }
    }

    /// Fills `addrs` with a slice of a seeded workload trace, folded into
    /// the scrub region.
    fn trace_addrs_into(&self, rng: &mut SplitMix64, addrs: &mut Vec<u64>) {
        let profile = &catalog()[0];
        let mut gen = TraceGenerator::new(profile, 1, rng.next_u64());
        addrs.clear();
        let lines = REPLAY_REGION_BYTES / 64;
        let mut guard = 0u64;
        while addrs.len() < self.replay_ops as usize && guard < self.replay_ops * 16 {
            if let Op::Mem { line, .. } = gen.next_op(0) {
                addrs.push((line % lines) * 64);
            }
            guard += 1;
        }
    }

    fn replay_replicated(&self, sample: &FaultSample, rng: &mut SplitMix64, s: &mut TrialScratch) {
        let mut mem = RecoverableMemory::new(
            DramConfig::ddr4_2400_no_refresh(),
            self.scheme.ecc_profile(),
        );
        mem.set_event_logging(true);
        for f in &sample.faults {
            let side = f.side;
            let mc = match side {
                Side::Primary => mem.primary_mut(),
                Side::Replica => mem.replica_mut(),
            };
            mc.faults_mut().fail(Self::fault_domain(side, f.chip));
        }
        // Workload phase.
        let mut t = 0u64;
        self.trace_addrs_into(rng, &mut s.addrs);
        for &addr in &s.addrs {
            let (_, done) = mem.read(addr, t);
            t = done;
        }
        // Patrol scrub of both copies, then the §V-B2 write-repair
        // clears transient faults.
        let mut scrubber = Scrubber::new(REPLAY_REGION_BYTES);
        let rep = scrubber.full_pass(mem.primary_mut(), t);
        t += rep.duration;
        let rep = scrubber.full_pass(mem.replica_mut(), t);
        t += rep.duration;
        for f in &sample.faults {
            if f.transient {
                let side = f.side;
                let mc = match side {
                    Side::Primary => mem.primary_mut(),
                    Side::Replica => mem.replica_mut(),
                };
                mc.faults_mut().repair(Self::fault_domain(side, f.chip));
            }
        }
        // Post-scrub probe: surviving permanent faults keep firing.
        for i in 0..4u64 {
            let (_, done) = mem.read(i * 64, t);
            t = done;
        }
        s.events.extend(mem.take_events());
    }

    fn replay_single(&self, sample: &FaultSample, rng: &mut SplitMix64, s: &mut TrialScratch) {
        let mut mc = MemoryController::new(0, DramConfig::ddr4_2400_no_refresh());
        mc.set_ecc(self.scheme.ecc_profile());
        for f in &sample.faults {
            mc.faults_mut()
                .fail(Self::fault_domain(Side::Primary, f.chip));
        }
        let mut t = 0u64;
        self.trace_addrs_into(rng, &mut s.addrs);
        for &addr in &s.addrs {
            let (timing, outcome) = mc.read_with_check(addr, Cycles(t));
            t = timing.complete_at.raw();
            if let CheckOutcome::DetectedUncorrectable { .. } = outcome {
                s.events.push(RecoveryEvent {
                    addr,
                    at: t,
                    outcome: dve::recovery::RecoveryOutcome::MachineCheck,
                });
            } else if let CheckOutcome::Corrected { .. } = outcome {
                // Local ECC corrected: write back (scrub-style repair).
                let w = mc.access(addr, AccessKind::Write, Cycles(t));
                t = w.complete_at.raw();
            }
        }
        let mut scrubber = Scrubber::new(REPLAY_REGION_BYTES);
        scrubber.full_pass(&mut mc, t);
        for f in &sample.faults {
            if f.transient {
                mc.faults_mut()
                    .repair(Self::fault_domain(Side::Primary, f.chip));
            }
        }
    }
}

// ---- symbol corruption helpers -------------------------------------

/// Corrupts 8-bit-symbol codewords: chip `i` owns symbol `2i` (the repo
/// maps one chip to one RS(18,16) symbol; spreading over even positions
/// covers data and parity symbols alike).
fn corrupt8<'a>(cw: &mut [u8], faults: impl Iterator<Item = &'a ChipFault>, rng: &mut SplitMix64) {
    let mut injector = FaultInjector::new(rng.next_u64());
    for f in faults {
        let pos = f.chip * 2;
        assert!(pos < cw.len(), "chip symbol out of codeword");
        match f.granularity {
            Granularity::Bit => {
                cw[pos] ^= 1 << rng.next_below(8);
            }
            Granularity::Pin => {
                let width = 2 + rng.next_below(3); // 2..=4 bits
                let mask = ((1u16 << width) - 1) as u8;
                let shift = rng.next_below(9 - width) as u8;
                cw[pos] ^= mask << shift;
            }
            Granularity::Chip => {
                injector.inject_symbols_at(cw, &[pos]);
            }
        }
    }
}

/// Corrupts 16-bit-symbol codewords (big-endian byte pairs): chip `i`
/// owns symbol `i`.
fn corrupt16<'a>(cw: &mut [u8], faults: impl Iterator<Item = &'a ChipFault>, rng: &mut SplitMix64) {
    let mut injector = FaultInjector::new(rng.next_u64());
    for f in faults {
        let sym = f.chip;
        assert!(sym * 2 + 1 < cw.len(), "chip symbol out of codeword");
        let mask: u16 = match f.granularity {
            Granularity::Bit => 1 << rng.next_below(16),
            Granularity::Pin => {
                let width = 2 + rng.next_below(3);
                let m = (1u32 << width) - 1;
                (m << rng.next_below(17 - width)) as u16
            }
            Granularity::Chip => {
                injector.inject_symbols16_at(cw, &[sym]);
                continue;
            }
        };
        cw[sym * 2] ^= (mask >> 8) as u8;
        cw[sym * 2 + 1] ^= mask as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(scheme: CampaignScheme) -> TrialExecutor {
        TrialExecutor::new(scheme, AccelParams::paper_accelerated(), 32)
    }

    #[test]
    fn trials_are_deterministic() {
        for scheme in CampaignScheme::ALL {
            let a = exec(scheme).run(0xFEED, 17);
            let b = exec(scheme).run(0xFEED, 17);
            assert_eq!(a, b, "{}", scheme.label());
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // Reusing one scratch across many trials (in any order) must be
        // bit-identical to a fresh scratch per trial.
        for scheme in CampaignScheme::ALL {
            let e = exec(scheme);
            let mut reused = e.make_scratch();
            for t in [5u64, 0, 99, 3, 42, 3, 7] {
                let a = e.run_with(0xFEED, t, &mut reused);
                let b = e.run(0xFEED, t);
                assert_eq!(a, b, "{} trial {t}", scheme.label());
            }
        }
    }

    #[test]
    fn different_trials_differ() {
        let e = exec(CampaignScheme::Chipkill);
        let mut scratch = e.make_scratch();
        let outcomes: Vec<_> = (0..200)
            .map(|t| e.run_with(1, t, &mut scratch).outcome)
            .collect();
        assert!(
            outcomes.iter().any(|&o| o != outcomes[0]),
            "200 trials all identical"
        );
    }

    #[test]
    fn chipkill_single_fault_is_corrected() {
        // Find trials with exactly one fault and check they never DUE.
        let e = exec(CampaignScheme::Chipkill);
        let mut scratch = e.make_scratch();
        let mut seen = 0;
        for t in 0..2000 {
            let r = e.run_with(2, t, &mut scratch);
            if r.fault_count == 1 {
                seen += 1;
                assert!(
                    matches!(
                        r.outcome,
                        TrialOutcome::CeTransient | TrialOutcome::CeDegraded
                    ),
                    "single-fault trial {t} gave {:?}",
                    r.outcome
                );
            }
        }
        assert!(seen > 100, "only {seen} single-fault trials");
    }

    #[test]
    fn dve_due_requires_pair_overlap() {
        for scheme in [CampaignScheme::DveDsd, CampaignScheme::DveTsd] {
            let e = exec(scheme);
            let mut scratch = e.make_scratch();
            for t in 0..3000 {
                let r = e.run_with(3, t, &mut scratch);
                if r.outcome == TrialOutcome::Due {
                    assert!(r.overlap >= 1, "{} DUE without overlap", scheme.label());
                }
                if r.overlap == 0 {
                    assert_ne!(r.outcome, TrialOutcome::Due);
                }
            }
        }
    }

    #[test]
    fn dve_chipkill_due_requires_double_overlap() {
        let e = exec(CampaignScheme::DveChipkill);
        let mut scratch = e.make_scratch();
        for t in 0..5000 {
            let r = e.run_with(4, t, &mut scratch);
            if r.outcome == TrialOutcome::Due {
                assert!(r.overlap >= 2, "DUE with overlap {}", r.overlap);
            }
        }
    }

    #[test]
    fn fault_free_trials_are_clean_with_no_events() {
        let e = exec(CampaignScheme::DveDsd);
        let mut scratch = e.make_scratch();
        let mut seen = 0;
        for t in 0..500 {
            let r = e.run_with(5, t, &mut scratch);
            if r.fault_count == 0 {
                seen += 1;
                assert_eq!(r.outcome, TrialOutcome::Clean);
                assert!(r.events.is_empty());
            }
        }
        assert!(seen > 50, "only {seen} fault-free trials");
    }

    #[test]
    fn replay_logs_events_when_faults_bite() {
        // A permanent primary fault under a detect-only code must leave
        // recovery events in the replay log.
        let e = exec(CampaignScheme::DveTsd);
        let mut scratch = e.make_scratch();
        let mut with_faults = 0;
        let mut with_events = 0;
        for t in 0..300 {
            let r = e.run_with(6, t, &mut scratch);
            if r.fault_count > 0 {
                with_faults += 1;
                if !r.events.is_empty() {
                    with_events += 1;
                }
            }
        }
        assert!(with_faults > 50);
        assert!(
            with_events * 2 > with_faults,
            "{with_events}/{with_faults} faulty trials produced events"
        );
    }

    #[test]
    fn stratified_trials_are_deterministic() {
        for scheme in CampaignScheme::ALL {
            let e = exec(scheme);
            let plan = e.strata_plan(crate::sampler::DEFAULT_TAIL_MIN, 2_000);
            let mut s1 = e.make_scratch();
            let mut s2 = e.make_scratch();
            for t in [0u64, 1, 999, 1999, 500] {
                let a = e.run_stratified_with(0xFEED, t, &plan, &mut s1);
                let b = e.run_stratified_with(0xFEED, t, &plan, &mut s2);
                assert_eq!(a, b, "{} trial {t}", scheme.label());
            }
        }
    }

    #[test]
    fn stratified_trials_respect_their_cell() {
        let e = exec(CampaignScheme::DveDsd);
        let plan = e.strata_plan(crate::sampler::DEFAULT_TAIL_MIN, 9_000);
        let mut scratch = e.make_scratch();
        for spec in &plan.strata {
            if spec.trials == 0 {
                continue;
            }
            for t in spec.start..(spec.start + spec.trials.min(50)) {
                let r = e.run_stratified_with(0xABCD, t, &plan, &mut scratch);
                if spec.stratum.tail {
                    assert!(r.fault_count >= spec.stratum.count as usize);
                } else {
                    assert_eq!(r.fault_count, spec.stratum.count as usize);
                }
            }
        }
    }

    #[test]
    fn corruption_always_changes_the_codeword() {
        let mut rng = SplitMix64::new(11);
        let fault = ChipFault {
            side: Side::Primary,
            chip: 4,
            granularity: Granularity::Pin,
            transient: false,
        };
        for _ in 0..200 {
            let mut cw = vec![0u8; 18];
            corrupt8(&mut cw, std::iter::once(&fault), &mut rng);
            assert!(cw.iter().any(|&b| b != 0));
            let mut cw16 = vec![0u8; 70];
            corrupt16(&mut cw16, std::iter::once(&fault), &mut rng);
            assert!(cw16.iter().any(|&b| b != 0));
        }
    }
}
