//! Fault-event sampling for accelerated campaign windows.
//!
//! Each trial observes one scrub-interval window over a replicated DIMM
//! pair (or a single DIMM for non-replicated schemes). The sampler draws
//! independent per-chip failures at the accelerated probability from
//! [`AccelParams`], then refines each failure with a granularity (§II's
//! anatomy: single cell upset, pin/lane, whole chip) and a
//! transient/permanent nature. Granularity decides the corruption
//! *pattern* inside the chip's codeword symbol; every granularity
//! corrupts at least one bit of exactly one symbol, so the symbol-level
//! combinatorics of the analytical model are unchanged — which is what
//! makes exact cross-validation possible.

use dve_reliability::accel::AccelParams;
use dve_sim::rng::SplitMix64;

/// Which copy of the replicated pair a fault lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The socket-local (home) copy.
    Primary,
    /// The remote replica copy.
    Replica,
}

/// Within-chip corruption pattern (Fig. 2's fault anatomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Single cell upset: one bit of the chip's symbol flips.
    Bit,
    /// Pin/lane fault: a short burst of bits inside the symbol.
    Pin,
    /// Whole-device failure: the symbol is fully randomized.
    Chip,
}

/// One sampled chip failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipFault {
    /// Which copy it affects.
    pub side: Side,
    /// Device index within the DIMM (`0..chips_per_dimm`).
    pub chip: usize,
    /// Corruption pattern inside the device's symbol.
    pub granularity: Granularity,
    /// Whether the failure clears on the §V-B2 write-repair (transient)
    /// or persists (permanent).
    pub transient: bool,
}

/// The fault set of one trial window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSample {
    /// All sampled failures, primary side first, ascending chip index.
    pub faults: Vec<ChipFault>,
}

impl FaultSample {
    /// Chip indices failed on one side, ascending.
    pub fn chips(&self, side: Side) -> Vec<usize> {
        self.faults
            .iter()
            .filter(|f| f.side == side)
            .map(|f| f.chip)
            .collect()
    }

    /// Number of *paired* failures: chips `i` failed on the primary
    /// whose partner `pair(i)` also failed on the replica. Under Dvé's
    /// layout a symbol is unrecoverable from either copy exactly when
    /// its pair overlaps, so this count drives DUE classification.
    pub fn pair_overlap(&self, pair: impl Fn(usize) -> usize) -> usize {
        let replica = self.chips(Side::Replica);
        self.chips(Side::Primary)
            .iter()
            .filter(|&&i| replica.contains(&pair(i)))
            .count()
    }

    /// Whether every fault on `side` is transient.
    pub fn all_transient(&self, side: Side) -> bool {
        self.faults
            .iter()
            .filter(|f| f.side == side)
            .all(|f| f.transient)
    }

    /// Whether any fault is active at all.
    pub fn any(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Draws [`FaultSample`]s from accelerated window parameters.
///
/// # Example
///
/// ```
/// use dve_campaign::sampler::{FaultSampler, Side};
/// use dve_reliability::accel::AccelParams;
/// use dve_sim::rng::SplitMix64;
///
/// let s = FaultSampler::new(AccelParams::paper_accelerated());
/// let mut rng = SplitMix64::new(7);
/// let sample = s.sample_pair(&mut rng);
/// for f in &sample.faults {
///     assert!(f.chip < 9);
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FaultSampler {
    params: AccelParams,
}

/// Fraction of failures that are single-bit upsets.
const BIT_FRAC: f64 = 0.55;
/// Fraction of failures that are pin/lane bursts (the rest are
/// whole-chip).
const PIN_FRAC: f64 = 0.25;

impl FaultSampler {
    /// Creates a sampler for the given window parameters.
    pub fn new(params: AccelParams) -> FaultSampler {
        FaultSampler { params }
    }

    /// The window parameters.
    pub fn params(&self) -> AccelParams {
        self.params
    }

    /// Samples one window over a replicated DIMM pair.
    pub fn sample_pair(&self, rng: &mut SplitMix64) -> FaultSample {
        let mut faults = Vec::new();
        for side in [Side::Primary, Side::Replica] {
            self.sample_side(side, rng, &mut faults);
        }
        FaultSample { faults }
    }

    /// Samples one window over a single (non-replicated) DIMM.
    pub fn sample_single(&self, rng: &mut SplitMix64) -> FaultSample {
        let mut faults = Vec::new();
        self.sample_side(Side::Primary, rng, &mut faults);
        FaultSample { faults }
    }

    fn sample_side(&self, side: Side, rng: &mut SplitMix64, out: &mut Vec<ChipFault>) {
        for chip in 0..self.params.chips_per_dimm {
            if !rng.chance(self.params.chip_fail_prob) {
                continue;
            }
            let roll = rng.next_f64();
            let granularity = if roll < BIT_FRAC {
                Granularity::Bit
            } else if roll < BIT_FRAC + PIN_FRAC {
                Granularity::Pin
            } else {
                Granularity::Chip
            };
            let transient = rng.chance(self.params.transient_frac);
            out.push(ChipFault {
                side,
                chip,
                granularity,
                transient,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> FaultSampler {
        FaultSampler::new(AccelParams::paper_accelerated())
    }

    #[test]
    fn deterministic_given_rng_state() {
        let s = sampler();
        let a = s.sample_pair(&mut SplitMix64::new(42));
        let b = s.sample_pair(&mut SplitMix64::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_rate_tracks_p() {
        let s = sampler();
        let mut rng = SplitMix64::new(1);
        let trials = 20_000;
        let mut failures = 0usize;
        for _ in 0..trials {
            failures += s.sample_pair(&mut rng).faults.len();
        }
        let per_chip = failures as f64 / (trials * 18) as f64;
        let p = s.params().chip_fail_prob;
        assert!(
            (per_chip - p).abs() / p < 0.05,
            "empirical {per_chip} vs configured {p}"
        );
    }

    #[test]
    fn overlap_counts_paired_chips_only() {
        let mk = |side, chip| ChipFault {
            side,
            chip,
            granularity: Granularity::Chip,
            transient: false,
        };
        let sample = FaultSample {
            faults: vec![
                mk(Side::Primary, 2),
                mk(Side::Primary, 5),
                mk(Side::Replica, 2),
                mk(Side::Replica, 7),
            ],
        };
        assert_eq!(sample.pair_overlap(|i| i), 1);
        // A shifted pairing can turn the overlap on or off.
        assert_eq!(sample.pair_overlap(|i| (i + 2) % 9), 1); // 5 -> 7
        assert_eq!(sample.pair_overlap(|i| (i + 1) % 9), 0);
    }

    #[test]
    fn single_side_sampling_never_hits_replica() {
        let s = sampler();
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let sample = s.sample_single(&mut rng);
            assert!(sample.chips(Side::Replica).is_empty());
        }
    }

    #[test]
    fn granularity_mix_materializes() {
        let s = sampler();
        let mut rng = SplitMix64::new(9);
        let mut bits = 0;
        let mut pins = 0;
        let mut chips = 0;
        for _ in 0..20_000 {
            for f in s.sample_pair(&mut rng).faults {
                match f.granularity {
                    Granularity::Bit => bits += 1,
                    Granularity::Pin => pins += 1,
                    Granularity::Chip => chips += 1,
                }
            }
        }
        let total = (bits + pins + chips) as f64;
        assert!((bits as f64 / total - BIT_FRAC).abs() < 0.05);
        assert!((pins as f64 / total - PIN_FRAC).abs() < 0.05);
        assert!(chips > 0);
    }
}
