//! Fault-event sampling for accelerated campaign windows.
//!
//! Each trial observes one scrub-interval window over a replicated DIMM
//! pair (or a single DIMM for non-replicated schemes). The sampler draws
//! independent per-chip failures at the accelerated probability from
//! [`AccelParams`], then refines each failure with a granularity (§II's
//! anatomy: single cell upset, pin/lane, whole chip) and a
//! transient/permanent nature. Granularity decides the corruption
//! *pattern* inside the chip's codeword symbol; every granularity
//! corrupts at least one bit of exactly one symbol, so the symbol-level
//! combinatorics of the analytical model are unchanged — which is what
//! makes exact cross-validation possible.
//!
//! Two sampling regimes share one law:
//!
//! * **Plain** ([`FaultSampler::sample_pair`] / `sample_single`): the
//!   per-window fault count is drawn from the exact `Binomial(slots, p)`
//!   via a precomputed inverse CDF, then a uniform `k`-subset of slots
//!   is chosen by partial Fisher–Yates. This is distributionally
//!   identical to the per-chip Bernoulli loop it replaced but costs one
//!   `f64` draw instead of `slots` draws in the overwhelmingly common
//!   fault-free window.
//! * **Stratified** ([`StrataPlan`] + [`FaultSampler::sample_stratum`]):
//!   the same law partitioned by `(fault count, all-chip-granularity)`
//!   strata. Rare tail cells — the ones that decide SDC rates — get a
//!   fixed share of the trial budget, and each stratum's exact
//!   probability mass under the plain law is recorded so the estimator
//!   can reweight without bias (see `report::stratified_rate`).

use dve_reliability::accel::AccelParams;
use dve_sim::rng::SplitMix64;

/// Which copy of the replicated pair a fault lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The socket-local (home) copy.
    Primary,
    /// The remote replica copy.
    Replica,
}

/// Within-chip corruption pattern (Fig. 2's fault anatomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Single cell upset: one bit of the chip's symbol flips.
    Bit,
    /// Pin/lane fault: a short burst of bits inside the symbol.
    Pin,
    /// Whole-device failure: the symbol is fully randomized.
    Chip,
}

/// One sampled chip failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipFault {
    /// Which copy it affects.
    pub side: Side,
    /// Device index within the DIMM (`0..chips_per_dimm`).
    pub chip: usize,
    /// Corruption pattern inside the device's symbol.
    pub granularity: Granularity,
    /// Whether the failure clears on the §V-B2 write-repair (transient)
    /// or persists (permanent).
    pub transient: bool,
}

/// The fault set of one trial window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSample {
    /// All sampled failures, primary side first, ascending chip index.
    pub faults: Vec<ChipFault>,
}

impl FaultSample {
    /// Chip indices failed on one side, ascending.
    pub fn chips(&self, side: Side) -> Vec<usize> {
        self.faults
            .iter()
            .filter(|f| f.side == side)
            .map(|f| f.chip)
            .collect()
    }

    /// Number of *paired* failures: chips `i` failed on the primary
    /// whose partner `pair(i)` also failed on the replica. Under Dvé's
    /// layout a symbol is unrecoverable from either copy exactly when
    /// its pair overlaps, so this count drives DUE classification.
    pub fn pair_overlap(&self, pair: impl Fn(usize) -> usize) -> usize {
        let replica = self.chips(Side::Replica);
        self.chips(Side::Primary)
            .iter()
            .filter(|&&i| replica.contains(&pair(i)))
            .count()
    }

    /// Whether every fault on `side` is transient.
    pub fn all_transient(&self, side: Side) -> bool {
        self.faults
            .iter()
            .filter(|f| f.side == side)
            .all(|f| f.transient)
    }

    /// Whether any fault is active at all.
    pub fn any(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Fraction of failures that are single-bit upsets.
const BIT_FRAC: f64 = 0.55;
/// Fraction of failures that are pin/lane bursts (the rest are
/// whole-chip).
const PIN_FRAC: f64 = 0.25;
/// Fraction of failures that randomize the whole device symbol. These
/// are the only faults with uniform error magnitudes, so miscorrection
/// and detection-escape events concentrate in all-chip fault patterns —
/// which is why the strata split on this indicator.
pub const CHIP_FRAC: f64 = 1.0 - BIT_FRAC - PIN_FRAC;

/// Upper bound on slots (`2 * chips_per_dimm`) the samplers support.
const MAX_SLOTS: usize = 64;

/// Draws [`FaultSample`]s from accelerated window parameters.
///
/// # Example
///
/// ```
/// use dve_campaign::sampler::{FaultSampler, Side};
/// use dve_reliability::accel::AccelParams;
/// use dve_sim::rng::SplitMix64;
///
/// let s = FaultSampler::new(AccelParams::paper_accelerated());
/// let mut rng = SplitMix64::new(7);
/// let sample = s.sample_pair(&mut rng);
/// for f in &sample.faults {
///     assert!(f.chip < 9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FaultSampler {
    params: AccelParams,
    /// Inverse-CDF table for the per-side fault count:
    /// `side_cum[k] = P(Binomial(chips_per_dimm, p) <= k)`.
    side_cum: Vec<f64>,
}

impl FaultSampler {
    /// Creates a sampler for the given window parameters.
    pub fn new(params: AccelParams) -> FaultSampler {
        assert!(
            params.chips_per_dimm <= MAX_SLOTS / 2,
            "sampler supports at most {} chips per DIMM",
            MAX_SLOTS / 2
        );
        let pmf = binomial_pmf(params.chips_per_dimm, params.chip_fail_prob);
        FaultSampler {
            params,
            side_cum: cumulative(&pmf),
        }
    }

    /// The window parameters.
    pub fn params(&self) -> AccelParams {
        self.params
    }

    /// Samples one window over a replicated DIMM pair.
    pub fn sample_pair(&self, rng: &mut SplitMix64) -> FaultSample {
        let mut faults = Vec::new();
        for side in [Side::Primary, Side::Replica] {
            self.sample_side(side, rng, &mut faults);
        }
        FaultSample { faults }
    }

    /// Samples one window over a single (non-replicated) DIMM.
    pub fn sample_single(&self, rng: &mut SplitMix64) -> FaultSample {
        let mut faults = Vec::new();
        self.sample_side(Side::Primary, rng, &mut faults);
        FaultSample { faults }
    }

    /// Draws one side's faults: an exact binomial count via inverse CDF,
    /// then a uniform subset of chips, then per-fault refinement in
    /// ascending chip order — the same law as a per-chip Bernoulli scan.
    fn sample_side(&self, side: Side, rng: &mut SplitMix64, out: &mut Vec<ChipFault>) {
        let k = draw_index(&self.side_cum, rng);
        if k == 0 {
            return;
        }
        let n = self.params.chips_per_dimm;
        let (chips, k) = sorted_subset(n, k, rng);
        for &chip in &chips[..k] {
            let granularity = roll_granularity(rng);
            let transient = rng.chance(self.params.transient_frac);
            out.push(ChipFault {
                side,
                chip: chip as usize,
                granularity,
                transient,
            });
        }
    }

    /// Samples one window *conditioned on a stratum* of `plan`: the
    /// fault count (exact, or inverse-CDF within the tail), a uniform
    /// slot subset, and granularities conditioned on the stratum's
    /// all-chip indicator. Combined with the stratum's exact `weight`,
    /// this reproduces the plain law piecewise — the basis of the
    /// unbiased stratified estimator.
    pub fn sample_stratum(
        &self,
        plan: &StrataPlan,
        spec: &StratumSpec,
        rng: &mut SplitMix64,
    ) -> FaultSample {
        let k = if spec.stratum.tail {
            spec.stratum.count as usize + draw_index(&spec.tail_cum, rng)
        } else {
            spec.stratum.count as usize
        };
        let mut faults = Vec::new();
        if k == 0 {
            return FaultSample { faults };
        }
        let (slots, k) = sorted_subset(plan.slots, k, rng);
        let mut grans = [Granularity::Chip; MAX_SLOTS];
        if spec.stratum.all_chip {
            // Conditioning pins every granularity; no rolls needed.
        } else {
            // Rejection-sample the granularity vector conditioned on
            // "not all whole-chip". Acceptance >= 1 - CHIP_FRAC per
            // round, so the loop terminates almost immediately.
            loop {
                let mut any_partial = false;
                for g in grans.iter_mut().take(k) {
                    *g = roll_granularity(rng);
                    any_partial |= *g != Granularity::Chip;
                }
                if any_partial {
                    break;
                }
            }
        }
        let n = self.params.chips_per_dimm;
        for i in 0..k {
            let slot = slots[i] as usize;
            let (side, chip) = if slot < n {
                (Side::Primary, slot)
            } else {
                (Side::Replica, slot - n)
            };
            let transient = rng.chance(self.params.transient_frac);
            faults.push(ChipFault {
                side,
                chip,
                granularity: grans[i],
                transient,
            });
        }
        FaultSample { faults }
    }
}

/// Rolls one fault's granularity from the paper's anatomy mix.
fn roll_granularity(rng: &mut SplitMix64) -> Granularity {
    let roll = rng.next_f64();
    if roll < BIT_FRAC {
        Granularity::Bit
    } else if roll < BIT_FRAC + PIN_FRAC {
        Granularity::Pin
    } else {
        Granularity::Chip
    }
}

/// Draws an index from a cumulative distribution table:
/// the smallest `k` with `u < cum[k]`.
fn draw_index(cum: &[f64], rng: &mut SplitMix64) -> usize {
    let u = rng.next_f64();
    cum.iter()
        .position(|&c| u < c)
        .unwrap_or(cum.len().saturating_sub(1))
}

/// Chooses a uniform `k`-subset of `0..n` by partial Fisher–Yates and
/// returns it sorted ascending (the sampler's ordering invariant).
fn sorted_subset(n: usize, k: usize, rng: &mut SplitMix64) -> ([u8; MAX_SLOTS], usize) {
    debug_assert!(n <= MAX_SLOTS && k <= n);
    let mut slots = [0u8; MAX_SLOTS];
    for (i, s) in slots.iter_mut().enumerate().take(n) {
        *s = i as u8;
    }
    for i in 0..k {
        let j = i + rng.next_below((n - i) as u64) as usize;
        slots.swap(i, j);
    }
    slots[..k].sort_unstable();
    (slots, k)
}

/// `Binomial(n, p)` probability mass function, `pmf[k] = P(K = k)`,
/// computed by the stable multiplicative recurrence.
///
/// The recurrence is seeded from the mode-side end of the distribution:
/// for `p > 0.5` it runs on the complement and mirrors the result
/// (`Binomial(n, p)[k] == Binomial(n, 1 - p)[n - k]`). Seeding from
/// `q^n` directly would underflow to `0.0` for `p` near 1 (at `n = 36`
/// that happens before `q` itself is anywhere near subnormal), zeroing
/// *every* entry of the table — including the ones carrying essentially
/// all of the probability mass. Individual far-tail entries can still
/// underflow to subnormal/zero at extreme rates; [`StrataPlan::build`]
/// treats those cells as skipped rather than reweighting by them.
fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    let mut pmf = vec![0.0; n + 1];
    if p <= 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    if p >= 1.0 {
        pmf[n] = 1.0;
        return pmf;
    }
    let (p, mirrored) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
    let q = 1.0 - p;
    // Here `q >= 0.5`, so the seed `q^n` and the ratio `p / q` are both
    // well inside the normal f64 range for any supported `n`.
    pmf[0] = q.powi(n as i32);
    for k in 0..n {
        pmf[k + 1] = pmf[k] * ((n - k) as f64 / (k + 1) as f64) * (p / q);
    }
    if mirrored {
        pmf.reverse();
    }
    pmf
}

/// Clamps an underflowed stratum mass to exactly zero.
///
/// A subnormal weight is a sign the exact mass fell off the bottom of
/// f64: reweighting by it (dividing conditional tables by it, scaling
/// rates up by its reciprocal) amplifies representation error by up to
/// ~10^308 and can round through `inf`/`NaN` in downstream arithmetic.
/// Such cells carry no statistically usable information anyway, so they
/// are excluded from sampling and counted in [`StrataPlan::skipped`].
fn usable_mass(w: f64) -> f64 {
    debug_assert!(w.is_finite() && w >= 0.0, "stratum mass {w} out of range");
    if w >= f64::MIN_POSITIVE {
        w
    } else {
        0.0
    }
}

/// Running-sum table, clamped so the final entry is exactly 1.
fn cumulative(pmf: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cum: Vec<f64> = pmf
        .iter()
        .map(|&w| {
            acc += w;
            acc.min(1.0)
        })
        .collect();
    if let Some(last) = cum.last_mut() {
        *last = 1.0;
    }
    cum
}

/// One cell of the stratification: windows bucketed by total fault
/// count across all sampled slots and by whether *every* fault is
/// whole-chip granularity.
///
/// The all-chip split matters because whole-chip faults are the only
/// ones with uniform error magnitudes — miscorrections and detection
/// escapes concentrate there, and those cells get the bulk of the
/// oversampling budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stratum {
    /// Exact fault count when `tail` is false; the lower edge of the
    /// open tail (`count..=slots`) when `tail` is true.
    pub count: u8,
    /// Whether this stratum aggregates all counts `>= count`.
    pub tail: bool,
    /// Whether every fault in the window is `Granularity::Chip`.
    /// Always false for the empty stratum (`count == 0`).
    pub all_chip: bool,
}

impl Stratum {
    /// Short human-readable cell name for reports, e.g. `k=2 all-chip`
    /// or `k>=4 mixed`.
    pub fn label(&self) -> String {
        let cmp = if self.tail { ">=" } else { "=" };
        if self.count == 0 && !self.tail {
            return "k=0".to_string();
        }
        let class = if self.all_chip { "all-chip" } else { "mixed" };
        format!("k{cmp}{} {class}", self.count)
    }
}

/// One stratum with its exact probability mass, its slice of the trial
/// budget, and (for tail strata) the conditional count distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumSpec {
    /// Which cell this is.
    pub stratum: Stratum,
    /// Exact probability mass of the cell under the plain sampling law.
    pub weight: f64,
    /// Number of trials allocated to the cell.
    pub trials: u64,
    /// First trial index of the cell's contiguous `[start, start+trials)`
    /// range — contiguity keeps trial->stratum assignment a pure
    /// function of the trial index, independent of worker scheduling.
    pub start: u64,
    /// Tail strata only: inverse-CDF table over counts
    /// `count..=slots`, conditioned on this cell.
    tail_cum: Vec<f64>,
}

/// A full-budget stratified sampling plan over one campaign's trials.
///
/// Strata partition the plain law by `(count, all-chip)`; each cell's
/// `weight` is its exact mass, so `sum(weights) == 1` and the
/// reweighted estimator is unbiased. Trial indices are carved into
/// contiguous per-cell ranges, so a trial's stratum — like everything
/// else about it — is a pure function of `(plan, trial index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct StrataPlan {
    /// Total Bernoulli slots per window: `chips_per_dimm` for
    /// single-DIMM schemes, `2 * chips_per_dimm` for replicated pairs.
    pub slots: usize,
    /// Lower edge of the aggregated tail cells.
    pub tail_min: u8,
    /// Total trials across all cells.
    pub total_trials: u64,
    /// Number of cells excluded from sampling because their exact
    /// probability mass is zero or underflowed to subnormal. Skipped
    /// cells keep a `weight` of exactly `0.0` and receive no trials,
    /// so the reweighted estimator never divides or scales by an
    /// unrepresentably small mass.
    pub skipped: usize,
    /// The cells, in trial-index order.
    pub strata: Vec<StratumSpec>,
}

/// Default tail edge: counts `0..=3` get exact cells (3 whole-chip
/// faults on one side is the lightest DSD/TSD detection-escape
/// pattern), everything heavier aggregates into the tail.
pub const DEFAULT_TAIL_MIN: u8 = 4;

impl StrataPlan {
    /// Builds the plan for `trials` windows under `params`.
    ///
    /// `replicated` selects pair (2n slots) vs single-DIMM (n slots)
    /// windows. `tail_min` is clamped to `[2, slots]`. Cells whose
    /// probability mass is zero — or so small it underflows to a
    /// subnormal f64 — receive zero trials and are tallied in
    /// [`StrataPlan::skipped`]: sampling a zero-probability condition
    /// is undefined, and reweighting by an underflowed mass would let
    /// `inf`/`NaN` into the estimator.
    pub fn build(params: &AccelParams, replicated: bool, tail_min: u8, trials: u64) -> StrataPlan {
        let n = params.chips_per_dimm;
        let slots = if replicated { 2 * n } else { n };
        assert!(slots <= MAX_SLOTS, "too many slots for the sampler");
        let tail_min = tail_min.clamp(2, slots as u8);
        let pmf = binomial_pmf(slots, params.chip_fail_prob);
        let c = CHIP_FRAC;

        let mut strata = Vec::new();
        let mut push = |stratum: Stratum, weight: f64, tail_cum: Vec<f64>| {
            strata.push(StratumSpec {
                stratum,
                weight: usable_mass(weight),
                trials: 0,
                start: 0,
                tail_cum,
            });
        };

        push(
            Stratum {
                count: 0,
                tail: false,
                all_chip: false,
            },
            pmf[0],
            Vec::new(),
        );
        for (k, &pmf_k) in pmf.iter().enumerate().take(tail_min as usize).skip(1) {
            let all_chip_mass = pmf_k * c.powi(k as i32);
            push(
                Stratum {
                    count: k as u8,
                    tail: false,
                    all_chip: false,
                },
                pmf_k - all_chip_mass,
                Vec::new(),
            );
            push(
                Stratum {
                    count: k as u8,
                    tail: false,
                    all_chip: true,
                },
                all_chip_mass,
                Vec::new(),
            );
        }
        // Tail cells: aggregate mass plus the conditional count law.
        for all_chip in [false, true] {
            let cell_pmf: Vec<f64> = (tail_min as usize..=slots)
                .map(|k| {
                    let ck = c.powi(k as i32);
                    pmf[k] * if all_chip { ck } else { 1.0 - ck }
                })
                .collect();
            let mass = usable_mass(cell_pmf.iter().sum());
            // Normalize the conditional count law only against a mass
            // the FPU can actually divide by; an underflowed cell keeps
            // an empty table (it gets no trials, so it is never drawn).
            let tail_cum = if mass > 0.0 {
                cumulative(&cell_pmf.iter().map(|w| w / mass).collect::<Vec<_>>())
            } else {
                Vec::new()
            };
            push(
                Stratum {
                    count: tail_min,
                    tail: true,
                    all_chip,
                },
                mass,
                tail_cum,
            );
        }

        allocate_trials(&mut strata, trials);
        let mut start = 0;
        for spec in &mut strata {
            spec.start = start;
            start += spec.trials;
        }
        let skipped = strata.iter().filter(|s| s.weight == 0.0).count();
        StrataPlan {
            slots,
            tail_min,
            total_trials: trials,
            skipped,
            strata,
        }
    }

    /// Index of the stratum owning `trial`.
    pub fn stratum_of(&self, trial: u64) -> usize {
        debug_assert!(trial < self.total_trials);
        let idx = self.strata.partition_point(|s| s.start + s.trials <= trial);
        debug_assert!(idx < self.strata.len());
        idx.min(self.strata.len() - 1)
    }
}

/// The oversampling budget, in relative shares, for each cell class.
/// Rare all-chip cells — where miscorrection/escape events live — get
/// the bulk; common cells keep just enough trials to pin their (large,
/// easy) conditional rates.
fn allocation_share(s: &Stratum) -> f64 {
    if s.count == 0 && !s.tail {
        return 1.0;
    }
    match (s.all_chip, s.tail, s.count) {
        (false, false, 1) => 4.0,
        (false, _, _) => 8.0,
        (true, false, 1) => 2.0,
        (true, false, 2) => 15.0,
        (true, _, _) => 27.0,
    }
}

/// Splits `trials` across cells proportionally to [`allocation_share`]
/// (zero-mass cells get nothing) with largest-remainder rounding, so
/// the counts are deterministic and sum exactly to `trials`.
fn allocate_trials(strata: &mut [StratumSpec], trials: u64) {
    let shares: Vec<f64> = strata
        .iter()
        .map(|s| {
            if s.weight > 0.0 {
                allocation_share(&s.stratum)
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = shares.iter().sum();
    if total <= 0.0 {
        return;
    }
    let exact: Vec<f64> = shares.iter().map(|sh| trials as f64 * sh / total).collect();
    let mut assigned = 0u64;
    for (spec, &e) in strata.iter_mut().zip(&exact) {
        spec.trials = e.floor() as u64;
        assigned += spec.trials;
    }
    let mut order: Vec<usize> = (0..strata.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    let mut leftover = trials - assigned;
    for &i in &order {
        if leftover == 0 {
            break;
        }
        if shares[i] > 0.0 {
            strata[i].trials += 1;
            leftover -= 1;
        }
    }
    // If every share was rounded up already (tiny budgets), dump the
    // rest on the highest-share cell.
    if leftover > 0 {
        if let Some((i, _)) = shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        {
            strata[i].trials += leftover;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> FaultSampler {
        FaultSampler::new(AccelParams::paper_accelerated())
    }

    #[test]
    fn deterministic_given_rng_state() {
        let s = sampler();
        let a = s.sample_pair(&mut SplitMix64::new(42));
        let b = s.sample_pair(&mut SplitMix64::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_rate_tracks_p() {
        let s = sampler();
        let mut rng = SplitMix64::new(1);
        let trials = 20_000;
        let mut failures = 0usize;
        for _ in 0..trials {
            failures += s.sample_pair(&mut rng).faults.len();
        }
        let per_chip = failures as f64 / (trials * 18) as f64;
        let p = s.params().chip_fail_prob;
        assert!(
            (per_chip - p).abs() / p < 0.05,
            "empirical {per_chip} vs configured {p}"
        );
    }

    #[test]
    fn sample_ordering_invariant_holds() {
        let s = sampler();
        let mut rng = SplitMix64::new(11);
        for _ in 0..2_000 {
            let sample = s.sample_pair(&mut rng);
            let mut last: Option<(usize, usize)> = None;
            for f in &sample.faults {
                let key = (
                    match f.side {
                        Side::Primary => 0,
                        Side::Replica => 1,
                    },
                    f.chip,
                );
                assert!(last.is_none_or(|l| l < key), "out of order: {sample:?}");
                last = Some(key);
            }
        }
    }

    #[test]
    fn overlap_counts_paired_chips_only() {
        let mk = |side, chip| ChipFault {
            side,
            chip,
            granularity: Granularity::Chip,
            transient: false,
        };
        let sample = FaultSample {
            faults: vec![
                mk(Side::Primary, 2),
                mk(Side::Primary, 5),
                mk(Side::Replica, 2),
                mk(Side::Replica, 7),
            ],
        };
        assert_eq!(sample.pair_overlap(|i| i), 1);
        // A shifted pairing can turn the overlap on or off.
        assert_eq!(sample.pair_overlap(|i| (i + 2) % 9), 1); // 5 -> 7
        assert_eq!(sample.pair_overlap(|i| (i + 1) % 9), 0);
    }

    #[test]
    fn single_side_sampling_never_hits_replica() {
        let s = sampler();
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let sample = s.sample_single(&mut rng);
            assert!(sample.chips(Side::Replica).is_empty());
        }
    }

    #[test]
    fn granularity_mix_materializes() {
        let s = sampler();
        let mut rng = SplitMix64::new(9);
        let mut bits = 0;
        let mut pins = 0;
        let mut chips = 0;
        for _ in 0..20_000 {
            for f in s.sample_pair(&mut rng).faults {
                match f.granularity {
                    Granularity::Bit => bits += 1,
                    Granularity::Pin => pins += 1,
                    Granularity::Chip => chips += 1,
                }
            }
        }
        let total = (bits + pins + chips) as f64;
        assert!((bits as f64 / total - BIT_FRAC).abs() < 0.05);
        assert!((pins as f64 / total - PIN_FRAC).abs() < 0.05);
        assert!(chips > 0);
    }

    fn plan(trials: u64) -> StrataPlan {
        StrataPlan::build(
            &AccelParams::paper_accelerated(),
            true,
            DEFAULT_TAIL_MIN,
            trials,
        )
    }

    #[test]
    fn strata_partition_the_plain_law() {
        let p = plan(100_000);
        let mass: f64 = p.strata.iter().map(|s| s.weight).sum();
        assert!((mass - 1.0).abs() < 1e-12, "total mass {mass}");
        let trials: u64 = p.strata.iter().map(|s| s.trials).sum();
        assert_eq!(trials, 100_000);
        // 9 cells at tail_min = 4: k=0, three exact counts x two
        // granularity classes, two tail classes.
        assert_eq!(p.strata.len(), 9);
    }

    #[test]
    fn stratum_of_matches_contiguous_ranges() {
        let p = plan(12_345);
        for (i, spec) in p.strata.iter().enumerate() {
            if spec.trials == 0 {
                continue;
            }
            assert_eq!(p.stratum_of(spec.start), i);
            assert_eq!(p.stratum_of(spec.start + spec.trials - 1), i);
        }
        assert_eq!(
            p.stratum_of(p.total_trials - 1),
            p.strata.len() - 1,
            "last trial must land in the last cell"
        );
    }

    #[test]
    fn rare_cells_get_the_budget() {
        let p = plan(1_000_000);
        let all_chip_heavy: u64 = p
            .strata
            .iter()
            .filter(|s| s.stratum.all_chip && (s.stratum.count >= 3 || s.stratum.tail))
            .map(|s| s.trials)
            .sum();
        assert!(
            all_chip_heavy as f64 > 0.4 * p.total_trials as f64,
            "escape-bearing cells got only {all_chip_heavy} of {}",
            p.total_trials
        );
    }

    #[test]
    fn sample_stratum_respects_conditioning() {
        let s = sampler();
        let p = plan(9_000);
        let mut rng = SplitMix64::new(77);
        for spec in &p.strata {
            for _ in 0..300 {
                let sample = s.sample_stratum(&p, spec, &mut rng);
                let k = sample.faults.len();
                if spec.stratum.tail {
                    assert!(k >= spec.stratum.count as usize, "{:?}: {k}", spec.stratum);
                } else {
                    assert_eq!(k, spec.stratum.count as usize, "{:?}", spec.stratum);
                }
                if spec.stratum.all_chip {
                    assert!(sample
                        .faults
                        .iter()
                        .all(|f| f.granularity == Granularity::Chip));
                } else if k > 0 {
                    assert!(
                        sample
                            .faults
                            .iter()
                            .any(|f| f.granularity != Granularity::Chip),
                        "mixed stratum produced an all-chip sample"
                    );
                }
                for f in &sample.faults {
                    assert!(f.chip < s.params().chips_per_dimm);
                }
            }
        }
    }

    #[test]
    fn stratified_law_matches_plain_frequencies() {
        // Classify plain samples into cells and compare against the
        // plan's exact weights — the unbiasedness precondition.
        let s = sampler();
        let p = plan(1);
        let mut rng = SplitMix64::new(5);
        let trials = 60_000u64;
        let mut counts = vec![0u64; p.strata.len()];
        for _ in 0..trials {
            let sample = s.sample_pair(&mut rng);
            let k = sample.faults.len();
            let all_chip = k > 0
                && sample
                    .faults
                    .iter()
                    .all(|f| f.granularity == Granularity::Chip);
            let idx = p
                .strata
                .iter()
                .position(|spec| {
                    let st = spec.stratum;
                    if st.tail {
                        k >= st.count as usize && st.all_chip == all_chip
                    } else if st.count == 0 {
                        k == 0
                    } else {
                        k == st.count as usize && st.all_chip == all_chip
                    }
                })
                .expect("every sample lands in a cell");
            counts[idx] += 1;
        }
        for (spec, &c) in p.strata.iter().zip(&counts) {
            if spec.weight < 1e-3 {
                continue; // too rare to verify empirically
            }
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - spec.weight).abs() / spec.weight < 0.15,
                "{}: freq {freq} vs weight {}",
                spec.stratum.label(),
                spec.weight
            );
        }
    }

    #[test]
    fn zero_probability_strata_get_no_trials() {
        let params = AccelParams {
            chip_fail_prob: 0.0,
            ..AccelParams::paper_accelerated()
        };
        let p = StrataPlan::build(&params, true, DEFAULT_TAIL_MIN, 10_000);
        for spec in &p.strata {
            if spec.stratum.count == 0 && !spec.stratum.tail {
                assert_eq!(spec.trials, 10_000);
            } else {
                assert_eq!(spec.weight, 0.0);
                assert_eq!(spec.trials, 0, "{}", spec.stratum.label());
            }
        }
        // Sampling the only populated cell works.
        let s = FaultSampler::new(params);
        let sample = s.sample_stratum(&p, &p.strata[0], &mut SplitMix64::new(1));
        assert!(!sample.any());
    }

    #[test]
    fn near_one_fault_rate_keeps_full_mass() {
        // At p = 1 - 1e-9 over 36 slots the naive recurrence seed
        // q^36 = 1e-324 underflows to exactly 0.0, wiping the whole
        // pmf (and with it every stratum weight). The mirrored
        // recurrence must keep the mass — concentrated at high fault
        // counts — finite and summing to 1.
        let params = AccelParams {
            chip_fail_prob: 1.0 - 1e-9,
            ..AccelParams::paper_accelerated()
        };
        let p = StrataPlan::build(&params, true, DEFAULT_TAIL_MIN, 10_000);
        for spec in &p.strata {
            assert!(
                spec.weight.is_finite() && spec.weight >= 0.0,
                "{}: weight {}",
                spec.stratum.label(),
                spec.weight
            );
        }
        let mass: f64 = p.strata.iter().map(|s| s.weight).sum();
        assert!((mass - 1.0).abs() < 1e-6, "total mass {mass}");
        let trials: u64 = p.strata.iter().map(|s| s.trials).sum();
        assert_eq!(trials, 10_000);
        // Essentially all windows see >= tail_min faults.
        let tail_mass: f64 = p
            .strata
            .iter()
            .filter(|s| s.stratum.tail)
            .map(|s| s.weight)
            .sum();
        assert!(tail_mass > 1.0 - 1e-6, "tail mass {tail_mass}");
        // And the tail cells are actually drawable: conditional count
        // tables present, samples land in-range and deterministic.
        let s = FaultSampler::new(params);
        for spec in p.strata.iter().filter(|s| s.trials > 0) {
            let a = s.sample_stratum(&p, spec, &mut SplitMix64::new(13));
            let b = s.sample_stratum(&p, spec, &mut SplitMix64::new(13));
            assert_eq!(a, b);
            assert!(a.faults.len() <= p.slots);
        }
    }

    #[test]
    fn underflowed_strata_are_skipped_not_nan() {
        // p = 1e-157 puts the exact k=2 mass (~630 * p^2 ~ 6e-312) in
        // the subnormal range and everything heavier at 0.0: those
        // cells must be clamped to weight 0, get no trials, and be
        // reported via the skipped count — never reweighted into
        // inf/NaN.
        for rate in [1e-157_f64, 1e-300] {
            let params = AccelParams {
                chip_fail_prob: rate,
                ..AccelParams::paper_accelerated()
            };
            let p = StrataPlan::build(&params, true, DEFAULT_TAIL_MIN, 10_000);
            for spec in &p.strata {
                assert!(
                    spec.weight == 0.0 || spec.weight >= f64::MIN_POSITIVE,
                    "{}: subnormal weight {} survived",
                    spec.stratum.label(),
                    spec.weight
                );
                if spec.weight == 0.0 {
                    assert_eq!(spec.trials, 0, "{}", spec.stratum.label());
                    if spec.stratum.tail {
                        assert!(spec.tail_cum.is_empty());
                    }
                }
            }
            let zeroed = p.strata.iter().filter(|s| s.weight == 0.0).count();
            assert_eq!(p.skipped, zeroed);
            assert!(
                p.skipped >= 6,
                "rate {rate}: expected the k>=2 cells skipped, got {}",
                p.skipped
            );
            // The surviving cells still absorb the whole budget and
            // essentially the whole mass (what was dropped is below
            // ~1e-300 by construction).
            let trials: u64 = p.strata.iter().map(|s| s.trials).sum();
            assert_eq!(trials, 10_000);
            let mass: f64 = p.strata.iter().map(|s| s.weight).sum();
            assert!((mass - 1.0).abs() < 1e-12, "rate {rate}: mass {mass}");
        }
        // Healthy mid-range rates skip nothing.
        assert_eq!(plan(10_000).skipped, 0);
    }

    #[test]
    fn stratum_labels_are_distinct() {
        let p = plan(100);
        let mut labels: Vec<String> = p.strata.iter().map(|s| s.stratum.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), p.strata.len());
    }
}
