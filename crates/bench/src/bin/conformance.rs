//! Differential conformance fuzzing of the production coherence engine
//! (see `dve-conformance`): every builtin mode/structure configuration
//! is driven with profile-biased random traces against the golden
//! sequentially-consistent shadow, checking SWMR, inclusion, directory
//! agreement, replica freshness, read-returns-last-write, latency
//! monotonicity and stats conservation after **every** operation.
//!
//! ```text
//! cargo run -p dve-bench --bin conformance --release            # full run
//! cargo run -p dve-bench --bin conformance --release -- smoke   # CI smoke
//! cargo run -p dve-bench --bin conformance --release -- mutation
//! ```
//!
//! Environment knobs:
//!
//! * `DVE_CONFORMANCE_OPS`  — ops per configuration (default 100 000;
//!   smoke mode divides by 10)
//! * `DVE_CONFORMANCE_SEED` — master seed (default the bench seed);
//!   same seed ⇒ bit-identical run
//!
//! Exit status: non-zero if any configuration produces a violation
//! (fuzz modes) or any seeded mutation escapes / fails to shrink to a
//! ≤30-op trace (mutation mode). A violating trace is printed in the
//! exact form used by `crates/conformance/tests/regressions.rs`, ready
//! to commit as a regression test.

use dve_conformance::{builtin_configs, fuzz_config, mutation_check, shrink};
use std::process::ExitCode;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .unwrap_or(default)
}

fn run_fuzz(seed: u64, ops: u64) -> ExitCode {
    println!("conformance fuzz: {ops} ops/config, seed {seed:#x}");
    let mut failed = false;
    for cfg in builtin_configs() {
        let out = fuzz_config(&cfg, seed, ops, None);
        match out.failure {
            None => println!("  {:<22} {:>8} ops  ok", cfg.name, out.ops_run),
            Some(f) => {
                failed = true;
                println!(
                    "  {:<22} {:>8} ops  VIOLATION {}",
                    cfg.name, out.ops_run, f.violation
                );
                let (small, v) = shrink(&cfg, &f.trace, None, &f.violation);
                println!("    minimized to {} ops ({}):", small.len(), v.kind);
                println!("{}", dve_conformance::fuzz::format_trace(&small));
            }
        }
    }
    if failed {
        println!("conformance fuzz: FAILED");
        ExitCode::FAILURE
    } else {
        println!("conformance fuzz: all configurations clean");
        ExitCode::SUCCESS
    }
}

fn run_mutation(seed: u64, ops: u64) -> ExitCode {
    println!("mutation check: up to {ops} ops/config/bug, seed {seed:#x}");
    let reports = mutation_check(seed, ops);
    let mut failed = false;
    for r in &reports {
        if !r.caught {
            failed = true;
            println!("  {:<28} ESCAPED", format!("{:?}", r.bug));
            continue;
        }
        let ok = r.shrunk.len() <= 30;
        if !ok {
            failed = true;
        }
        println!(
            "  {:<28} caught by {:<22} in {:>6} ops, class {:<12} shrunk to {:>2} ops{}",
            format!("{:?}", r.bug),
            r.config,
            r.ops_to_catch,
            r.class,
            r.shrunk.len(),
            if ok { "" } else { "  TOO LONG" }
        );
    }
    if failed {
        println!("mutation check: FAILED (harness cannot be trusted)");
        ExitCode::FAILURE
    } else {
        println!(
            "mutation check: all {} seeded bugs caught and minimized",
            reports.len()
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "fuzz".into());
    let seed = env_u64("DVE_CONFORMANCE_SEED", dve_bench::SEED);
    let ops = env_u64("DVE_CONFORMANCE_OPS", 100_000);
    match mode.as_str() {
        "fuzz" => run_fuzz(seed, ops),
        "smoke" => run_fuzz(seed, ops / 10),
        "mutation" => run_mutation(seed, (ops / 10).max(2_000)),
        other => {
            eprintln!("unknown mode {other:?}; use fuzz | smoke | mutation");
            ExitCode::FAILURE
        }
    }
}
