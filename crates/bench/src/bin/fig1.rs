//! Regenerates **Fig. 1**: the reliability / performance / effective
//! capacity comparison of SEC-DED, Chipkill and Dvé.
//!
//! Reliability is the DUE improvement factor over Chipkill (log scale in
//! the figure), performance is the relative slowdown/speedup versus
//! non-ECC DRAM (the paper quotes 2–3% slowdown for Chipkill ECC and a
//! measured speedup for Dvé), and effective capacity is the fraction of
//! purchased DRAM holding unique user data.
//!
//! ```text
//! cargo run -p dve-bench --bin fig1 --release
//! ```

use dve::config::Scheme;
use dve_bench::{grouped, ops_from_env, run_all, speedups};
use dve_reliability::capacity::fig1_capacity_points;
use dve_reliability::fit::ThermalMapping;
use dve_reliability::model::ReliabilityModel;

fn main() {
    let m = ReliabilityModel::paper_defaults();
    let ck = m.chipkill();
    let dve = m.dve_tsd(ThermalMapping::Identity);

    // Performance: measure Dvé's dynamic scheme against baseline NUMA.
    let ops = ops_from_env().min(10_000);
    let base = run_all(Scheme::BaselineNuma, ops);
    let dyn_runs = run_all(Scheme::DveDynamic, ops);
    let g = grouped(&speedups(&dyn_runs, &base));

    println!("Fig. 1: DRAM reliability design points");
    println!();
    println!(
        "{:<10} {:>22} {:>18} {:>20}",
        "scheme", "DUE rate (/1e9 hr)", "performance", "effective capacity"
    );
    println!("{}", "-".repeat(74));
    let caps = fig1_capacity_points();
    let cap = |name: &str| {
        caps.iter()
            .find(|p| p.scheme == name)
            .map(|p| p.effective * 100.0)
            .unwrap_or(0.0)
    };
    // SEC-DED cannot correct chip failures at all: its uncorrectable
    // rate for the chip-granularity fault model is the single-chip
    // failure rate itself.
    println!(
        "{:<10} {:>22} {:>18} {:>19.2}%",
        "SEC-DED",
        "(chip faults DUE)",
        "~baseline",
        cap("SEC-DED")
    );
    println!(
        "{:<10} {:>22.3e} {:>18} {:>19.2}%",
        "Chipkill",
        ck.due,
        "-2..-3% (quoted)",
        cap("Chipkill")
    );
    println!(
        "{:<10} {:>22.3e} {:>17.1}% {:>19.2}%",
        "Dve+TSD",
        dve.due,
        (g.all20 - 1.0) * 100.0,
        cap("Dve")
    );
    println!();
    println!(
        "Dvé: {:.1}x lower DUE than Chipkill, +{:.1}% performance (all-20 geomean),",
        ck.due / dve.due,
        (g.all20 - 1.0) * 100.0
    );
    println!("capacity overhead applies only while replication is enabled (on-demand).");
}
