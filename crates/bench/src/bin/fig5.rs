//! Regenerates **Fig. 5**: the replica-directory stable states and
//! transitions for both protocol families — backed by the exhaustive
//! model-checking run of §V-C4 (the paper's Murphi verification,
//! rebuilt in `dve-verify`).
//!
//! ```text
//! cargo run -p dve-bench --bin fig5 --release
//! ```

use dve_verify::explore::census;
use dve_verify::{check, Variant};

fn main() {
    println!("Fig. 5: replica directory controller — stable states and transitions");
    println!();
    println!("Allow-based protocol (lazily pulled permissions; absence = not readable):");
    println!("  I  --GETS/replica miss--> pull PermReq from home --> S");
    println!("  S  --local read--> serve from replica memory (stay S)");
    println!("  S  --home-side GETX--> Inv from home --> I");
    println!("  I/S --replica-side GETX--> ReqX to home --> M");
    println!("  M  --replica LLC writeback--> write home+replica memory --> I");
    println!();
    println!("Deny-based protocol (eagerly pushed RM; absence = readable):");
    println!("  (absence) --local read--> serve from replica memory");
    println!("  (absence) --home-side GETX--> RmInstall pushed --> RM");
    println!("  RM --local read--> forward to home, line cleaned --> (absence)");
    println!("  RM --home writeback--> WbData clears --> (absence)");
    println!("  any --replica-side GETX--> ReqX to home --> M");
    println!();
    for v in [Variant::Allow, Variant::Deny] {
        let report = check(v, 5_000_000);
        let c = census(v, 5_000_000);
        println!("Exhaustive verification ({v:?}): {report}");
        println!(
            "  reached entries: S={} M={} RM={}; busy home-dir states={}, busy replica-dir states={}, inval sub-transactions={}",
            c.rdir_s, c.rdir_m, c.rdir_rm, c.hd_busy, c.rd_busy, c.rd_sub
        );
        assert!(report.ok(), "verification must pass");
    }
    println!();
    println!("Invariants checked on every reachable state: SWMR, data-value,");
    println!("replica consistency (reads never stale), deadlock freedom.");
}
