//! Regenerates **Fig. 7**: the sharing-pattern classification of
//! requests arriving at the home directory in the baseline NUMA system
//! (private-read / read-only / read-write / private-read-write).
//!
//! The paper's analysis: workloads with more than 46% private
//! read/write behaviour favor the allow protocol.
//!
//! ```text
//! cargo run -p dve-bench --bin fig7 --release
//! ```

use dve::config::Scheme;
use dve_bench::{header, ops_from_env, row, run_all};
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env();
    let base = run_all(Scheme::BaselineNuma, ops);
    println!(
        "{}",
        header(
            "Fig. 7: sharing pattern at the home directory (fractions)",
            &["private-read", "read-only", "read/write", "private-rw"]
        )
    );
    for (p, r) in catalog().iter().zip(&base) {
        let f = r.class_fractions;
        println!(
            "{}",
            row(
                p.name,
                &[
                    format!("{:.3}", f[0]),
                    format!("{:.3}", f[1]),
                    format!("{:.3}", f[2]),
                    format!("{:.3}", f[3]),
                ]
            )
        );
    }
    println!();
    let threshold_ok = catalog()
        .iter()
        .zip(&base)
        .filter(|(p, r)| p.paper_deny_winner() != (r.class_fractions[3] > 0.46))
        .count();
    println!(
        "workloads where the >46% private-rw rule predicts the allow/deny winner: {threshold_ok}/20"
    );
}
