//! Full parameter-sweep grid, emitted as CSV for external plotting.
//!
//! Sweeps every scheme across the Fig. 10 link latencies and writes one
//! row per (workload, scheme, latency) with the metrics each paper
//! figure consumes: cycles, speedup, inter-socket traffic, replica-read
//! share, memory energy, and EDP. This is the machine-readable
//! counterpart to the per-figure text harnesses.
//!
//! ```text
//! cargo run -p dve-bench --bin sweep --release > results/sweep.csv
//! ```

use dve::config::Scheme;
use dve_bench::{ops_from_env, run_with};
use dve_sim::time::Nanos;
use dve_workloads::catalog;
use std::collections::HashMap;

fn main() {
    let ops = ops_from_env().min(15_000); // 300 runs: keep each modest
    println!(
        "workload,scheme,link_ns,cycles,speedup,traffic_bytes,traffic_norm,replica_read_share,mem_joules,mem_edp,max_row_activations"
    );
    let latencies = [30u64, 50, 60];
    // Baselines first, keyed by (workload, latency).
    let mut baselines = HashMap::new();
    for p in catalog() {
        for &ns in &latencies {
            let r = run_with(&p, Scheme::BaselineNuma, ops, |c| {
                c.link_latency = Nanos(ns)
            });
            baselines.insert((p.name, ns), r);
        }
    }
    for p in catalog() {
        for scheme in Scheme::ALL {
            for &ns in &latencies {
                let r = if scheme == Scheme::BaselineNuma {
                    baselines[&(p.name, ns)].clone()
                } else {
                    run_with(&p, scheme, ops, |c| c.link_latency = Nanos(ns))
                };
                let base = &baselines[&(p.name, ns)];
                let dir_requests: u64 = r.engine.served[2..].iter().sum();
                let replica_share = if dir_requests == 0 {
                    0.0
                } else {
                    r.engine.replica_reads as f64 / dir_requests as f64
                };
                println!(
                    "{},{},{},{},{:.4},{},{:.4},{:.4},{:.6e},{:.6e},{}",
                    p.name,
                    scheme.label(),
                    ns,
                    r.cycles,
                    r.speedup_over(base),
                    r.traffic.total_bytes(),
                    r.traffic.normalized_to(&base.traffic),
                    replica_share,
                    r.mem_energy_joules,
                    r.mem_edp,
                    r.max_row_activations,
                );
            }
        }
    }
}
