//! Regenerates **Fig. 8**: inter-socket traffic of the allow and deny
//! protocols, normalized to baseline NUMA.
//!
//! Paper reference points: backprop and graph500 see ~86%/84% traffic
//! reductions; on average allow cuts 38% and deny 35%; traffic
//! reduction correlates with speedup.
//!
//! ```text
//! cargo run -p dve-bench --bin fig8 --release
//! ```

use dve::config::Scheme;
use dve_bench::{header, ops_from_env, row, run_all, speedups};
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env();
    let base = run_all(Scheme::BaselineNuma, ops);
    let allow = run_all(Scheme::DveAllow, ops);
    let deny = run_all(Scheme::DveDeny, ops);

    println!(
        "{}",
        header(
            "Fig. 8: inter-socket traffic normalized to NUMA",
            &["allow", "deny"]
        )
    );
    let mut allow_norms = Vec::new();
    let mut deny_norms = Vec::new();
    for (i, p) in catalog().iter().enumerate() {
        let na = allow[i].traffic.normalized_to(&base[i].traffic);
        let nd = deny[i].traffic.normalized_to(&base[i].traffic);
        allow_norms.push(na);
        deny_norms.push(nd);
        println!("{}", row(p.name, &[format!("{na:.3}"), format!("{nd:.3}")]));
    }
    println!();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average traffic reduction: allow {:.1}%  deny {:.1}%  (paper: 38%, 35%)",
        (1.0 - mean(&allow_norms)) * 100.0,
        (1.0 - mean(&deny_norms)) * 100.0
    );
    // Correlation between traffic reduction and speedup (deny).
    let s_deny = speedups(&deny, &base);
    let reductions: Vec<f64> = deny_norms.iter().map(|n| 1.0 - n).collect();
    let corr = pearson(&reductions, &s_deny);
    println!("correlation(traffic reduction, speedup) for deny: {corr:.2} (paper: positive)");
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}
