//! Regenerates **Fig. 6**: performance of the allow, deny and dynamic
//! Coherent Replication protocols (plus Intel-mirroring++) normalized
//! to baseline NUMA, for all 20 workloads with the paper's top-10 /
//! top-15 / all-20 geomeans.
//!
//! Paper reference points: deny +28%/+18%/+15%, allow +17%/+14%/+12%,
//! dynamic +29%/+22%/+18%; Dvé beats Intel-mirroring++ by 9–13%;
//! per-workload gains range 5%–117%; every bar ≥ 1.0.
//!
//! ```text
//! cargo run -p dve-bench --bin fig6 --release
//! ```

use dve::config::Scheme;
use dve_bench::{grouped, header, ops_from_env, row, run_all, speedups};
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env();
    eprintln!("running 5 schemes x 20 workloads at {ops} mem-ops/thread ...");
    let base = run_all(Scheme::BaselineNuma, ops);
    let mirror = run_all(Scheme::IntelMirrorPlus, ops);
    let allow = run_all(Scheme::DveAllow, ops);
    let deny = run_all(Scheme::DveDeny, ops);
    let dynamic = run_all(Scheme::DveDynamic, ops);

    let s_mirror = speedups(&mirror, &base);
    let s_allow = speedups(&allow, &base);
    let s_deny = speedups(&deny, &base);
    let s_dyn = speedups(&dynamic, &base);

    println!(
        "{}",
        header(
            "Fig. 6: speedup over baseline NUMA",
            &["intel-mirror++", "allow", "deny", "dynamic"]
        )
    );
    for (i, p) in catalog().iter().enumerate() {
        println!(
            "{}",
            row(
                p.name,
                &[
                    format!("{:.3}", s_mirror[i]),
                    format!("{:.3}", s_allow[i]),
                    format!("{:.3}", s_deny[i]),
                    format!("{:.3}", s_dyn[i]),
                ]
            )
        );
    }
    println!();
    for (name, s) in [
        ("intel-mirror++", &s_mirror),
        ("allow", &s_allow),
        ("deny", &s_deny),
        ("dynamic", &s_dyn),
    ] {
        let g = grouped(s);
        println!(
            "{name:<16} geomean: top-10 {:+.1}%  top-15 {:+.1}%  all-20 {:+.1}%",
            (g.top10 - 1.0) * 100.0,
            (g.top15 - 1.0) * 100.0,
            (g.all20 - 1.0) * 100.0
        );
    }
    println!();
    // The paper's headline claims, checked on our reproduction:
    let deny_winners: usize = catalog()
        .iter()
        .enumerate()
        .filter(|(i, p)| p.paper_deny_winner() && s_deny[*i] >= s_allow[*i])
        .count();
    println!("deny-protocol winners among the paper's 10 named benchmarks: {deny_winners}/10");
    let dyn_picks: usize = (0..20)
        .filter(|&i| s_dyn[i] >= s_allow[i].max(s_deny[i]) * 0.97)
        .count();
    println!("dynamic within 3% of the better static protocol: {dyn_picks}/20");
    let regressions: usize = (0..20)
        .filter(|&i| s_allow[i] < 0.995 || s_deny[i] < 0.995 || s_dyn[i] < 0.995)
        .count();
    println!("workloads slower than baseline under any Dvé scheme: {regressions}/20 (paper: 0)");
    let g_allow = grouped(&s_allow).all20;
    let g_deny = grouped(&s_deny).all20;
    let g_mirror = grouped(&s_mirror).all20;
    println!(
        "Dvé vs Intel-mirroring++ (all-20): allow {:+.1}%, deny {:+.1}% (paper: +9%, +13%)",
        (g_allow / g_mirror - 1.0) * 100.0,
        (g_deny / g_mirror - 1.0) * 100.0
    );
}
