//! Tracked performance baseline for the ECC decode pipeline, the
//! fault-injection campaign and the timed system simulator.
//!
//! Produces three machine-readable artifacts in the current directory:
//!
//! * `BENCH_ecc.json` — median ns/op for the GF kernels (table-driven
//!   vs the shift-and-add reference oracle), RS(18,16) encode and
//!   decode (clean / 1-error / 2-error), the DSD detect path, and the
//!   TSD (GF(2^16)) encode/detect path;
//! * `BENCH_campaign.json` — end-to-end campaign throughput in
//!   trials/second at 1, 2, 4 and 8 workers (plus N = available
//!   parallelism if distinct), with the parallel efficiency
//!   `tps_w / (w * tps_1)` of each point;
//! * `BENCH_system.json` — the full-system simulator on a pinned
//!   backprop trace: simulated cycles at `mshrs ∈ {1, 4}` (simulation
//!   output, machine-independent), simulator wall-clock throughput in
//!   memory-ops/second, the per-layer latency attribution of the
//!   deny run, and the `pdes_workers ∈ {1, 2, 4, 8}` section: system
//!   throughput under the sharded trace supply plus the conservative
//!   PDES toolkit's synthetic-memory scaling curve.
//!
//! All files record the git revision they were measured at, so the
//! numbers can be tracked across PRs (CI uploads them as artifacts).
//!
//! Flags:
//!
//! * `--smoke` — reduced-iteration run for CI: ~1 ms of timed batches
//!   per microbench, a small campaign and a short system trace; the
//!   JSON files are still written (tagged `"mode": "smoke"`).
//!
//! Exit code: non-zero if a built-in relative gate fails. Three gates,
//! all *relative* by design (absolute thresholds would flake across CI
//! hardware, while these ratios are machine-independent):
//!
//! 1. the clean RS(18,16) decode (syndrome-zero early exit) must be at
//!    least 2× faster than a full 1-error correction,
//! 2. campaign throughput at 2 workers must be at least 1.5× the
//!    1-worker rate — skipped with a printed notice on single-core
//!    hosts, where the ratio measures time-slicing rather than
//!    scaling, and
//! 3. widening the cores from 1 to 4 MSHRs must not increase simulated
//!    cycles on the pinned trace (memory-level parallelism can only
//!    hide latency; simulated cycles are deterministic, so this cannot
//!    flake with runner speed),
//! 4. the parallel trace supply must be bit-identical to the
//!    sequential runner on the pinned trace (deterministic; always
//!    enforced), and
//! 5. the PDES toolkit's synthetic-memory model must scale: at the
//!    largest benchmarked worker count the host can actually run in
//!    parallel, threaded throughput must beat 1-worker throughput by
//!    the per-count threshold (1.4× @ 2, 2.0× @ 4, 3.0× @ 8) — skipped
//!    with a printed notice on single-core hosts.

use criterion::{black_box, Criterion};
use dve::builder::SystemBuilder;
use dve::config::Scheme;
use dve_campaign::runner::{run_campaign, CampaignConfig, SamplingMode};
use dve_campaign::trial::CampaignScheme;
use dve_ecc::code::DetectionCode;
use dve_ecc::gf::{reference, Gf16, Gf256};
use dve_ecc::rs::Rs;
use dve_ecc::rs16::Rs16Detect;
use dve_sim::latency::Component;
use std::fmt::Write as _;
use std::process::{Command, ExitCode};
use std::time::{Duration, Instant};

/// How many scalar GF multiplies each GF routine performs per
/// iteration; reported numbers are divided by this.
const GF_BATCH: f64 = 255.0;

/// The gate: clean decode must be at least this many times faster than
/// a full 1-error decode.
const GATE_CLEAN_SPEEDUP: f64 = 2.0;

/// Campaign scaling gate: with a second hardware thread available,
/// 2-worker throughput must be at least this multiple of 1-worker
/// throughput. Relative, so it holds on any multi-core runner; skipped
/// (with a printed notice) when the host has a single hardware thread.
const GATE_SCALING_2W: f64 = 1.5;

/// PDES toolkit scaling gate: `(workers, minimum speedup over 1
/// worker)`, applied at the largest benchmarked worker count that does
/// not exceed the host's parallelism (skipped below 2 cores). The 8-way
/// 3.0× floor is deliberately below linear: the window barrier costs
/// real synchronization, and the gate guards scaling regressions, not
/// a lucky machine.
const GATE_PDES_SCALING: &[(usize, f64)] = &[(2, 1.4), (4, 2.0), (8, 3.0)];

/// Worker counts benchmarked by the PDES sections.
const PDES_WORKERS: &[usize] = &[1, 2, 4, 8];

struct Entry {
    name: &'static str,
    ns_per_op: f64,
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders a flat JSON object with a deterministic key order.
fn render_json(rev: &str, mode: &str, unit: &str, fields: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"git_rev\": \"{rev}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"unit\": \"{unit}\",");
    out.push_str("  \"results\": {\n");
    for (i, (name, value)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{name}\": {value:.3}{comma}");
    }
    out.push_str("  }\n}\n");
    out
}

fn bench_ecc(c: &mut Criterion) -> Vec<Entry> {
    let chipkill = Rs::chipkill();
    let dsd = Rs::dsd();
    let tsd = Rs16Detect::tsd(64);
    let data16: Vec<u8> = (0..16).collect();
    let line: Vec<u8> = (0..64).collect();
    let clean = chipkill.encode(&data16);
    let mut one_err = clean.clone();
    one_err[5] ^= 0xA5;
    let mut two_err = clean.clone();
    two_err[3] ^= 0x11;
    two_err[9] ^= 0x77;
    let tsd_clean = tsd.encode(&line);
    let mut tsd_err = tsd_clean.clone();
    tsd_err[7] ^= 0x42;
    tsd_err[40] ^= 0x99;

    let mut entries = Vec::new();
    let mut push = |c: &mut Criterion, name: &'static str, scale: f64| {
        let m = c.take_measurements().pop().expect("bench recorded nothing");
        entries.push(Entry {
            name,
            ns_per_op: m.median_ns_per_iter / scale,
        });
    };

    // --- GF scalar kernels: table-driven vs reference oracle. ---
    c.bench_function("gf256_mul", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for a in 1..=255u8 {
                acc ^= Gf256::mul(black_box(a), black_box(0x53));
            }
            acc
        })
    });
    push(c, "gf256_mul", GF_BATCH);

    c.bench_function("gf256_mul_reference", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for a in 1..=255u8 {
                acc ^= reference::gf256_mul(black_box(a), black_box(0x53));
            }
            acc
        })
    });
    push(c, "gf256_mul_reference", GF_BATCH);

    c.bench_function("gf16_mul", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for a in 1..=255u16 {
                acc ^= Gf16::mul(black_box(a * 131), black_box(0x1537));
            }
            acc
        })
    });
    push(c, "gf16_mul", GF_BATCH);

    c.bench_function("gf16_mul_reference", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for a in 1..=255u16 {
                acc ^= reference::gf16_mul(black_box(a * 131), black_box(0x1537));
            }
            acc
        })
    });
    push(c, "gf16_mul_reference", GF_BATCH);

    // --- GF slice kernels (per whole-slice call). ---
    let mut acc64 = vec![0u8; 64];
    let src64: Vec<u8> = (0..64).collect();
    c.bench_function("gf256_fma_slice_64", |b| {
        b.iter(|| {
            Gf256::fma_slice(black_box(&mut acc64), black_box(&src64), black_box(0x1D));
        })
    });
    push(c, "gf256_fma_slice_64", 1.0);

    let mut buf32: Vec<u16> = (0..32).map(|i| i * 257 + 1).collect();
    c.bench_function("gf16_mul_slice_assign_32", |b| {
        b.iter(|| {
            Gf16::mul_slice_assign(black_box(&mut buf32), black_box(0x1537));
        })
    });
    push(c, "gf16_mul_slice_assign_32", 1.0);

    // --- RS(18,16) Chipkill: encode + decode hot paths. ---
    let mut cw_buf = vec![0u8; chipkill.codeword_len()];
    c.bench_function("rs_encode_into", |b| {
        b.iter(|| {
            chipkill.encode_into(black_box(&data16), black_box(&mut cw_buf));
        })
    });
    push(c, "rs_encode_into", 1.0);

    let mut scratch = chipkill.make_scratch();
    let mut work = clean.clone();
    c.bench_function("rs_decode_clean", |b| {
        b.iter(|| {
            work.copy_from_slice(&clean);
            black_box(chipkill.decode_in_place(black_box(&mut work), &mut scratch))
        })
    });
    push(c, "rs_decode_clean", 1.0);

    c.bench_function("rs_decode_1err", |b| {
        b.iter(|| {
            work.copy_from_slice(&one_err);
            black_box(chipkill.decode_in_place(black_box(&mut work), &mut scratch))
        })
    });
    push(c, "rs_decode_1err", 1.0);

    c.bench_function("rs_decode_2err", |b| {
        b.iter(|| {
            work.copy_from_slice(&two_err);
            black_box(chipkill.decode_in_place(black_box(&mut work), &mut scratch))
        })
    });
    push(c, "rs_decode_2err", 1.0);

    // --- DSD detect-only check. ---
    c.bench_function("dsd_check_clean", |b| {
        b.iter(|| black_box(dsd.check(black_box(&clean))))
    });
    push(c, "dsd_check_clean", 1.0);

    // --- TSD (GF(2^16)) encode + detect. ---
    let mut tsd_buf = vec![0u8; tsd.codeword_len()];
    c.bench_function("tsd_encode_into", |b| {
        b.iter(|| {
            tsd.encode_into(black_box(&line), black_box(&mut tsd_buf));
        })
    });
    push(c, "tsd_encode_into", 1.0);

    c.bench_function("tsd_check_clean", |b| {
        b.iter(|| black_box(tsd.check(black_box(&tsd_clean))))
    });
    push(c, "tsd_check_clean", 1.0);

    c.bench_function("tsd_check_2err", |b| {
        b.iter(|| black_box(tsd.check(black_box(&tsd_err))))
    });
    push(c, "tsd_check_2err", 1.0);

    // --- Batched multi-codeword kernels: scalar loop vs the bitsliced
    // syndrome screen over 64 codewords (one cache-resident scratch).
    // Reported per codeword so the scalar/batch rows compare directly.
    const BATCH: usize = 64;
    let n = chipkill.codeword_len();
    let mut batch = vec![0u8; BATCH * n];
    for w in 0..BATCH {
        batch[w * n..(w + 1) * n].copy_from_slice(&clean);
    }
    let mut sparse = batch.clone();
    sparse[3 * n + 5] ^= 0xA5; // one correctable error in word 3
    sparse[41 * n + 2] ^= 0x3C; // and one in word 41
    let mut work_batch = batch.clone();
    let mut outcomes = Vec::with_capacity(BATCH);

    c.bench_function("rs_decode_scalar64_clean", |b| {
        b.iter(|| {
            work_batch.copy_from_slice(&batch);
            let mut acc = 0usize;
            for w in 0..BATCH {
                let cw = &mut work_batch[w * n..(w + 1) * n];
                acc += matches!(
                    chipkill.decode_in_place(cw, &mut scratch),
                    dve_ecc::code::CheckOutcome::NoError
                ) as usize;
            }
            black_box(acc)
        })
    });
    push(c, "rs_decode_scalar64_clean", BATCH as f64);

    c.bench_function("rs_decode_batch64_clean", |b| {
        b.iter(|| {
            work_batch.copy_from_slice(&batch);
            black_box(chipkill.decode_batch_in_place(
                black_box(&mut work_batch),
                &mut outcomes,
                &mut scratch,
            ))
        })
    });
    push(c, "rs_decode_batch64_clean", BATCH as f64);

    c.bench_function("rs_decode_batch64_sparse", |b| {
        b.iter(|| {
            work_batch.copy_from_slice(&sparse);
            black_box(chipkill.decode_batch_in_place(
                black_box(&mut work_batch),
                &mut outcomes,
                &mut scratch,
            ))
        })
    });
    push(c, "rs_decode_batch64_sparse", BATCH as f64);

    let mut dirty = Vec::new();
    c.bench_function("rs_dirty_mask_bitsliced_64", |b| {
        b.iter(|| {
            chipkill.dirty_mask_bitsliced(black_box(&batch), &mut dirty);
            black_box(dirty[0])
        })
    });
    push(c, "rs_dirty_mask_bitsliced_64", BATCH as f64);

    let tn = tsd.codeword_len();
    let mut tsd_batch = vec![0u8; BATCH * tn];
    for w in 0..BATCH {
        tsd_batch[w * tn..(w + 1) * tn].copy_from_slice(&tsd_clean);
    }
    c.bench_function("tsd_check_scalar64_clean", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for w in 0..BATCH {
                acc += matches!(
                    tsd.check(&tsd_batch[w * tn..(w + 1) * tn]),
                    dve_ecc::code::CheckOutcome::NoError
                ) as usize;
            }
            black_box(acc)
        })
    });
    push(c, "tsd_check_scalar64_clean", BATCH as f64);

    c.bench_function("tsd_check_batch64_clean", |b| {
        b.iter(|| black_box(tsd.check_batch(black_box(&tsd_batch), &mut outcomes)))
    });
    push(c, "tsd_check_batch64_clean", BATCH as f64);

    entries
}

fn bench_campaign(trials: u64) -> Vec<(String, f64)> {
    let n = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut worker_counts = vec![1usize, 2, 4, 8];
    if !worker_counts.contains(&n) {
        worker_counts.push(n);
    }
    let schemes = CampaignScheme::ALL.len() as u64;
    let mut out = Vec::new();
    out.push(("trials_per_scheme".to_string(), trials as f64));
    out.push(("schemes".to_string(), schemes as f64));
    out.push(("host_parallelism".to_string(), n as f64));
    let mut tps_1 = f64::NAN;
    for workers in worker_counts {
        let cfg = CampaignConfig {
            master_seed: 0xD5E_2021,
            trials,
            workers,
            params: dve_reliability::accel::AccelParams::paper_accelerated(),
            replay_ops: 0,
            sampling: SamplingMode::Plain,
        };
        // Warm-up pass: the first campaign run pays one-time costs
        // (thread spawn, page faults on the 384 KiB GF tables, branch
        // training) that otherwise roughly halve the measured
        // steady-state throughput. Run every scheme once untimed.
        for s in CampaignScheme::ALL {
            black_box(run_campaign(&cfg, s));
        }
        let start = Instant::now();
        for s in CampaignScheme::ALL {
            black_box(run_campaign(&cfg, s));
        }
        let secs = start.elapsed().as_secs_f64();
        let tps = (trials * schemes) as f64 / secs;
        if workers == 1 {
            tps_1 = tps;
        }
        // Parallel efficiency = tps_w / (w * tps_1): 1.0 is perfect
        // linear scaling. Only meaningful up to the host's core count —
        // past it the efficiency denominator keeps growing while the
        // hardware cannot.
        let eff = tps / (workers as f64 * tps_1);
        println!("  campaign workers={workers:<2} {tps:>12.0} trials/s  (efficiency {eff:.2})");
        out.push((format!("trials_per_sec_workers_{workers}"), tps));
        out.push((format!("parallel_efficiency_workers_{workers}"), eff));
    }
    out
}

/// Runs the full-system simulator on a pinned backprop trace and
/// returns the JSON fields plus the (mshrs=1, mshrs=4) simulated cycle
/// counts used by the MSHR gate.
fn bench_system(ops: u64) -> (Vec<(String, f64)>, u64, u64) {
    let p = dve_workloads::catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop profile");
    let run = |scheme, mshrs| {
        SystemBuilder::new(scheme)
            .ops_per_thread(ops)
            .mshrs(mshrs)
            .run(&p, 42)
    };
    let start = Instant::now();
    let base = run(Scheme::BaselineNuma, 1);
    let deny1 = run(Scheme::DveDeny, 1);
    let deny4 = run(Scheme::DveDeny, 4);
    let secs = start.elapsed().as_secs_f64();
    let sim_mem_ops = (base.mem_ops + deny1.mem_ops + deny4.mem_ops) as f64;

    let mut out = vec![
        ("ops_per_thread".to_string(), ops as f64),
        ("cycles_baseline_mshrs_1".to_string(), base.cycles as f64),
        ("cycles_deny_mshrs_1".to_string(), deny1.cycles as f64),
        ("cycles_deny_mshrs_4".to_string(), deny4.cycles as f64),
        ("sim_mem_ops_per_wall_sec".to_string(), sim_mem_ops / secs),
    ];
    // Per-layer attribution of the deny run's measured region: where
    // memory-access time actually goes (conserves to 1.0 by
    // construction).
    for c in Component::ALL {
        out.push((
            format!("latency_frac_{}", c.label()),
            deny1.latency.fraction(c),
        ));
    }
    // Tail latency of the measured region, total and per layer, from
    // the run's log-bucketed per-op histograms.
    let (p50, p99, p999) = deny1.latency_tail();
    out.push(("latency_p50_total".to_string(), p50 as f64));
    out.push(("latency_p99_total".to_string(), p99 as f64));
    out.push(("latency_p999_total".to_string(), p999 as f64));
    for c in Component::ALL {
        let (_, p99, _) = deny1.component_tail(c);
        out.push((format!("latency_p99_{}", c.label()), p99 as f64));
    }
    println!(
        "  cycles baseline/deny(m=1)/deny(m=4): {} / {} / {}  ({:.0} sim mem-ops/s)",
        base.cycles,
        deny1.cycles,
        deny4.cycles,
        sim_mem_ops / secs
    );
    (out, deny1.cycles, deny4.cycles)
}

/// Topology sweep section of `BENCH_system.json`: simulated cycles for
/// the deny scheme on each placement, plus the mirror-identity flag —
/// the explicit `mirror2` topology must be bit-identical to the
/// implicit mirror-pair config on the same trace (deterministic;
/// always gated).
fn bench_topology(ops: u64, deny_mirror_cycles: u64) -> (Vec<(String, f64)>, bool) {
    use dve::config::TopologySpec;
    let p = dve_workloads::catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop profile");
    let run = |spec| {
        SystemBuilder::new(Scheme::DveDeny)
            .ops_per_thread(ops)
            .mshrs(1)
            .topology(spec)
            .run(&p, 42)
    };
    let mut out = Vec::new();
    let mirror = run(TopologySpec::Mirror2);
    let identical = mirror.cycles == deny_mirror_cycles;
    out.push((
        "topology_mirror2_identity".to_string(),
        if identical { 1.0 } else { 0.0 },
    ));
    for spec in [
        TopologySpec::Mirror2,
        TopologySpec::Nway(4),
        TopologySpec::TwoTier,
    ] {
        let r = if spec == TopologySpec::Mirror2 {
            mirror.clone()
        } else {
            run(spec)
        };
        let key = spec.to_string().replace(':', "_");
        println!(
            "  topology {key:<8} cycles {} (replica reads {})",
            r.cycles, r.engine.replica_reads
        );
        out.push((format!("topology_cycles_deny_{key}"), r.cycles as f64));
        out.push((
            format!("topology_replica_reads_deny_{key}"),
            r.engine.replica_reads as f64,
        ));
    }
    (out, identical)
}

/// What [`bench_pdes`] hands back to `main`: the JSON fields, the
/// toolkit's `(workers, speedup over 1 worker)` points for the scaling
/// gate, and whether system bit-identity held.
struct PdesBench {
    fields: Vec<(String, f64)>,
    speedups: Vec<(usize, f64)>,
    identical: bool,
}

/// Benchmarks the parallel simulation core at each worker count:
/// the full system under the sharded trace supply (bit-identity
/// enforced), and the PDES toolkit's synthetic-memory model (the
/// genuinely domain-parallel executive).
fn bench_pdes(ops: u64, toolkit_ops: u64) -> PdesBench {
    let p = dve_workloads::catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop profile");
    let mut out = Vec::new();
    let mut identical = true;
    let mut ref_cycles = 0u64;
    for &w in PDES_WORKERS {
        let start = Instant::now();
        let r = SystemBuilder::new(Scheme::DveDeny)
            .ops_per_thread(ops)
            .pdes_workers(w)
            .run(&p, 42);
        let secs = start.elapsed().as_secs_f64();
        if w == 1 {
            ref_cycles = r.cycles;
        } else if r.cycles != ref_cycles {
            identical = false;
        }
        let tput = r.mem_ops as f64 / secs;
        println!(
            "  system  pdes_workers={w} {:>12.0} sim mem-ops/s (cycles {})",
            tput, r.cycles
        );
        out.push((format!("pdes_system_mem_ops_per_sec_workers_{w}"), tput));
    }
    out.push((
        "pdes_system_identity".to_string(),
        if identical { 1.0 } else { 0.0 },
    ));

    // The toolkit curve: 8 synthetic memory domains, 64 closed-loop
    // streams each, 20% remote traffic over a 150-cycle (50 ns @ 3 GHz)
    // lookahead channel — per-window work dominates barrier cost, which
    // is exactly the regime the domain-sharded executive targets.
    let mut speedups = Vec::new();
    let mut tput_1 = f64::NAN;
    for &w in PDES_WORKERS {
        let mut exec = dve_sim::pdes::synthetic_executive(8, 64, toolkit_ops, 0.2, 150, 42);
        let start = Instant::now();
        let stats = exec.run_threaded(w);
        let secs = start.elapsed().as_secs_f64();
        let tput = stats.events as f64 / secs;
        if w == 1 {
            tput_1 = tput;
        }
        let speedup = tput / tput_1;
        speedups.push((w, speedup));
        println!(
            "  toolkit pdes_workers={w} {:>12.0} events/s ({speedup:.2}x vs 1 worker)",
            tput
        );
        out.push((format!("pdes_toolkit_events_per_sec_workers_{w}"), tput));
        out.push((format!("pdes_toolkit_speedup_workers_{w}"), speedup));
    }
    PdesBench {
        fields: out,
        speedups,
        identical,
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let rev = git_rev();
    println!("perf baseline @ {rev} ({mode})");

    let mut c = Criterion::default();
    c.quiet(true).measurement_time(if smoke {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(20)
    });

    println!("-- ecc microbenches --");
    let ecc = bench_ecc(&mut c);
    let ecc_fields: Vec<(String, f64)> = ecc
        .iter()
        .map(|e| (e.name.to_string(), e.ns_per_op))
        .collect();
    for (name, ns) in &ecc_fields {
        println!("  {name:<28} {ns:>10.2} ns/op");
    }
    std::fs::write(
        "BENCH_ecc.json",
        render_json(&rev, mode, "ns_per_op_median", &ecc_fields),
    )
    .expect("write BENCH_ecc.json");

    println!("-- campaign throughput --");
    let trials = if smoke { 20_000 } else { 200_000 };
    let campaign_fields = bench_campaign(trials);
    std::fs::write(
        "BENCH_campaign.json",
        render_json(&rev, mode, "trials_per_sec", &campaign_fields),
    )
    .expect("write BENCH_campaign.json");

    println!("-- system simulator --");
    let sys_ops = if smoke { 300 } else { 2000 };
    let (mut system_fields, deny_m1, deny_m4) = bench_system(sys_ops);

    println!("-- topology sweep --");
    let (topo_fields, topo_identity) = bench_topology(sys_ops, deny_m1);
    system_fields.extend(topo_fields);

    println!("-- parallel simulation core --");
    let toolkit_ops = if smoke { 300 } else { 3000 };
    let pdes = bench_pdes(sys_ops, toolkit_ops);
    system_fields.extend(pdes.fields);
    std::fs::write(
        "BENCH_system.json",
        render_json(&rev, mode, "mixed_cycles_and_fractions", &system_fields),
    )
    .expect("write BENCH_system.json");
    println!("wrote BENCH_ecc.json, BENCH_campaign.json and BENCH_system.json");

    // --- Relative gate: the syndrome-zero early exit must pay off. ---
    let get = |name: &str| {
        ecc.iter()
            .find(|e| e.name == name)
            .map(|e| e.ns_per_op)
            .expect("gate metric missing")
    };
    let clean = get("rs_decode_clean");
    let full = get("rs_decode_1err");
    let speedup = full / clean;
    println!(
        "gate: clean decode {clean:.2} ns vs 1-err decode {full:.2} ns \
         ({speedup:.2}x, need >= {GATE_CLEAN_SPEEDUP:.1}x)"
    );
    if speedup < GATE_CLEAN_SPEEDUP {
        eprintln!("FAIL: clean-decode early exit regressed below the {GATE_CLEAN_SPEEDUP}x gate");
        return ExitCode::FAILURE;
    }

    // --- Campaign scaling gate: two workers must actually buy
    // throughput. Relative (workers=2 vs workers=1 on the same run) so
    // it is immune to absolute machine speed, but it does need a second
    // hardware thread to mean anything — on a single-core runner both
    // configurations time-slice one CPU and the ratio is ~1.0 by
    // physics, not by regression, so the gate is skipped with a notice.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let getc = |name: &str| {
        campaign_fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .expect("campaign gate metric missing")
    };
    let tps1 = getc("trials_per_sec_workers_1");
    let tps2 = getc("trials_per_sec_workers_2");
    if cores >= 2 {
        let ratio = tps2 / tps1;
        println!(
            "gate: campaign scaling workers=2 {tps2:.0} vs workers=1 {tps1:.0} trials/s \
             ({ratio:.2}x, need >= {GATE_SCALING_2W:.1}x)"
        );
        if ratio < GATE_SCALING_2W {
            eprintln!(
                "FAIL: campaign throughput at 2 workers is below {GATE_SCALING_2W}x the \
                 1-worker rate — parallel scaling regressed"
            );
            return ExitCode::FAILURE;
        }
    } else {
        println!(
            "gate: campaign scaling SKIPPED (host has {cores} hardware thread(s); \
             the 2-worker/1-worker ratio is meaningless without a second core)"
        );
    }

    // --- MSHR gate: memory-level parallelism must not hurt. Simulated
    // cycles are deterministic, so this cannot flake with runner speed.
    println!(
        "gate: deny cycles mshrs=4 {deny_m4} vs mshrs=1 {deny_m1} \
         ({:.3}x, need <= 1.0x)",
        deny_m4 as f64 / deny_m1 as f64
    );
    if deny_m4 > deny_m1 {
        eprintln!("FAIL: widening MSHRs 1 -> 4 increased simulated cycles");
        return ExitCode::FAILURE;
    }

    // --- Topology identity gate: the placement layer must be a pure
    // representation change at two nodes. Deterministic — always on.
    println!(
        "gate: topology mirror2 identity {}",
        if topo_identity { "held" } else { "BROKEN" }
    );
    if !topo_identity {
        eprintln!("FAIL: explicit mirror2 topology diverged from the mirror-pair config");
        return ExitCode::FAILURE;
    }

    // --- PDES identity gate: the sharded trace supply must reproduce
    // the sequential runner bit-for-bit. Deterministic — always on.
    println!(
        "gate: pdes system identity {}",
        if pdes.identical { "held" } else { "BROKEN" }
    );
    if !pdes.identical {
        eprintln!("FAIL: parallel trace supply diverged from the sequential runner");
        return ExitCode::FAILURE;
    }

    // --- PDES toolkit scaling gate: relative (threaded vs 1-worker on
    // the same run), applied at the largest benchmarked worker count
    // the host can actually run in parallel. On a single-core runner
    // every count time-slices one CPU, so the gate is skipped with a
    // notice, like the campaign scaling gate.
    let gate_point = GATE_PDES_SCALING.iter().rfind(|&&(w, _)| w <= cores);
    match gate_point {
        Some(&(w, need)) => {
            let got = pdes
                .speedups
                .iter()
                .find(|&&(sw, _)| sw == w)
                .map(|&(_, s)| s)
                .expect("speedup measured for gate point");
            println!(
                "gate: pdes toolkit scaling workers={w} {got:.2}x vs 1 worker \
                 (need >= {need:.1}x on this {cores}-core host)"
            );
            if got < need {
                eprintln!(
                    "FAIL: pdes toolkit speedup at {w} workers is {got:.2}x, \
                     below the {need:.1}x gate"
                );
                return ExitCode::FAILURE;
            }
        }
        None => {
            println!(
                "gate: pdes toolkit scaling SKIPPED (host has {cores} hardware thread(s); \
                 threaded speedup is meaningless without a second core)"
            );
        }
    }
    println!("gate: ok");
    ExitCode::SUCCESS
}
