//! Chaos harness: in-band fault injection against the running timed
//! system (§V-B2 exercised live, not as out-of-band unit fixtures).
//!
//! ```text
//! cargo run -p dve-bench --bin chaos --release            # full matrix
//! cargo run -p dve-bench --bin chaos --release -- smoke   # CI gate
//! ```
//!
//! Five phases, all gating the exit code:
//!
//! 1. **Golden gate** — an *armed but inert* chaos layer (empty
//!    schedule, no outages, no scrub, every correlated source armed
//!    at its inert setting) must reproduce the pinned cycle-exact
//!    goldens bit-identically at two seeds × three schemes. Detection
//!    is timing-neutral by construction; this proves it.
//! 2. **Directed transitions** — seeded schedules drive the full
//!    `Clean → CorrectedTransient → CorrectedDegraded → MachineCheck`
//!    ladder in-run: a transient fault is repaired in place, a hard
//!    fault degrades the copy and flips the engine into §V-E degraded
//!    state (lifted again by the scheduled heal), and a dual-copy
//!    fault machine-checks without wedging the run.
//! 3. **Randomized matrix** — seed-derived schedules plus a link
//!    outage window and paced patrol scrub, across schemes × MSHR
//!    depths × seeds. Every run checks: all scheduled work completes,
//!    the [`RecoveryLedger`](dve::chaos::RecoveryLedger) partition
//!    invariants hold, the latency breakdown conserves end-to-end
//!    (zero warm-up runs pin it to the engine's per-class sums), and
//!    the run reproduces bit-for-bit when repeated.
//! 4. **Hammer severity ladder** — the workload-coupled row-hammer
//!    source alone, at escalating aggression, must walk
//!    `Clean → Corrected → Degraded → MachineCheck` monotonically:
//!    inert never plants, a transient source repairs in place, a hard
//!    source degrades the hammered copy, and a dual-copy source
//!    machine-checks — all without wedging the run.
//! 5. **Per-tenant SLO** — the standard gold/silver/bronze mix under
//!    deliberate admission overload and a degraded (faulty) system:
//!    priority shedding must land on bronze while gold sheds nothing
//!    and holds its p99 inside the contracted budget, with per-tenant
//!    counters conserving against the batcher and reproducing
//!    bit-for-bit on replay.
//!
//! The measured tables (fault-rate × scheme latency, hammer ladder,
//! per-tenant SLO) are written to `results/chaos_report.txt` (the
//! EXPERIMENTS.md chaos sections).

use dve::chaos::{
    ChaosConfig, ChaosParams, CorrelatedConfig, FaultAction, FaultEvent, FaultSchedule, FaultSite,
    HammerParams, RecoveryLedger,
};
use dve::config::{Scheme, SystemConfig};
use dve::system::{ClientOp, RunResult, System};
use dve_dram::controller::EccProfile;
use dve_service::{EpochBatcher, SubmitOutcome, SubmittedOp};
use dve_sim::latency::Component;
use dve_sim::rng::SplitMix64;
use dve_sim::stats::LogHistogram;
use dve_workloads::op::MemReq;
use dve_workloads::tenant::TenantMix;
use dve_workloads::{catalog, TraceGenerator, WorkloadProfile};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Pinned goldens (backprop, 500 measured ops/thread, warm-up 50) —
/// must match `crates/core/tests/goldens.rs`.
const GOLDENS: &[(u64, Scheme, u64)] = &[
    (42, Scheme::BaselineNuma, 92_408),
    (42, Scheme::DveAllow, 77_905),
    (42, Scheme::DveDeny, 54_962),
    (0x2026_0806, Scheme::BaselineNuma, 91_014),
    (0x2026_0806, Scheme::DveAllow, 79_614),
    (0x2026_0806, Scheme::DveDeny, 54_436),
];

fn backprop() -> WorkloadProfile {
    catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop in catalog")
}

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what);
        }
    }
}

/// Phase 1: inert chaos reproduces the pinned goldens bit-identically.
fn golden_gate(gate: &mut Gate, p: &WorkloadProfile) {
    println!("-- golden gate: inert chaos vs pinned cycle counts --");
    for &(seed, scheme, golden) in GOLDENS {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 50;
        let plain = System::new(cfg.clone(), p, seed).run();
        cfg.chaos = Some(ChaosConfig {
            correlated: Some(CorrelatedConfig::inert(seed ^ 0xD0E)),
            ..ChaosConfig::inert()
        });
        let armed = System::new(cfg, p, seed).run();
        gate.check(
            plain.cycles == golden,
            format!(
                "{:<15} seed={seed:#x} plain run matches golden ({} vs {golden})",
                scheme.label(),
                plain.cycles
            ),
        );
        gate.check(
            armed.cycles == golden && armed.latency == plain.latency,
            format!(
                "{:<15} seed={seed:#x} inert-chaos run is bit-identical ({} vs {golden})",
                scheme.label(),
                armed.cycles
            ),
        );
        gate.check(
            !armed.recovery.any_activity() && armed.latency.recovery == 0,
            format!(
                "{:<15} seed={seed:#x} inert chaos records no recovery activity",
                scheme.label()
            ),
        );
    }
}

fn directed_run(p: &WorkloadProfile, events: Vec<FaultEvent>) -> RunResult {
    let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
    cfg.ops_per_thread = 500;
    cfg.warmup_per_thread = 0; // pins conservation to the engine sums
    cfg.ecc = EccProfile::tsd(); // detect-only: force the replica detour
    cfg.chaos = Some(ChaosConfig {
        schedule: FaultSchedule::new(events),
        ..ChaosConfig::inert()
    });
    System::new(cfg, p, 42).run()
}

fn conserves(r: &RunResult) -> bool {
    r.latency.total() == r.engine.latency_sum.iter().sum::<u64>()
}

/// Phase 2: seeded schedules drive every recovery transition in-run.
fn directed_transitions(gate: &mut Gate, p: &WorkloadProfile) {
    println!("-- directed transitions (dve-deny + TSD detect-only ECC) --");

    // Transient: the §V-B2 repair write clears it — CorrectedTransient.
    let r = directed_run(
        p,
        vec![FaultEvent {
            at: 1_000,
            socket: 0,
            channel: 0,
            action: FaultAction::Plant {
                site: FaultSite::Controller,
                transient: true,
            },
        }],
    );
    gate.check(
        r.recovery.repaired == 1 && r.recovery.degraded == 0,
        format!(
            "transient fault repaired in place (repaired={}, degraded={})",
            r.recovery.repaired, r.recovery.degraded
        ),
    );
    gate.check(
        r.latency.recovery > 0 && conserves(&r),
        format!(
            "detour cost {} recovery cycles and the breakdown conserves",
            r.latency.recovery
        ),
    );
    gate.check(
        r.engine.degraded_transitions == 0,
        "repaired transient never degrades the engine",
    );

    // Hard fault + scheduled heal: CorrectedDegraded, §V-E entered and
    // left in-run.
    let r = directed_run(
        p,
        vec![
            FaultEvent {
                at: 1_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            },
            FaultEvent {
                at: 25_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Heal {
                    site: FaultSite::Controller,
                },
            },
        ],
    );
    gate.check(
        r.recovery.degraded > 0,
        format!(
            "hard fault degrades copies in-run (degraded={})",
            r.recovery.degraded
        ),
    );
    // The workload's address stream rarely revisits a line inside the
    // measured window, so demonstrate the redirect path (degraded line
    // re-read is served by the survivor without re-degrading) directly
    // on the recovery state machine.
    {
        use dve::recovery::{RecoverableMemory, RecoveryOutcome};
        use dve_dram::fault::FaultDomain;
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(FaultDomain::Line {
            channel: 0,
            line: 7,
        });
        let (first, t) = mem.read(7 * 64, 0);
        let (second, _) = mem.read(7 * 64, t);
        gate.check(
            first == RecoveryOutcome::CorrectedDegraded
                && second == RecoveryOutcome::Clean
                && mem.stats().degraded == 1,
            format!(
                "degraded line re-read redirects cleanly ({first:?} then {second:?}, degraded={})",
                mem.stats().degraded
            ),
        );
    }
    gate.check(
        r.engine.degraded_transitions >= 2,
        format!(
            "engine entered and left §V-E degraded state ({} transitions)",
            r.engine.degraded_transitions
        ),
    );
    gate.check(
        r.recovery.faults_healed == 1 && r.recovery.consistent() && conserves(&r),
        format!("heal applied; ledger consistent: {:?}", r.recovery),
    );

    // Both copies dead: MachineCheck, and the run still completes.
    let r = directed_run(
        p,
        vec![
            FaultEvent {
                at: 1_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            },
            FaultEvent {
                at: 1_000,
                socket: 1,
                channel: 1,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            },
        ],
    );
    gate.check(
        r.recovery.machine_checks > 0 && r.mem_ops == 500 * 16,
        format!(
            "dual-copy failure machine-checks ({}) without wedging the run",
            r.recovery.machine_checks
        ),
    );
    gate.check(
        r.recovery.consistent() && conserves(&r),
        "ledger and breakdown stay consistent through machine checks",
    );
}

/// One randomized-matrix cell.
fn chaos_cell(p: &WorkloadProfile, scheme: Scheme, mshrs: usize, seed: u64, ops: u64) -> RunResult {
    let params = ChaosParams {
        faults: 5,
        horizon: 60_000,
        transient_fraction: 0.5,
        heal_after: Some(30_000),
        channels_per_socket: 2,
        line_span: 1 << 14,
        nodes: 2,
    };
    let mut chaos = ChaosConfig::random(seed, &params);
    chaos.link_outages = vec![(10_000, 18_000)];
    chaos.scrub = Some(dve::chaos::ScrubConfig {
        region_bytes: 1 << 16,
        lines_per_slice: 16,
        interval: 10_000,
    });
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.ops_per_thread = ops;
    cfg.warmup_per_thread = 0;
    cfg.mshrs = mshrs;
    cfg.ecc = EccProfile::tsd();
    cfg.chaos = Some(chaos);
    System::new(cfg, p, seed).run()
}

/// Phase 3: the randomized matrix, with the per-run invariant gate.
fn randomized_matrix(gate: &mut Gate, p: &WorkloadProfile, smoke: bool) -> String {
    println!("-- randomized matrix: schedules + outage + paced scrub --");
    let schemes: &[Scheme] = if smoke {
        &[Scheme::DveDeny]
    } else {
        &[Scheme::DveAllow, Scheme::DveDeny]
    };
    let ops: u64 = if smoke { 300 } else { 500 };
    let seeds: &[u64] = &[0xC0FFEE, 7];
    let mut table = String::from(
        "scheme      mshrs seed      cycles   planted detected corrected repaired degraded mce \
         scrubbed redirects rec_frac rec_p99\n",
    );
    for &scheme in schemes {
        for &mshrs in &[1usize, 4] {
            for &seed in seeds {
                let r = chaos_cell(p, scheme, mshrs, seed, ops);
                let l = &r.recovery;
                let rec_frac = r.latency.fraction(Component::Recovery);
                let (_, rec_p99, _) = r.component_tail(Component::Recovery);
                writeln!(
                    table,
                    "{:<11} {:<5} {:<9} {:<8} {:<7} {:<8} {:<9} {:<8} {:<8} {:<3} {:<8} {:<9} {:.4}   {:<7}",
                    scheme.label(),
                    mshrs,
                    format!("{seed:#x}"),
                    r.cycles,
                    l.faults_planted,
                    l.detected_reads,
                    l.corrected,
                    l.repaired,
                    l.degraded,
                    l.machine_checks,
                    l.scrub_lines,
                    l.clean_redirects,
                    rec_frac,
                    rec_p99
                )
                .expect("write table row");
                let label = format!("{} mshrs={mshrs} seed={seed:#x}", scheme.label());
                gate.check(
                    r.mem_ops == ops * 16,
                    format!("{label}: all work completes"),
                );
                gate.check(l.consistent(), format!("{label}: ledger consistent {l:?}"));
                gate.check(conserves(&r), format!("{label}: breakdown conserves"));
                gate.check(
                    l.scrub_slices > 0,
                    format!("{label}: paced scrub ran ({} slices)", l.scrub_slices),
                );
                let again = chaos_cell(p, scheme, mshrs, seed, ops);
                gate.check(
                    again.cycles == r.cycles && again.recovery == r.recovery,
                    format!("{label}: bit-identical on replay"),
                );
            }
        }
    }
    table
}

/// Severity rung a run's ledger lands on: the worst outcome observed.
fn severity(l: &RecoveryLedger) -> usize {
    if l.machine_checks > 0 {
        3
    } else if l.degraded > 0 {
        2
    } else if l.repaired > 0 {
        1
    } else {
        0
    }
}

/// Phase 4: the row-hammer source alone, at escalating aggression,
/// walks the severity ladder monotonically.
fn hammer_ladder(gate: &mut Gate, p: &WorkloadProfile) -> String {
    println!("-- hammer severity ladder (dve-deny + TSD detect-only ECC) --");
    // Tuned to the measured regime: backprop at 500 ops/thread peaks
    // around 12–25 activations on its hottest row, so threshold 10
    // trips the monitor while `u64::MAX` never does.
    let rungs: &[(&str, HammerParams)] = &[
        ("clean", HammerParams::inert()),
        (
            "corrected",
            HammerParams {
                threshold: 10,
                transient: true,
                both_copies: false,
                poll_interval: 5_000,
            },
        ),
        (
            "degraded",
            HammerParams {
                threshold: 10,
                transient: false,
                both_copies: false,
                poll_interval: 5_000,
            },
        ),
        (
            "machine-check",
            HammerParams {
                threshold: 10,
                transient: false,
                both_copies: true,
                poll_interval: 5_000,
            },
        ),
    ];
    let mut table =
        String::from("rung          threshold plants repaired degraded mce cycles   rec_frac\n");
    for (rung, (name, hammer)) in rungs.iter().enumerate() {
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 0;
        cfg.ecc = EccProfile::tsd();
        cfg.chaos = Some(ChaosConfig {
            correlated: Some(CorrelatedConfig {
                seed: 0xBADD,
                hammer: Some(*hammer),
                thermal: None,
                aging: None,
            }),
            ..ChaosConfig::inert()
        });
        let r = System::new(cfg, p, 42).run();
        let l = &r.recovery;
        writeln!(
            table,
            "{:<13} {:<9} {:<6} {:<8} {:<8} {:<3} {:<8} {:.4}",
            name,
            if hammer.threshold == u64::MAX {
                "off".to_string()
            } else {
                hammer.threshold.to_string()
            },
            l.hammer_plants,
            l.repaired,
            l.degraded,
            l.machine_checks,
            r.cycles,
            r.latency.fraction(Component::Recovery),
        )
        .expect("write ladder row");
        gate.check(
            r.mem_ops == 500 * 16 && l.consistent() && conserves(&r),
            format!("hammer {name}: run completes, ledger consistent, breakdown conserves"),
        );
        gate.check(
            (l.hammer_plants > 0) == (rung > 0),
            format!(
                "hammer {name}: source {} ({} plants)",
                if rung > 0 { "fires" } else { "stays silent" },
                l.hammer_plants
            ),
        );
        gate.check(
            severity(l) == rung,
            format!(
                "hammer {name}: lands on severity rung {rung} \
                 (repaired={} degraded={} mce={})",
                l.repaired, l.degraded, l.machine_checks
            ),
        );
    }
    table
}

/// Phase 5: the standard tenant mix under admission overload on a
/// degraded (hammered + scheduled-fault) system. Drives the real
/// [`EpochBatcher`] and [`System::run_batch`] epoch loop inline —
/// threadless, so the whole scenario is deterministic and replayable.
fn tenant_slo_report(gate: &mut Gate, p: &WorkloadProfile) -> String {
    println!("-- per-tenant SLO: overload + degraded chaos, priority shedding --");
    const QUEUE_CAP: usize = 64;
    const BURSTS: usize = 40;
    const BURST_OPS: usize = 150;
    let mix = TenantMix::standard();
    let n = mix.tenants().len();

    // Per-tenant counters from one full scenario run.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct TenantRow {
        completed: u64,
        shed: u64,
        machine_checks: u64,
        detected_reads: u64,
        recovery_cycles: u64,
        tail: (u64, u64, u64),
    }
    struct Outcome {
        rows: Vec<TenantRow>,
        ledger: RecoveryLedger,
        accounted: bool,
        admitted: u64,
        shed_total: u64,
    }

    let scenario = |mix: &TenantMix| -> Outcome {
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.mshrs = 4;
        cfg.ecc = EccProfile::tsd();
        let span = TraceGenerator::new(p, cfg.engine.cores, 42).span_lines();
        // Degraded scenario: an unhealed hard controller fault takes
        // one copy set out of service for the whole run, and a
        // hard-flipping hammer source rides the tenants' own (hot)
        // access stream on top.
        cfg.chaos = Some(ChaosConfig {
            schedule: FaultSchedule::new(vec![FaultEvent {
                at: 2_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            }]),
            correlated: Some(CorrelatedConfig {
                seed: 0x510,
                hammer: Some(HammerParams {
                    threshold: 12,
                    transient: false,
                    both_copies: false,
                    poll_interval: 5_000,
                }),
                thermal: None,
                aging: None,
            }),
            ..ChaosConfig::inert()
        });
        let cores = cfg.engine.cores as u64;
        let mut system = System::new(cfg, p, 42);

        let mut batcher = EpochBatcher::new(QUEUE_CAP, QUEUE_CAP);
        let mut rows = vec![
            TenantRow {
                completed: 0,
                shed: 0,
                machine_checks: 0,
                detected_reads: 0,
                recovery_cycles: 0,
                tail: (0, 0, 0),
            };
            n
        ];
        let mut lat: Vec<LogHistogram> = (0..n).map(|_| LogHistogram::new()).collect();
        let mut rng = SplitMix64::new(0x51_0517);
        let mut seq = 0u64;

        let run_epoch = |batcher: &mut EpochBatcher,
                         system: &mut System,
                         rows: &mut Vec<TenantRow>,
                         lat: &mut Vec<LogHistogram>| {
            let epoch = batcher.take_epoch();
            let ops: Vec<ClientOp> = epoch
                .iter()
                .map(|op| ClientOp {
                    core: (op.client % cores) as usize,
                    line: mix.fold_line(mix.tenant_of_client(op.client), op.line, span),
                    req: op.req,
                })
                .collect();
            for (op, out) in epoch.iter().zip(system.run_batch(&ops)) {
                let t = mix.tenant_of_client(op.client);
                rows[t].completed += 1;
                rows[t].machine_checks += out.machine_checks;
                rows[t].detected_reads += out.detected_reads;
                rows[t].recovery_cycles += out.breakdown.recovery;
                lat[t].record(out.complete_at - out.issued_at);
            }
        };

        // Most bursts more than double the admission queue, so the
        // batcher must shed; gold's share of a burst (BURST_OPS / n)
        // stays under QUEUE_CAP, so with priority eviction doing its
        // job gold never sheds. Every fourth burst fits the queue, so
        // even bronze completes work and reports a real latency tail.
        for b in 0..BURSTS {
            let burst = if b % 4 == 3 { QUEUE_CAP / 2 } else { BURST_OPS };
            for i in 0..burst {
                let client = (i % 12) as u64;
                let op = SubmittedOp {
                    client,
                    seq,
                    // A deliberately hot range: each tenant's folded
                    // stripe concentrates on a handful of DRAM rows, so
                    // the workload-coupled hammer source actually trips.
                    line: rng.next_below(256),
                    req: if rng.chance(0.75) {
                        MemReq::Read
                    } else {
                        MemReq::Write
                    },
                    priority: mix.priority_of(mix.tenant_of_client(client)),
                };
                seq += 1;
                match batcher.submit(op) {
                    SubmitOutcome::Admitted => {}
                    SubmitOutcome::Shed => {
                        rows[mix.tenant_of_client(op.client)].shed += 1;
                    }
                    SubmitOutcome::AdmittedEvicting(victim) => {
                        rows[mix.tenant_of_client(victim.client)].shed += 1;
                    }
                }
            }
            run_epoch(&mut batcher, &mut system, &mut rows, &mut lat);
        }
        while batcher.pending_len() > 0 {
            run_epoch(&mut batcher, &mut system, &mut rows, &mut lat);
        }
        for (row, h) in rows.iter_mut().zip(&lat) {
            row.tail = h.tail();
        }
        Outcome {
            rows,
            ledger: system.recovery_ledger(),
            accounted: batcher.accounted(),
            admitted: batcher.admitted(),
            shed_total: batcher.shed(),
        }
    };

    let out = scenario(&mix);
    let mut table = String::from(
        "tenant  prio p99_budget completed shed p50  p99   p999  slo_ok mce detected rec_cycles\n",
    );
    for (t, row) in out.rows.iter().enumerate() {
        let prof = &mix.tenants()[t];
        let (p50, p99, p999) = row.tail;
        writeln!(
            table,
            "{:<7} {:<4} {:<10} {:<9} {:<4} {:<4} {:<5} {:<5} {:<6} {:<3} {:<8} {}",
            prof.name,
            prof.priority,
            prof.slo_p99_cycles,
            row.completed,
            row.shed,
            p50,
            p99,
            p999,
            p99 <= prof.slo_p99_cycles,
            row.machine_checks,
            row.detected_reads,
            row.recovery_cycles,
        )
        .expect("write tenant row");
    }
    let gold = &out.rows[0];
    let bronze = &out.rows[n - 1];
    gate.check(
        out.ledger.faults_planted > 0 && out.ledger.detected_reads > 0,
        format!(
            "scenario is degraded (planted={}, detected={})",
            out.ledger.faults_planted, out.ledger.detected_reads
        ),
    );
    gate.check(
        out.ledger.consistent(),
        format!("recovery ledger consistent: {:?}", out.ledger),
    );
    gate.check(
        out.accounted && out.rows.iter().map(|r| r.shed).sum::<u64>() == out.shed_total,
        "per-tenant sheds sum to the batcher's exact shed count",
    );
    gate.check(
        out.rows.iter().map(|r| r.detected_reads).sum::<u64>() > 0
            && out.rows.iter().map(|r| r.detected_reads).sum::<u64>() <= out.ledger.detected_reads,
        "fault exposure attributes to tenants without over-counting",
    );
    gate.check(
        out.rows.iter().map(|r| r.completed).sum::<u64>() == out.admitted,
        "every admitted op completes for exactly one tenant",
    );
    gate.check(
        bronze.shed > 0,
        format!("bronze absorbs the overload ({} sheds)", bronze.shed),
    );
    gate.check(
        gold.shed == 0,
        format!("gold sheds nothing under overload ({} sheds)", gold.shed),
    );
    gate.check(
        gold.tail.1 <= mix.tenants()[0].slo_p99_cycles,
        format!(
            "gold holds p99 inside its SLO budget ({} <= {})",
            gold.tail.1,
            mix.tenants()[0].slo_p99_cycles
        ),
    );
    let again = scenario(&mix);
    gate.check(
        again.rows == out.rows && again.ledger == out.ledger,
        "per-tenant scenario is bit-identical on replay",
    );
    table
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "smoke");
    let p = backprop();
    let mut gate = Gate {
        failures: Vec::new(),
    };

    golden_gate(&mut gate, &p);
    directed_transitions(&mut gate, &p);
    let matrix = randomized_matrix(&mut gate, &p, smoke);
    let ladder = hammer_ladder(&mut gate, &p);
    let tenants = tenant_slo_report(&mut gate, &p);

    let report = format!(
        "== fault-rate × scheme latency ==\n{matrix}\n\
         == hammer severity ladder ==\n{ladder}\n\
         == per-tenant SLO (gold/silver/bronze under overload + degraded chaos) ==\n{tenants}"
    );
    println!("-- measured tables --");
    print!("{report}");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/chaos_report.txt", &report).expect("write results/chaos_report.txt");
    println!("wrote results/chaos_report.txt");

    if gate.failures.is_empty() {
        println!("chaos: all invariants held");
        ExitCode::SUCCESS
    } else {
        println!("chaos: {} invariant(s) VIOLATED:", gate.failures.len());
        for f in &gate.failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
