//! Chaos harness: in-band fault injection against the running timed
//! system (§V-B2 exercised live, not as out-of-band unit fixtures).
//!
//! ```text
//! cargo run -p dve-bench --bin chaos --release            # full matrix
//! cargo run -p dve-bench --bin chaos --release -- smoke   # CI gate
//! ```
//!
//! Three phases, all gating the exit code:
//!
//! 1. **Golden gate** — an *armed but inert* chaos layer (empty
//!    schedule, no outages, no scrub) must reproduce the pinned
//!    cycle-exact goldens bit-identically at two seeds × three
//!    schemes. Detection is timing-neutral by construction; this
//!    proves it.
//! 2. **Directed transitions** — seeded schedules drive the full
//!    `Clean → CorrectedTransient → CorrectedDegraded → MachineCheck`
//!    ladder in-run: a transient fault is repaired in place, a hard
//!    fault degrades the copy and flips the engine into §V-E degraded
//!    state (lifted again by the scheduled heal), and a dual-copy
//!    fault machine-checks without wedging the run.
//! 3. **Randomized matrix** — seed-derived schedules plus a link
//!    outage window and paced patrol scrub, across schemes × MSHR
//!    depths × seeds. Every run checks: all scheduled work completes,
//!    the [`RecoveryLedger`](dve::chaos::RecoveryLedger) partition
//!    invariants hold, the latency breakdown conserves end-to-end
//!    (zero warm-up runs pin it to the engine's per-class sums), and
//!    the run reproduces bit-for-bit when repeated.
//!
//! The measured fault-rate × scheme latency table is written to
//! `results/chaos_report.txt` (the EXPERIMENTS.md chaos section).

use dve::chaos::{ChaosConfig, ChaosParams, FaultAction, FaultEvent, FaultSchedule, FaultSite};
use dve::config::{Scheme, SystemConfig};
use dve::system::{RunResult, System};
use dve_dram::controller::EccProfile;
use dve_sim::latency::Component;
use dve_workloads::{catalog, WorkloadProfile};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Pinned goldens (backprop, 500 measured ops/thread, warm-up 50) —
/// must match `crates/core/tests/goldens.rs`.
const GOLDENS: &[(u64, Scheme, u64)] = &[
    (42, Scheme::BaselineNuma, 92_408),
    (42, Scheme::DveAllow, 77_905),
    (42, Scheme::DveDeny, 54_962),
    (0x2026_0806, Scheme::BaselineNuma, 91_014),
    (0x2026_0806, Scheme::DveAllow, 79_614),
    (0x2026_0806, Scheme::DveDeny, 54_436),
];

fn backprop() -> WorkloadProfile {
    catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop in catalog")
}

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what);
        }
    }
}

/// Phase 1: inert chaos reproduces the pinned goldens bit-identically.
fn golden_gate(gate: &mut Gate, p: &WorkloadProfile) {
    println!("-- golden gate: inert chaos vs pinned cycle counts --");
    for &(seed, scheme, golden) in GOLDENS {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 50;
        let plain = System::new(cfg.clone(), p, seed).run();
        cfg.chaos = Some(ChaosConfig::inert());
        let armed = System::new(cfg, p, seed).run();
        gate.check(
            plain.cycles == golden,
            format!(
                "{:<15} seed={seed:#x} plain run matches golden ({} vs {golden})",
                scheme.label(),
                plain.cycles
            ),
        );
        gate.check(
            armed.cycles == golden && armed.latency == plain.latency,
            format!(
                "{:<15} seed={seed:#x} inert-chaos run is bit-identical ({} vs {golden})",
                scheme.label(),
                armed.cycles
            ),
        );
        gate.check(
            !armed.recovery.any_activity() && armed.latency.recovery == 0,
            format!(
                "{:<15} seed={seed:#x} inert chaos records no recovery activity",
                scheme.label()
            ),
        );
    }
}

fn directed_run(p: &WorkloadProfile, events: Vec<FaultEvent>) -> RunResult {
    let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
    cfg.ops_per_thread = 500;
    cfg.warmup_per_thread = 0; // pins conservation to the engine sums
    cfg.ecc = EccProfile::tsd(); // detect-only: force the replica detour
    cfg.chaos = Some(ChaosConfig {
        schedule: FaultSchedule::new(events),
        ..ChaosConfig::inert()
    });
    System::new(cfg, p, 42).run()
}

fn conserves(r: &RunResult) -> bool {
    r.latency.total() == r.engine.latency_sum.iter().sum::<u64>()
}

/// Phase 2: seeded schedules drive every recovery transition in-run.
fn directed_transitions(gate: &mut Gate, p: &WorkloadProfile) {
    println!("-- directed transitions (dve-deny + TSD detect-only ECC) --");

    // Transient: the §V-B2 repair write clears it — CorrectedTransient.
    let r = directed_run(
        p,
        vec![FaultEvent {
            at: 1_000,
            socket: 0,
            channel: 0,
            action: FaultAction::Plant {
                site: FaultSite::Controller,
                transient: true,
            },
        }],
    );
    gate.check(
        r.recovery.repaired == 1 && r.recovery.degraded == 0,
        format!(
            "transient fault repaired in place (repaired={}, degraded={})",
            r.recovery.repaired, r.recovery.degraded
        ),
    );
    gate.check(
        r.latency.recovery > 0 && conserves(&r),
        format!(
            "detour cost {} recovery cycles and the breakdown conserves",
            r.latency.recovery
        ),
    );
    gate.check(
        r.engine.degraded_transitions == 0,
        "repaired transient never degrades the engine",
    );

    // Hard fault + scheduled heal: CorrectedDegraded, §V-E entered and
    // left in-run.
    let r = directed_run(
        p,
        vec![
            FaultEvent {
                at: 1_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            },
            FaultEvent {
                at: 25_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Heal {
                    site: FaultSite::Controller,
                },
            },
        ],
    );
    gate.check(
        r.recovery.degraded > 0,
        format!(
            "hard fault degrades copies in-run (degraded={})",
            r.recovery.degraded
        ),
    );
    // The workload's address stream rarely revisits a line inside the
    // measured window, so demonstrate the redirect path (degraded line
    // re-read is served by the survivor without re-degrading) directly
    // on the recovery state machine.
    {
        use dve::recovery::{RecoverableMemory, RecoveryOutcome};
        use dve_dram::fault::FaultDomain;
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(FaultDomain::Line {
            channel: 0,
            line: 7,
        });
        let (first, t) = mem.read(7 * 64, 0);
        let (second, _) = mem.read(7 * 64, t);
        gate.check(
            first == RecoveryOutcome::CorrectedDegraded
                && second == RecoveryOutcome::Clean
                && mem.stats().degraded == 1,
            format!(
                "degraded line re-read redirects cleanly ({first:?} then {second:?}, degraded={})",
                mem.stats().degraded
            ),
        );
    }
    gate.check(
        r.engine.degraded_transitions >= 2,
        format!(
            "engine entered and left §V-E degraded state ({} transitions)",
            r.engine.degraded_transitions
        ),
    );
    gate.check(
        r.recovery.faults_healed == 1 && r.recovery.consistent() && conserves(&r),
        format!("heal applied; ledger consistent: {:?}", r.recovery),
    );

    // Both copies dead: MachineCheck, and the run still completes.
    let r = directed_run(
        p,
        vec![
            FaultEvent {
                at: 1_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            },
            FaultEvent {
                at: 1_000,
                socket: 1,
                channel: 1,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            },
        ],
    );
    gate.check(
        r.recovery.machine_checks > 0 && r.mem_ops == 500 * 16,
        format!(
            "dual-copy failure machine-checks ({}) without wedging the run",
            r.recovery.machine_checks
        ),
    );
    gate.check(
        r.recovery.consistent() && conserves(&r),
        "ledger and breakdown stay consistent through machine checks",
    );
}

/// One randomized-matrix cell.
fn chaos_cell(p: &WorkloadProfile, scheme: Scheme, mshrs: usize, seed: u64, ops: u64) -> RunResult {
    let params = ChaosParams {
        faults: 5,
        horizon: 60_000,
        transient_fraction: 0.5,
        heal_after: Some(30_000),
        channels_per_socket: 2,
        line_span: 1 << 14,
        nodes: 2,
    };
    let mut chaos = ChaosConfig::random(seed, &params);
    chaos.link_outages = vec![(10_000, 18_000)];
    chaos.scrub = Some(dve::chaos::ScrubConfig {
        region_bytes: 1 << 16,
        lines_per_slice: 16,
        interval: 10_000,
    });
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.ops_per_thread = ops;
    cfg.warmup_per_thread = 0;
    cfg.mshrs = mshrs;
    cfg.ecc = EccProfile::tsd();
    cfg.chaos = Some(chaos);
    System::new(cfg, p, seed).run()
}

/// Phase 3: the randomized matrix, with the per-run invariant gate.
fn randomized_matrix(gate: &mut Gate, p: &WorkloadProfile, smoke: bool) -> String {
    println!("-- randomized matrix: schedules + outage + paced scrub --");
    let schemes: &[Scheme] = if smoke {
        &[Scheme::DveDeny]
    } else {
        &[Scheme::DveAllow, Scheme::DveDeny]
    };
    let ops: u64 = if smoke { 300 } else { 500 };
    let seeds: &[u64] = &[0xC0FFEE, 7];
    let mut table = String::from(
        "scheme      mshrs seed      cycles   planted detected corrected repaired degraded mce \
         scrubbed redirects rec_frac rec_p99\n",
    );
    for &scheme in schemes {
        for &mshrs in &[1usize, 4] {
            for &seed in seeds {
                let r = chaos_cell(p, scheme, mshrs, seed, ops);
                let l = &r.recovery;
                let rec_frac = r.latency.fraction(Component::Recovery);
                let (_, rec_p99, _) = r.component_tail(Component::Recovery);
                writeln!(
                    table,
                    "{:<11} {:<5} {:<9} {:<8} {:<7} {:<8} {:<9} {:<8} {:<8} {:<3} {:<8} {:<9} {:.4}   {:<7}",
                    scheme.label(),
                    mshrs,
                    format!("{seed:#x}"),
                    r.cycles,
                    l.faults_planted,
                    l.detected_reads,
                    l.corrected,
                    l.repaired,
                    l.degraded,
                    l.machine_checks,
                    l.scrub_lines,
                    l.clean_redirects,
                    rec_frac,
                    rec_p99
                )
                .expect("write table row");
                let label = format!("{} mshrs={mshrs} seed={seed:#x}", scheme.label());
                gate.check(
                    r.mem_ops == ops * 16,
                    format!("{label}: all work completes"),
                );
                gate.check(l.consistent(), format!("{label}: ledger consistent {l:?}"));
                gate.check(conserves(&r), format!("{label}: breakdown conserves"));
                gate.check(
                    l.scrub_slices > 0,
                    format!("{label}: paced scrub ran ({} slices)", l.scrub_slices),
                );
                let again = chaos_cell(p, scheme, mshrs, seed, ops);
                gate.check(
                    again.cycles == r.cycles && again.recovery == r.recovery,
                    format!("{label}: bit-identical on replay"),
                );
            }
        }
    }
    table
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "smoke");
    let p = backprop();
    let mut gate = Gate {
        failures: Vec::new(),
    };

    golden_gate(&mut gate, &p);
    directed_transitions(&mut gate, &p);
    let table = randomized_matrix(&mut gate, &p, smoke);

    println!("-- fault-rate × scheme latency table --");
    print!("{table}");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/chaos_report.txt", &table).expect("write results/chaos_report.txt");
    println!("wrote results/chaos_report.txt");

    if gate.failures.is_empty() {
        println!("chaos: all invariants held");
        ExitCode::SUCCESS
    } else {
        println!("chaos: {} invariant(s) VIOLATED:", gate.failures.len());
        for f in &gate.failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
