//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Speculative replica access** (§V-C5/§VI: "we find that in our
//!    simulations the latency benefits outweigh the bandwidth loss") —
//!    allow protocol with and without speculation.
//! 2. **Degraded mode** (§V-E: with one working copy "Dvé will provide
//!    performance comparable to baseline NUMA") — deny protocol with the
//!    replicas out of service vs baseline.
//! 3. **Row-hammer exposure** (§III: "Row hammer errors can be mitigated
//!    by load balancing requests between the independent replicas") —
//!    worst-case per-row activation count, baseline vs Dvé.
//!
//! ```text
//! cargo run -p dve-bench --bin ablation --release
//! ```

use dve::config::{Scheme, SystemConfig};
use dve::system::System;
use dve_bench::{grouped, ops_from_env, run_all_with, run_with, speedups, workload_seed};
use dve_sim::stats::geomean;
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env();

    // ---- 1. Speculative replica access --------------------------------
    let base = run_all_with(Scheme::BaselineNuma, ops, |_| {});
    let spec_on = run_all_with(Scheme::DveAllow, ops, |_| {});
    let spec_off = run_all_with(Scheme::DveAllow, ops, |c| c.speculative = false);
    let g_on = grouped(&speedups(&spec_on, &base));
    let g_off = grouped(&speedups(&spec_off, &base));
    println!("1. speculative replica access (allow protocol):");
    println!(
        "   spec ON : top-10 {:+.1}%  all-20 {:+.1}%",
        (g_on.top10 - 1.0) * 100.0,
        (g_on.all20 - 1.0) * 100.0
    );
    println!(
        "   spec OFF: top-10 {:+.1}%  all-20 {:+.1}%",
        (g_off.top10 - 1.0) * 100.0,
        (g_off.all20 - 1.0) * 100.0
    );
    println!(
        "   -> speculation worth {:+.1}% all-20 (paper: latency benefits outweigh bandwidth loss)",
        (g_on.all20 / g_off.all20 - 1.0) * 100.0
    );

    // ---- 2. Degraded mode ---------------------------------------------
    let degraded = run_all_with(Scheme::DveDeny, ops, |c| c.degraded = true);
    let ratios: Vec<f64> = degraded
        .iter()
        .zip(&base)
        .map(|(d, b)| b.cycles as f64 / d.cycles as f64)
        .collect();
    let g = geomean(&ratios);
    println!();
    println!("2. degraded mode (deny protocol, replicas out of service):");
    println!(
        "   geomean vs baseline NUMA: {:+.2}% (paper §V-E: \"comparable to baseline NUMA\")",
        (g - 1.0) * 100.0
    );
    let worst = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("   worst workload: {:+.2}%", (worst - 1.0) * 100.0);

    // ---- 3. Row-hammer exposure ----------------------------------------
    println!();
    println!("3. row-hammer exposure (max per-row activations in a refresh window):");
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "graph500")
        .expect("graph500");
    for scheme in [Scheme::BaselineNuma, Scheme::DveDeny] {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = ops;
        cfg.warmup_per_thread = ops / 10;
        let result = System::new(cfg, &p, workload_seed(p.name)).run();
        println!(
            "   {:<14} max row activations = {:>6} ({} DRAM accesses)",
            scheme.label(),
            result.max_row_activations,
            result.dram_rows.0 + result.dram_rows.1 + result.dram_rows.2
        );
    }
    println!("   -> replication spreads activations over twice the rows (§III).");

    // ---- 4. On-chip directory cache (§V-A) -----------------------------
    println!();
    println!("4. on-chip directory cache (full in-memory directory, cached entries):");
    let ideal = run_all_with(Scheme::DveDeny, ops, |_| {});
    for entries in [32_768usize, 262_144] {
        let cached = run_all_with(Scheme::DveDeny, ops, move |c| {
            c.engine.dir_cache_entries = Some(entries);
        });
        let ratios: Vec<f64> = cached
            .iter()
            .zip(&ideal)
            .map(|(c, i)| i.cycles as f64 / c.cycles as f64)
            .collect();
        println!(
            "   {:>7}-entry cache vs ideal SRAM directory: {:+.2}% geomean",
            entries,
            (geomean(&ratios) - 1.0) * 100.0
        );
    }
    println!("   -> entry-fetch misses cost one DRAM access each (Table II's design).");

    // ---- 5. Selective replication (§V-D) -------------------------------
    println!();
    println!("5. selective replication (only the shared pools are replicated):");
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "xsbench")
        .expect("xsbench");
    let gen = dve_workloads::TraceGenerator::new(&p, 16, workload_seed(p.name));
    let l = gen.layout();
    let shared_lines = l.shared_ro + l.shared_rw;
    let total_lines = gen.span_lines();
    let pages: std::collections::HashSet<u64> = (0..shared_lines.div_ceil(64)).collect();
    let scope = dve_coherence::engine::ReplicationScope::Pages(pages);
    let ops = ops_from_env();
    let base = run_with(&p, Scheme::BaselineNuma, ops, |_| {});
    let full = run_with(&p, Scheme::DveDeny, ops, |_| {});
    let partial = run_with(&p, Scheme::DveDeny, ops, move |c| {
        c.engine.replication_scope = scope;
    });
    println!(
        "   full replication   : {:+.1}% speedup, 100.0% of pages replicated",
        (full.speedup_over(&base) - 1.0) * 100.0
    );
    println!(
        "   shared pools only  : {:+.1}% speedup, {:.1}% of pages replicated",
        (partial.speedup_over(&base) - 1.0) * 100.0,
        shared_lines as f64 / total_lines as f64 * 100.0
    );
    println!("   -> \"applications may require reliability for only a small region of");
    println!("      memory\" (§II-B): a sliver of the capacity buys most of the gain");
    println!("      on lookup-table workloads, and unmapped pages fall back to a");
    println!("      single copy seamlessly (§III).");
}
