//! MSHR-depth × link-latency sweep with per-layer latency attribution.
//!
//! The resource-port unification gave every run a structured
//! [`dve_sim::latency::LatencyBreakdown`]; this harness uses it to show
//! *where* memory-access time goes as two knobs move:
//!
//! * `mshrs ∈ {1, 2, 4, 8}` — outstanding misses per core. 1 is the
//!   blocking-core Table II default (the pinned-golden regime); wider
//!   cores overlap misses and shift time out of bank service/link
//!   propagation (hidden latency) into bank queueing (contention made
//!   visible).
//! * link ∈ {30, 50, 60} ns — the Fig. 10 inter-socket sensitivity
//!   range.
//!
//! One row per (workload, scheme, mshrs, link): cycles, speedup over
//! the blocking baseline at the same link latency, and the fraction of
//! total access latency attributed to each component.
//!
//! ```text
//! cargo run -p dve-bench --bin mshr --release
//! ```

use dve::config::Scheme;
use dve_bench::{ops_from_env, run_with};
use dve_sim::latency::Component;
use dve_sim::time::Nanos;
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env().min(10_000);
    let workloads = ["backprop", "lbm"];
    let schemes = [Scheme::BaselineNuma, Scheme::DveDeny];
    let links = [30u64, 50, 60];
    let depths = [1usize, 2, 4, 8];

    println!("MSHR x link sweep: per-layer latency attribution ({ops} ops/thread)");
    println!(
        "{:<10} {:<14} {:>5} {:>5} {:>9} {:>8} | {:>6} {:>6} {:>7} {:>7} {:>6}",
        "workload",
        "scheme",
        "mshrs",
        "link",
        "cycles",
        "speedup",
        "mesh",
        "link",
        "bankQ",
        "bankS",
        "proto"
    );
    println!("{}", "-".repeat(104));
    for name in workloads {
        let p = catalog().into_iter().find(|p| p.name == name).unwrap();
        for &ns in &links {
            // The blocking baseline at this link latency anchors speedups.
            let anchor = run_with(&p, Scheme::BaselineNuma, ops, |c| {
                c.link_latency = Nanos(ns);
            });
            for scheme in schemes {
                for &m in &depths {
                    let r = run_with(&p, scheme, ops, |c| {
                        c.link_latency = Nanos(ns);
                        c.mshrs = m;
                    });
                    let fr = |c| r.latency.fraction(c);
                    println!(
                        "{:<10} {:<14} {:>5} {:>4}ns {:>9} {:>7.3}x | {:>5.1}% {:>5.1}% {:>6.1}% {:>6.1}% {:>5.1}%",
                        name,
                        scheme.label(),
                        m,
                        ns,
                        r.cycles,
                        anchor.cycles as f64 / r.cycles as f64,
                        fr(Component::Mesh) * 100.0,
                        fr(Component::Link) * 100.0,
                        fr(Component::BankQueue) * 100.0,
                        fr(Component::BankService) * 100.0,
                        fr(Component::Protocol) * 100.0,
                    );
                }
            }
        }
    }
}
