//! Topology sweep harness: the same pinned trace across replication
//! topologies — the classic mirror pair, symmetric N-way placement,
//! and the two-tier far-memory scheme.
//!
//! ```text
//! cargo run -p dve-bench --bin topology --release            # full sweep
//! cargo run -p dve-bench --bin topology --release -- smoke   # CI gate
//! ```
//!
//! Three phases, all gating the exit code:
//!
//! 1. **Mirror identity gate** — the explicit `mirror2` topology is a
//!    representation change, not a model change: it must reproduce the
//!    pinned mirror-pair goldens bit-identically at both seeds.
//! 2. **Topology goldens** — `nway:4` and `twotier` hold their own
//!    pinned cycle counts (mirrors `crates/core/tests/goldens.rs`).
//! 3. **Sweep** — every topology × Dvé scheme on the pinned backprop
//!    trace: cycles, replica-read share, inter-node traffic, and the
//!    per-edge message split, re-run to prove bit-identical
//!    determinism. Written to `results/topology_report.txt`.

use dve::config::{Scheme, SystemConfig, TopologySpec};
use dve::system::{RunResult, System};
use dve_workloads::{catalog, WorkloadProfile};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Pinned mirror-pair goldens (backprop, 500 measured ops/thread,
/// warm-up 50) — must match `crates/core/tests/goldens.rs`.
const GOLDENS: &[(u64, Scheme, u64)] = &[
    (42, Scheme::BaselineNuma, 92_408),
    (42, Scheme::DveAllow, 77_905),
    (42, Scheme::DveDeny, 54_962),
    (0x2026_0806, Scheme::BaselineNuma, 91_014),
    (0x2026_0806, Scheme::DveAllow, 79_614),
    (0x2026_0806, Scheme::DveDeny, 54_436),
];

/// Pinned non-mirror goldens, same regime — must match
/// `crates/core/tests/goldens.rs`.
const TOPOLOGY_GOLDENS: &[(TopologySpec, u64, Scheme, u64)] = &[
    (TopologySpec::Nway(4), 42, Scheme::DveAllow, 96_160),
    (TopologySpec::Nway(4), 42, Scheme::DveDeny, 86_172),
    (TopologySpec::Nway(4), 0x2026_0806, Scheme::DveAllow, 96_703),
    (TopologySpec::Nway(4), 0x2026_0806, Scheme::DveDeny, 90_514),
    (TopologySpec::TwoTier, 42, Scheme::DveAllow, 92_408),
    (TopologySpec::TwoTier, 42, Scheme::DveDeny, 93_525),
    (TopologySpec::TwoTier, 0x2026_0806, Scheme::DveAllow, 91_014),
    (TopologySpec::TwoTier, 0x2026_0806, Scheme::DveDeny, 93_151),
];

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what);
        }
    }
}

fn backprop() -> WorkloadProfile {
    catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop in catalog")
}

/// Table II config on `spec`, shrinking the core count to the nearest
/// multiple of the socket count when 16 does not partition (nway:3
/// drops to 15 cores — cores must split evenly over sockets).
fn topo_cfg(spec: TopologySpec, scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.engine.cores -= cfg.engine.cores % spec.sockets();
    cfg.set_topology(spec);
    cfg
}

fn run_topo(
    p: &WorkloadProfile,
    spec: TopologySpec,
    scheme: Scheme,
    ops: u64,
    seed: u64,
) -> RunResult {
    let mut cfg = topo_cfg(spec, scheme);
    cfg.ops_per_thread = ops;
    cfg.warmup_per_thread = ops / 10;
    System::new(cfg, p, seed).run()
}

/// One sweep run, returning the system so the report can read per-edge
/// link stats off the fabric.
fn run_sweep_cell(
    p: &WorkloadProfile,
    spec: TopologySpec,
    scheme: Scheme,
    ops: u64,
    seed: u64,
) -> (RunResult, System) {
    let cfg = topo_cfg(spec, scheme);
    let mut sys = System::new(cfg, p, seed);
    sys.warm_up();
    sys.begin_region();
    sys.step_ops(ops);
    let r = sys.finish_region();
    (r, sys)
}

fn golden_gates(gate: &mut Gate, p: &WorkloadProfile) {
    println!("-- mirror identity gate: explicit mirror2 vs pinned goldens --");
    for &(seed, scheme, golden) in GOLDENS {
        let r = run_topo(p, TopologySpec::Mirror2, scheme, 500, seed);
        gate.check(
            r.cycles == golden,
            format!(
                "mirror2 {} seed={seed:#x}: {} cycles (golden {golden})",
                scheme.label(),
                r.cycles
            ),
        );
    }
    println!("-- topology goldens: nway:4 and twotier pinned counts --");
    for &(spec, seed, scheme, golden) in TOPOLOGY_GOLDENS {
        let r = run_topo(p, spec, scheme, 500, seed);
        gate.check(
            r.cycles == golden,
            format!(
                "{spec} {} seed={seed:#x}: {} cycles (golden {golden})",
                scheme.label(),
                r.cycles
            ),
        );
    }
}

fn sweep(gate: &mut Gate, p: &WorkloadProfile, ops: u64) -> String {
    println!("-- sweep: topology x scheme on backprop ({ops} ops/thread) --");
    let specs = [
        TopologySpec::Mirror2,
        TopologySpec::Nway(3),
        TopologySpec::Nway(4),
        TopologySpec::TwoTier,
    ];
    let mut report = String::new();
    let _ = writeln!(
        report,
        "topology sweep: backprop, {ops} measured ops/thread, seed 42\n"
    );
    let _ = writeln!(
        report,
        "{:<8} {:>7} {:>6} {:>9} {:>13} {:>12} {:>13} {:>6}",
        "topology",
        "scheme",
        "nodes",
        "cycles",
        "replica_reads",
        "link_msgs",
        "link_bytes",
        "edges"
    );
    for spec in specs {
        for scheme in [Scheme::DveAllow, Scheme::DveDeny] {
            let (r, sys) = run_sweep_cell(p, spec, scheme, ops, 42);
            let (r2, _) = run_sweep_cell(p, spec, scheme, ops, 42);
            gate.check(
                r.cycles == r2.cycles && r.cycles > 0,
                format!(
                    "{spec} {}: deterministic at {} cycles",
                    scheme.label(),
                    r.cycles
                ),
            );
            let link = sys.fabric().link_table();
            let nodes = sys.config().nodes();
            let used_edges = (0..nodes)
                .flat_map(|a| (0..nodes).map(move |b| (a, b)))
                .filter(|&(a, b)| a != b && link.edge_stats(a, b).grants > 0)
                .count();
            let _ = writeln!(
                report,
                "{:<8} {:>7} {:>6} {:>9} {:>13} {:>12} {:>13} {:>6}",
                spec.to_string(),
                scheme.label(),
                nodes,
                r.cycles,
                r.engine.replica_reads,
                link.total_messages(),
                link.total_bytes(),
                used_edges
            );
        }
    }
    // Structural expectations the sweep itself proves:
    let (_, sys3) = run_sweep_cell(p, TopologySpec::Nway(3), Scheme::DveDeny, ops, 42);
    let link3 = sys3.fabric().link_table();
    let active = (0..3)
        .flat_map(|a| (0..3).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b && link3.edge_stats(a, b).grants > 0)
        .count();
    gate.check(
        active == 6,
        format!("nway:3 traffic uses all 6 directed edges (saw {active})"),
    );
    let (rt, syst) = run_sweep_cell(p, TopologySpec::TwoTier, Scheme::DveDeny, ops, 42);
    gate.check(
        rt.engine.replica_reads == 0,
        "twotier serves no coherent replica reads (far pool hosts no cores)",
    );
    gate.check(
        syst.fabric().controllers().len() == 3,
        "twotier instantiates two sockets + one far pool",
    );
    report
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "smoke");
    let ops: u64 = if smoke { 300 } else { 2000 };
    let p = backprop();
    let mut gate = Gate {
        failures: Vec::new(),
    };

    golden_gates(&mut gate, &p);
    let report = sweep(&mut gate, &p, ops);

    std::fs::create_dir_all("results").ok();
    std::fs::write("results/topology_report.txt", &report).expect("write topology_report.txt");
    println!("wrote results/topology_report.txt");
    print!("{report}");

    if gate.failures.is_empty() {
        println!("topology: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("topology: {} gate(s) failed:", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
