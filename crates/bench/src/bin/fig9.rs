//! Regenerates **Fig. 9**: allow-protocol optimizations — the default
//! 2K-entry replica directory vs a 4K-entry one, coarse-grain (region)
//! tracking, and the oracular configuration (infinite entries, free
//! installs).
//!
//! Paper reference points: 4K entries +2.1%/+1.7% (top-10/all) over the
//! default; coarse grain helps some workloads but is a net loss over
//! all 20 (-1.7%); the oracle is +18.3%/+10.8% over the default allow.
//!
//! ```text
//! cargo run -p dve-bench --bin fig9 --release
//! ```

use dve::config::Scheme;
use dve_bench::{grouped, header, ops_from_env, row, run_all_with, speedups};
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env();
    run_fig9(ops, None);
    // The paper's 20-billion-operation traces cycle the 8 MB LLC many
    // times, so re-reads reach the replica directory and its capacity
    // matters. Our statistical clones run ~10^5 operations per thread;
    // at that scale the LLC retains most of the reusable footprint and
    // the capacity gradient compresses. The companion run below scales
    // the LLC to 1 MB so the directory-reach mechanism is exposed at a
    // tractable trace length (see EXPERIMENTS.md).
    println!();
    println!("--- companion run: LLC scaled to 1 MB to expose directory reach ---");
    run_fig9(ops, Some(1024 * 1024));
}

fn run_fig9(ops: u64, llc_bytes: Option<usize>) {
    // When the LLC is scaled down 8x, scale the replica directory by the
    // same factor so the structures keep their relative reach.
    let (small, large) = if llc_bytes.is_some() {
        (256, 512)
    } else {
        (2048, 4096)
    };
    let scale = move |c: &mut dve::config::SystemConfig| {
        if let Some(b) = llc_bytes {
            c.engine.llc_bytes = b;
        }
        c.engine.replica_dir_entries = Some(small);
    };
    let base = run_all_with(Scheme::BaselineNuma, ops, scale);
    let allow2k = run_all_with(Scheme::DveAllow, ops, scale);
    let allow4k = run_all_with(Scheme::DveAllow, ops, |c| {
        scale(c);
        c.engine.replica_dir_entries = Some(large);
    });
    let coarse = run_all_with(Scheme::DveAllow, ops, |c| {
        scale(c);
        c.engine.replica_region_lines = 16;
    });
    let oracle = run_all_with(Scheme::DveAllow, ops, |c| {
        scale(c);
        c.engine.replica_dir_entries = None;
        c.engine.free_installs = true;
    });

    let s2k = speedups(&allow2k, &base);
    let s4k = speedups(&allow4k, &base);
    let sco = speedups(&coarse, &base);
    let sor = speedups(&oracle, &base);

    println!(
        "{}",
        header(
            "Fig. 9: allow-protocol optimizations (speedup over NUMA)",
            &["allow-2K", "allow-4K", "coarse-grain", "oracle"]
        )
    );
    for (i, p) in catalog().iter().enumerate() {
        println!(
            "{}",
            row(
                p.name,
                &[
                    format!("{:.3}", s2k[i]),
                    format!("{:.3}", s4k[i]),
                    format!("{:.3}", sco[i]),
                    format!("{:.3}", sor[i]),
                ]
            )
        );
    }
    println!();
    for (name, s) in [
        ("allow-2K", &s2k),
        ("allow-4K", &s4k),
        ("coarse-grain", &sco),
        ("oracle", &sor),
    ] {
        let g = grouped(s);
        println!(
            "{name:<14} geomean: top-10 {:+.1}%  all-20 {:+.1}%",
            (g.top10 - 1.0) * 100.0,
            (g.all20 - 1.0) * 100.0
        );
    }
    println!();
    let g2k = grouped(&s2k);
    let gor = grouped(&sor);
    println!(
        "oracle over default allow: top-10 {:+.1}%, all-20 {:+.1}% (paper: +18.3%, +10.8%)",
        (gor.top10 / g2k.top10 - 1.0) * 100.0,
        (gor.all20 / g2k.all20 - 1.0) * 100.0
    );
}
