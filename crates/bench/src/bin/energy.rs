//! Regenerates the **§VII energy study**: DRAM-subsystem energy-delay
//! product (EDP) of the allow/deny protocols versus baseline NUMA, and
//! system-level EDP under the paper's assumption that memory is ~18% of
//! total system power.
//!
//! Paper reference points: memory-EDP *decreases* for the most
//! memory-intensive workloads (backprop, graph500, fft) despite doubled
//! capacity, but increases by +43%/+37% (allow/deny) in geomean;
//! system-EDP improves by −6%/−12% thanks to shorter execution times.
//!
//! ```text
//! cargo run -p dve-bench --bin energy --release
//! ```

use dve::config::Scheme;
use dve_bench::{header, ops_from_env, row, run_all};
use dve_dram::energy::system_edp;
use dve_sim::stats::geomean;
use dve_workloads::catalog;

fn main() {
    let ops = ops_from_env();
    let base = run_all(Scheme::BaselineNuma, ops);
    let allow = run_all(Scheme::DveAllow, ops);
    let deny = run_all(Scheme::DveDeny, ops);

    println!(
        "{}",
        header(
            "Energy (§VII): EDP normalized to baseline NUMA",
            &["mem allow", "mem deny", "sys allow", "sys deny"]
        )
    );
    const MEM_FRACTION: f64 = 0.18;
    let mut mem_a = Vec::new();
    let mut mem_d = Vec::new();
    let mut sys_a = Vec::new();
    let mut sys_d = Vec::new();
    for (i, p) in catalog().iter().enumerate() {
        let b = &base[i];
        let base_sys = system_edp(
            b.mem_energy_joules,
            b.seconds,
            b.mem_energy_joules,
            b.seconds,
            MEM_FRACTION,
        );
        let na = allow[i].mem_edp / b.mem_edp;
        let nd = deny[i].mem_edp / b.mem_edp;
        let sa = system_edp(
            b.mem_energy_joules,
            b.seconds,
            allow[i].mem_energy_joules,
            allow[i].seconds,
            MEM_FRACTION,
        ) / base_sys;
        let sd = system_edp(
            b.mem_energy_joules,
            b.seconds,
            deny[i].mem_energy_joules,
            deny[i].seconds,
            MEM_FRACTION,
        ) / base_sys;
        mem_a.push(na);
        mem_d.push(nd);
        sys_a.push(sa);
        sys_d.push(sd);
        println!(
            "{}",
            row(
                p.name,
                &[
                    format!("{na:.3}"),
                    format!("{nd:.3}"),
                    format!("{sa:.3}"),
                    format!("{sd:.3}"),
                ]
            )
        );
    }
    println!();
    println!(
        "memory-EDP geomean: allow {:+.1}%  deny {:+.1}%   (paper: +43%, +37%)",
        (geomean(&mem_a) - 1.0) * 100.0,
        (geomean(&mem_d) - 1.0) * 100.0
    );
    println!(
        "system-EDP geomean: allow {:+.1}%  deny {:+.1}%   (paper: -6%, -12%)",
        (geomean(&sys_a) - 1.0) * 100.0,
        (geomean(&sys_d) - 1.0) * 100.0
    );
    let intense = ["backprop", "graph500", "fft"];
    let improved = catalog()
        .iter()
        .enumerate()
        .filter(|(i, p)| intense.contains(&p.name) && mem_d[*i] < 1.2)
        .count();
    println!(
        "memory-intensive workloads (backprop/graph500/fft) with small or negative mem-EDP overhead: {improved}/3"
    );
}
