//! Replay gate for the parallel discrete-event simulation core.
//!
//! Four checks, reported to stdout and `results/pdes_report.txt`, exit
//! code non-zero on any failure:
//!
//! 1. **Pinned-golden replay** — the sharded trace supply
//!    (`SystemConfig::pdes_workers ∈ {1, 2, 4, 8}`) must reproduce the
//!    pinned golden cycle counts (2 seeds × 3 schemes, the
//!    `crates/core/tests/goldens.rs` regime) **verbatim** at every
//!    worker count. This is the hard bit-identity contract: the
//!    parallel core changes who computes, never what.
//! 2. **Toolkit identity** — the conservative-lookahead executive's
//!    threaded runs (`dve_sim::pdes`) must match the sequential
//!    reference bit-for-bit on the synthetic memory model, across
//!    worker counts and seeds.
//! 3. **Channel stress** — a high-traffic configuration (12 domains,
//!    80% remote) exercising thousands of window-boundary exchanges,
//!    repeated to shake out ordering races; every repetition must
//!    produce the same fingerprint.
//! 4. **Scaling** (hardware-conditional) — threaded toolkit throughput
//!    must beat 1 worker by the per-count threshold (1.4× @ 2, 2.0× @
//!    4, 3.0× @ 8) at the largest worker count the host can actually
//!    run in parallel; skipped with a notice on single-core hosts.
//!
//! `smoke` as an argument shrinks the stress repetitions and skips the
//! timing section's full-size run (CI wall-clock budget); the identity
//! and replay checks run at full strength either way — they are the
//! point of the gate.

use dve::builder::SystemBuilder;
use dve::config::Scheme;
use dve_sim::pdes::{synthetic_executive, SyntheticMemoryDomain};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The pinned goldens (same table as `crates/core/tests/goldens.rs`):
/// backprop, 500 measured ops/thread, warm-up 50, mshrs = 1.
const GOLDENS: &[(u64, Scheme, u64)] = &[
    (42, Scheme::BaselineNuma, 92_408),
    (42, Scheme::DveAllow, 77_905),
    (42, Scheme::DveDeny, 54_962),
    (0x2026_0806, Scheme::BaselineNuma, 91_014),
    (0x2026_0806, Scheme::DveAllow, 79_614),
    (0x2026_0806, Scheme::DveDeny, 54_436),
];

const WORKERS: &[usize] = &[1, 2, 4, 8];

/// `(workers, minimum speedup)` for the conditional scaling check.
const SCALING: &[(usize, f64)] = &[(2, 1.4), (4, 2.0), (8, 3.0)];

/// Per-domain result fingerprint of a synthetic toolkit run.
fn fingerprint(exec: &dve_sim::pdes::Executive<SyntheticMemoryDomain>) -> Vec<(u64, u64, u64)> {
    exec.domains()
        .iter()
        .map(|d| (d.completed, d.remote_completed, d.total_latency))
        .collect()
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "smoke" || a == "--smoke");
    let mut report = String::new();
    let mut failed = false;
    let say = |line: String| {
        println!("{line}");
        line
    };
    macro_rules! emit {
        ($($arg:tt)*) => {{
            let line = say(format!($($arg)*));
            let _ = writeln!(report, "{line}");
        }};
    }

    emit!(
        "pdes replay gate ({})",
        if smoke { "smoke" } else { "full" }
    );

    // --- 1. Pinned-golden replay at every worker count. ---
    emit!("-- golden replay: 2 seeds x 3 schemes x workers {WORKERS:?} --");
    let profile = dve_workloads::catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop profile");
    for &(seed, scheme, golden) in GOLDENS {
        for &w in WORKERS {
            let r = SystemBuilder::new(scheme)
                .ops_per_thread(500)
                .pdes_workers(w)
                .run(&profile, seed);
            let ok = r.cycles == golden && r.mem_ops == 8000;
            if !ok {
                failed = true;
            }
            emit!(
                "  seed={seed:#x} {scheme:?} workers={w}: {} cycles (golden {golden}) {}",
                r.cycles,
                if ok { "ok" } else { "MISMATCH" }
            );
        }
    }

    // --- 2. Toolkit identity: threaded == inline, bit for bit. ---
    emit!("-- toolkit identity: inline vs threaded --");
    for seed in [7u64, 0xD5E_2021] {
        let mut reference = synthetic_executive(8, 6, 40, 0.35, 150, seed);
        let ref_stats = reference.run_inline();
        let ref_fp = fingerprint(&reference);
        for &w in &WORKERS[1..] {
            let mut e = synthetic_executive(8, 6, 40, 0.35, 150, seed);
            let s = e.run_threaded(w);
            let ok = s == ref_stats && fingerprint(&e) == ref_fp;
            if !ok {
                failed = true;
            }
            emit!(
                "  seed={seed:#x} workers={w}: {} events, {} messages {}",
                s.events,
                s.messages,
                if ok { "ok" } else { "DIVERGED" }
            );
        }
    }

    // --- 3. Channel stress: heavy boundary traffic, repeated. ---
    let reps = if smoke { 3 } else { 10 };
    emit!("-- channel stress: 12 domains, 80% remote, {reps} repetitions --");
    let mk = || synthetic_executive(12, 4, 80, 0.8, 150, 0xBEEF);
    let mut stress_ref = mk();
    let stress_stats = stress_ref.run_inline();
    let stress_fp = fingerprint(&stress_ref);
    if stress_stats.messages < 5_000 {
        failed = true;
        emit!(
            "  only {} boundary messages — stress config too tame",
            stress_stats.messages
        );
    }
    for rep in 0..reps {
        for &w in &[4usize, 12] {
            let mut e = mk();
            let s = e.run_threaded(w);
            if s != stress_stats || fingerprint(&e) != stress_fp {
                failed = true;
                emit!("  rep {rep} workers={w}: DIVERGED");
            }
        }
    }
    emit!(
        "  {} messages over {} windows, {} runs identical",
        stress_stats.messages,
        stress_stats.windows,
        reps * 2
    );

    // --- 4. Conditional scaling check. ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gate = SCALING.iter().rfind(|&&(w, _)| w <= cores);
    match gate {
        Some(&(gate_w, need)) if !smoke => {
            let ops = 3000;
            let mut t1 = f64::NAN;
            for &w in WORKERS {
                let mut e = synthetic_executive(8, 64, ops, 0.2, 150, 42);
                let start = Instant::now();
                let s = e.run_threaded(w);
                let secs = start.elapsed().as_secs_f64();
                let tput = s.events as f64 / secs;
                if w == 1 {
                    t1 = tput;
                }
                let speedup = tput / t1;
                emit!("  workers={w}: {tput:>12.0} events/s ({speedup:.2}x)");
                if w == gate_w && speedup < need {
                    failed = true;
                    emit!(
                        "  FAIL: {speedup:.2}x at {gate_w} workers, need >= {need:.1}x \
                         on this {cores}-core host"
                    );
                }
            }
        }
        Some(_) => {
            emit!("-- scaling: SKIPPED (smoke mode; identity checks above are the gate) --");
        }
        None => {
            emit!("-- scaling: SKIPPED (single hardware thread; nothing to compare) --");
        }
    }

    emit!("pdes gate: {}", if failed { "FAIL" } else { "ok" });
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/pdes_report.txt", report).expect("write pdes report");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
