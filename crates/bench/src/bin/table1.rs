//! Regenerates **Table I**: DUE and SDC rates (per billion hours) with
//! improvement factors, plus the §IV case-study derivations.
//!
//! ```text
//! cargo run -p dve-bench --bin table1
//! ```

use dve_reliability::table1::table1_rows;

fn main() {
    println!("Table I: DUE and SDC rates per billion hours of operation");
    println!("(paper values: Chipkill 1e-2 / 3.1e-10; Dve+DSD 2.5e-3 / 6.3e-10;");
    println!(" Dve+TSD 2.5e-3 / 2.5e-16; RAIM 1.5e-14 / 4.0e-10;");
    println!(" Dve+Chipkill 8.7e-17 / 6.3e-10; thermal rows 2.2e-2, 5.9e-3, 5.3e-3)");
    println!();
    for r in table1_rows() {
        println!("{r}");
    }
    println!();
    println!("Case studies (§IV):");
    let m = dve_reliability::model::ReliabilityModel::paper_defaults();
    let ck = m.chipkill();
    let dsd = m.dve_dsd(dve_reliability::fit::ThermalMapping::Identity);
    println!(
        "  A. Dve vs Chipkill DUE improvement: {:.2}x (paper: 4x)",
        ck.due / dsd.due
    );
    let raim = m.raim();
    let dck = m.dve_chipkill();
    println!(
        "  B. Dve+Chipkill vs RAIM DUE improvement: {:.1}x (paper: 172.4x)",
        raim.due / dck.due
    );
    let t = dve_reliability::model::ReliabilityModel::thermal();
    let dve_t = t.dve_tsd(dve_reliability::fit::ThermalMapping::RiskInverse);
    let intel_t = t.intel_tsd();
    println!(
        "  C. Thermal risk-inverse mapping lowers DUE by {:.1}% vs Intel mirroring (paper: 11%)",
        (intel_t.due / dve_t.due - 1.0) * 100.0
    );
}
