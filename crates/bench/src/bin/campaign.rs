//! Monte Carlo fault-injection campaign: empirical cross-validation of
//! the analytical Table I reliability model (§IV) using the real codecs
//! and the fault/scrub machinery of the simulator.
//!
//! ```text
//! cargo run -p dve-bench --bin campaign --release
//! ```
//!
//! Environment knobs:
//!
//! * `DVE_CAMPAIGN_TRIALS`  — trials per scheme (default 10 000)
//! * `DVE_CAMPAIGN_SEED`    — master seed (default the harness seed);
//!   two runs with the same seed are bit-identical regardless of the
//!   worker count
//! * `DVE_CAMPAIGN_WORKERS` — worker threads (default: all cores, no
//!   floor — the parallel merge path is covered by the runner's own
//!   `MERGE_TEST_WORKERS` tests, not by inflating production defaults)
//! * `DVE_CAMPAIGN_REPLAY`  — memory ops replayed per faulty trial
//!   through the recovery state machine (default 16; 0 disables)
//! * `DVE_CAMPAIGN_STRATIFIED` — set to `1`/`true` to stratify the
//!   trial budget over (fault count, all-chip) cells with unbiased
//!   reweighting, concentrating trials on the rare miscorrection /
//!   detection-escape strata
//! * `DVE_CAMPAIGN_OUT`     — output directory for the event logs
//!   (default `results/`); writes `campaign_events.csv`,
//!   `campaign_events.bin`, `campaign.txt` and (stratified runs)
//!   `campaign_strata.csv`
//!
//! The process exits non-zero if any scheme's empirical DUE/SDC rate
//! disagrees with the analytical expectation — this binary doubles as
//! the cross-validation gate. Stratified runs additionally require
//! every positive-mass cell to receive trials and the detect-only DSD
//! escape estimate to carry a nonzero, finite confidence interval.

use dve_campaign::{
    run_all, write_events_binary, write_events_csv, CampaignConfig, CampaignReport, CampaignScheme,
    SamplingMode,
};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .unwrap_or(default)
}

fn env_flag(key: &str) -> bool {
    std::env::var(key)
        .map(|v| matches!(v.trim(), "1" | "true" | "yes" | "on"))
        .unwrap_or(false)
}

/// Stratified-specific acceptance: the whole point of stratification is
/// that rare cells stop being empty, so (a) every positive-mass cell
/// must have received trials, and (b) the detect-only DSD escape (SDC)
/// estimate must come with a nonzero, finite Wilson interval.
fn stratified_gate(report: &CampaignReport) -> bool {
    let mut ok = true;
    for row in &report.rows {
        for cell in &row.strata {
            if cell.weight > 0.0 && cell.trials == 0 {
                eprintln!(
                    "stratified gate: {} cell `{}` has mass {:.3e} but zero trials",
                    row.scheme.label(),
                    cell.stratum.label(),
                    cell.weight
                );
                ok = false;
            }
        }
    }
    if let Some(dsd) = report
        .rows
        .iter()
        .find(|r| r.scheme == CampaignScheme::DveDsd)
    {
        let (lo, hi) = dsd.sdc_ci;
        if !(lo.is_finite() && hi.is_finite() && hi > 0.0) {
            eprintln!(
                "stratified gate: Dve+DSD escape CI [{lo:.3e}, {hi:.3e}] is not a \
                 nonzero finite interval"
            );
            ok = false;
        }
    }
    ok
}

fn write_strata_csv(w: &mut impl std::io::Write, report: &CampaignReport) -> std::io::Result<()> {
    writeln!(
        w,
        "scheme,cell,weight,trials,due,sdc,due_ci_lo,due_ci_hi,sdc_ci_lo,sdc_ci_hi"
    )?;
    for row in &report.rows {
        for cell in &row.strata {
            writeln!(
                w,
                "{},{},{:e},{},{},{},{:e},{:e},{:e},{:e}",
                row.scheme.label(),
                cell.stratum.label(),
                cell.weight,
                cell.trials,
                cell.due,
                cell.sdc,
                cell.due_ci.0,
                cell.due_ci.1,
                cell.sdc_ci.0,
                cell.sdc_ci.1,
            )?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::paper_default();
    cfg.master_seed = env_u64("DVE_CAMPAIGN_SEED", dve_bench::SEED);
    cfg.trials = env_u64("DVE_CAMPAIGN_TRIALS", 10_000);
    cfg.workers = env_u64("DVE_CAMPAIGN_WORKERS", cfg.workers as u64).max(1) as usize;
    cfg.replay_ops = env_u64("DVE_CAMPAIGN_REPLAY", 16);
    let stratified = env_flag("DVE_CAMPAIGN_STRATIFIED");
    if stratified {
        cfg.sampling = SamplingMode::stratified_default();
    }

    let results = run_all(&cfg);
    let report = CampaignReport::build(&cfg, &results);
    print!("{}", report.render(&cfg));

    let out_dir =
        PathBuf::from(std::env::var("DVE_CAMPAIGN_OUT").unwrap_or_else(|_| "results".to_string()));
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    } else {
        let csv_path = out_dir.join("campaign_events.csv");
        let bin_path = out_dir.join("campaign_events.bin");
        let txt_path = out_dir.join("campaign.txt");
        let written = (|| -> std::io::Result<usize> {
            fs::write(&txt_path, report.render(&cfg))?;
            let mut csv = fs::File::create(&csv_path)?;
            write_events_csv(&mut csv, &results)?;
            csv.flush()?;
            let mut bin = fs::File::create(&bin_path)?;
            write_events_binary(&mut bin, &results)?;
            bin.flush()?;
            if stratified {
                let strata_path = out_dir.join("campaign_strata.csv");
                let mut sc = fs::File::create(&strata_path)?;
                write_strata_csv(&mut sc, &report)?;
                sc.flush()?;
            }
            Ok(results.iter().map(|r| r.events.len()).sum())
        })();
        match written {
            Ok(n) => println!(
                "\nevent log: {n} recovery events -> {} + {}",
                csv_path.display(),
                bin_path.display()
            ),
            Err(e) => eprintln!("warning: event log not written: {e}"),
        }
    }

    let mut ok = report.all_agree();
    if !ok {
        eprintln!("cross-validation FAILED: empirical rates disagree with the analytical model");
    }
    if stratified && !stratified_gate(&report) {
        eprintln!("cross-validation FAILED: stratified coverage gate");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
