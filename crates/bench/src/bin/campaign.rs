//! Monte Carlo fault-injection campaign: empirical cross-validation of
//! the analytical Table I reliability model (§IV) using the real codecs
//! and the fault/scrub machinery of the simulator.
//!
//! ```text
//! cargo run -p dve-bench --bin campaign --release
//! ```
//!
//! Environment knobs:
//!
//! * `DVE_CAMPAIGN_TRIALS`  — trials per scheme (default 10 000)
//! * `DVE_CAMPAIGN_SEED`    — master seed (default the harness seed);
//!   two runs with the same seed are bit-identical regardless of the
//!   worker count
//! * `DVE_CAMPAIGN_WORKERS` — worker threads (default: all cores)
//! * `DVE_CAMPAIGN_REPLAY`  — memory ops replayed per faulty trial
//!   through the recovery state machine (default 16; 0 disables)
//! * `DVE_CAMPAIGN_OUT`     — output directory for the event logs
//!   (default `results/`); writes `campaign_events.csv` and
//!   `campaign_events.bin`
//!
//! The process exits non-zero if any scheme's empirical DUE/SDC rate
//! disagrees with the analytical expectation — this binary doubles as
//! the cross-validation gate.

use dve_campaign::{
    run_all, write_events_binary, write_events_csv, CampaignConfig, CampaignReport,
};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::thread;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::paper_default();
    cfg.master_seed = env_u64("DVE_CAMPAIGN_SEED", dve_bench::SEED);
    cfg.trials = env_u64("DVE_CAMPAIGN_TRIALS", 10_000);
    // At least two workers by default so the parallel merge path is
    // always exercised; results are worker-count independent.
    cfg.workers = env_u64(
        "DVE_CAMPAIGN_WORKERS",
        thread::available_parallelism().map_or(2, |n| n.get().max(2)) as u64,
    )
    .max(1) as usize;
    cfg.replay_ops = env_u64("DVE_CAMPAIGN_REPLAY", 16);

    let results = run_all(&cfg);
    let report = CampaignReport::build(&cfg, &results);
    print!("{}", report.render(&cfg));

    let out_dir =
        PathBuf::from(std::env::var("DVE_CAMPAIGN_OUT").unwrap_or_else(|_| "results".to_string()));
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    } else {
        let csv_path = out_dir.join("campaign_events.csv");
        let bin_path = out_dir.join("campaign_events.bin");
        let txt_path = out_dir.join("campaign.txt");
        let written = (|| -> std::io::Result<usize> {
            fs::write(&txt_path, report.render(&cfg))?;
            let mut csv = fs::File::create(&csv_path)?;
            write_events_csv(&mut csv, &results)?;
            csv.flush()?;
            let mut bin = fs::File::create(&bin_path)?;
            write_events_binary(&mut bin, &results)?;
            bin.flush()?;
            Ok(results.iter().map(|r| r.events.len()).sum())
        })();
        match written {
            Ok(n) => println!(
                "\nevent log: {n} recovery events -> {} + {}",
                csv_path.display(),
                bin_path.display()
            ),
            Err(e) => eprintln!("warning: event log not written: {e}"),
        }
    }

    if report.all_agree() {
        ExitCode::SUCCESS
    } else {
        eprintln!("cross-validation FAILED: empirical rates disagree with the analytical model");
        ExitCode::FAILURE
    }
}
