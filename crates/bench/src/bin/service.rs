//! Service smoke harness: boots the always-on replication service,
//! drives it with a concurrent closed-loop fleet (in-process + TCP
//! sessions), flips §V-E degraded mode mid-run, and gates on the
//! end-to-end invariants.
//!
//! ```text
//! cargo run -p dve-bench --bin service --release -- smoke   # CI gate
//! cargo run -p dve-bench --bin service --release           # + scheme table
//! ```
//!
//! Gates (all must hold for exit 0):
//!
//! * `/health` and `/metrics` answer over the service's own listener.
//! * The closed loop closes: every submitted op is answered, and the
//!   service ledger balances (`submitted == admitted + shed`,
//!   `completed == admitted` — chaos and the mid-run degradation flip
//!   drop no admitted op).
//! * Latency conservation: the per-op histograms (count == completed
//!   ops) sum, per component, to exactly the engine's own cumulative
//!   cycle totals.
//! * The mid-run force-degraded on/off both reach the engine
//!   (`degraded_transitions >= 2`) while chaos faults are live.
//! * Percentiles are ordered (p50 <= p99 <= p999).
//!
//! The measured throughput and per-component percentile table land in
//! `results/service_report.txt` (quoted in EXPERIMENTS.md §9).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dve_service::{run_loadgen, LoadgenConfig, Service, ServiceConfig, ServiceReport};
use dve_sim::latency::Component;

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what);
        }
    }
}

/// Plain HTTP GET against the service's listener; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut rsp = String::new();
    s.read_to_string(&mut rsp)?;
    if !rsp.starts_with("HTTP/1.0 200") {
        return Err(std::io::Error::other(format!("bad response: {rsp:.60}")));
    }
    Ok(rsp
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default())
}

fn percentile_table(report: &ServiceReport) -> String {
    let mut t = String::new();
    writeln!(
        t,
        "{:<14} {:>10} {:>10} {:>10} {:>14}",
        "component", "p50", "p99", "p999", "cycles"
    )
    .unwrap();
    let (p50, p99, p999) = report.hists.total.tail();
    writeln!(
        t,
        "{:<14} {:>10} {:>10} {:>10} {:>14}",
        "total",
        p50,
        p99,
        p999,
        report.hists.total.sum()
    )
    .unwrap();
    for c in Component::ALL {
        let h = report.hists.component(c);
        let (p50, p99, p999) = h.tail();
        writeln!(
            t,
            "{:<14} {:>10} {:>10} {:>10} {:>14}",
            c.label(),
            p50,
            p99,
            p999,
            h.sum()
        )
        .unwrap();
    }
    t
}

/// The gated run: chaos armed, >=100 sessions, >=100k ops, a
/// mid-run degraded flip, full conservation checks.
fn smoke_run(gate: &mut Gate) -> String {
    let svc_cfg: ServiceConfig =
        "scheme=dve-deny workload=backprop mshrs=4 epoch_ops=4096 epoch_wait_ms=2 chaos_seed=13"
            .parse()
            .expect("smoke service config");
    let load = LoadgenConfig::default();
    let total_ops = load.sessions as u64 * load.ops_per_session;
    assert!(load.sessions >= 100, "acceptance floor: >=100 sessions");
    assert!(total_ops >= 100_000, "acceptance floor: >=100k ops");

    println!("-- service smoke: {svc_cfg} --");
    println!(
        "   load: {} sessions ({} TCP) x {} ops = {} ops",
        load.sessions, load.tcp_sessions, load.ops_per_session, total_ops
    );
    let service = Service::start(&svc_cfg).expect("service boots");
    let addr = service.addr();

    // Mid-run §V-E flip: degrade at ~1/3 of the ops, restore at ~2/3.
    let telemetry = service.telemetry();
    let flip_done = Arc::new(AtomicBool::new(false));
    let flipper = {
        let flip_done = Arc::clone(&flip_done);
        let svc_telemetry = Arc::clone(&telemetry);
        let on_at = total_ops / 3;
        let off_at = 2 * total_ops / 3;
        let ctl = service.degraded_control();
        std::thread::spawn(move || {
            let mut flipped_on = false;
            let mut flipped_off = false;
            while !(flip_done.load(Ordering::Acquire) || (flipped_on && flipped_off)) {
                let done = svc_telemetry.completed.load(Ordering::Relaxed);
                if !flipped_on && done >= on_at {
                    ctl(true);
                    flipped_on = true;
                    println!("   [flip] degraded=on at {done} completed ops");
                } else if flipped_on && !flipped_off && done >= off_at {
                    ctl(false);
                    flipped_off = true;
                    println!("   [flip] degraded=off at {done} completed ops");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let lg = run_loadgen(&service, &load);
    flip_done.store(true, Ordering::Release);
    flipper.join().expect("flipper thread");

    // Telemetry endpoints answer while the service is still live.
    let health = http_get(addr, "/health");
    gate.check(
        health
            .as_deref()
            .map(|h| h.starts_with("ok"))
            .unwrap_or(false),
        format!("/health answers ok ({health:?})"),
    );
    let metrics = http_get(addr, "/metrics");
    gate.check(
        metrics
            .as_deref()
            .map(|m| m.contains("dve_ops_completed") && m.contains("quantile=\"0.999\""))
            .unwrap_or(false),
        "/metrics serves counters and quantiles",
    );

    let report = service.shutdown();

    gate.check(
        lg.completed == total_ops,
        format!(
            "closed loop answered all {total_ops} ops ({} answered)",
            lg.completed
        ),
    );
    gate.check(
        report.submitted == report.admitted + report.shed,
        format!(
            "admission ledger balances ({} == {} + {})",
            report.submitted, report.admitted, report.shed
        ),
    );
    gate.check(
        report.completed == report.admitted,
        format!(
            "no admitted op dropped across chaos + degraded flip ({} completed of {} admitted)",
            report.completed, report.admitted
        ),
    );
    gate.check(
        report.hists.count() == report.completed,
        "one histogram sample per completed op",
    );
    gate.check(
        report.hists.conserves(&report.engine_latency),
        "per-component histograms sum-conserve against engine totals",
    );
    gate.check(
        report.degraded_transitions >= 2,
        format!(
            "mid-run degraded on+off reached the engine (transitions={})",
            report.degraded_transitions
        ),
    );
    gate.check(
        report.recovery_consistent,
        "recovery ledger self-consistent under live chaos",
    );
    let (p50, p99, p999) = report.hists.total.tail();
    gate.check(
        p50 <= p99 && p99 <= p999,
        format!("percentiles ordered (p50={p50} p99={p99} p999={p999})"),
    );

    let mut out = String::new();
    writeln!(out, "# Service smoke report").unwrap();
    writeln!(out, "config: {svc_cfg}").unwrap();
    writeln!(
        out,
        "load: {} sessions ({} over TCP) x {} ops/session = {} ops",
        load.sessions, load.tcp_sessions, load.ops_per_session, total_ops
    )
    .unwrap();
    writeln!(
        out,
        "sustained: {:.0} ops/s wall ({} epochs, {} sim cycles, {:.1}s wall)",
        lg.ops_per_sec(),
        report.epochs,
        report.cycles,
        lg.wall.as_secs_f64()
    )
    .unwrap();
    writeln!(
        out,
        "admission: submitted={} admitted={} shed={} completed={}",
        report.submitted, report.admitted, report.shed, report.completed
    )
    .unwrap();
    writeln!(
        out,
        "recovery: detected_reads={} degraded_transitions={}",
        report.detected_reads, report.degraded_transitions
    )
    .unwrap();
    writeln!(out, "\n## Per-component latency percentiles (sim cycles)\n").unwrap();
    out.push_str(&percentile_table(&report));
    out
}

/// Full mode extra: a quick fault-free scheme comparison under the
/// same service stack (smaller fleet; the point is relative latency).
fn scheme_table(gate: &mut Gate) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n## Scheme comparison (fault-free, 40 sessions x 500 ops)\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "p50", "p99", "p999", "ops/s"
    )
    .unwrap();
    for scheme in ["baseline-numa", "dve-allow", "dve-deny"] {
        let cfg: ServiceConfig = format!("scheme={scheme} mshrs=4 epoch_ops=2048 epoch_wait_ms=2")
            .parse()
            .expect("scheme config");
        let service = Service::start(&cfg).expect("service boots");
        let load = LoadgenConfig {
            sessions: 40,
            tcp_sessions: 8,
            ops_per_session: 500,
            ..LoadgenConfig::default()
        };
        let lg = run_loadgen(&service, &load);
        let report = service.shutdown();
        gate.check(
            report.conserves(),
            format!("{scheme}: ledger + histograms conserve"),
        );
        let (p50, p99, p999) = report.hists.total.tail();
        writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>12.0}",
            scheme,
            p50,
            p99,
            p999,
            lg.ops_per_sec()
        )
        .unwrap();
    }
    out
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "smoke");
    let mut gate = Gate {
        failures: Vec::new(),
    };

    let mut report = smoke_run(&mut gate);
    if !smoke {
        report.push_str(&scheme_table(&mut gate));
    }

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/service_report.txt", &report)
        .expect("write results/service_report.txt");
    println!("wrote results/service_report.txt");

    if gate.failures.is_empty() {
        println!("service: ALL GATES PASSED");
        ExitCode::SUCCESS
    } else {
        println!("service: {} gate(s) FAILED:", gate.failures.len());
        for f in &gate.failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
