//! Regenerates **Fig. 10**: sensitivity of Dvé's gains to the
//! inter-socket link latency (30 / 50 / 60 ns one way).
//!
//! Paper reference points: even at 30 ns the deny protocol keeps
//! +19%/+12%/+10% (top-10/15/20); benefits grow with latency (60 ns is
//! the CCIX/OpenCAPI/Gen-Z regime).
//!
//! ```text
//! cargo run -p dve-bench --bin fig10 --release
//! ```

use dve::config::Scheme;
use dve_bench::{grouped, ops_from_env, run_all_with, speedups};
use dve_sim::time::Nanos;

fn main() {
    let ops = ops_from_env();
    println!("Fig. 10: geomean speedup vs inter-socket latency");
    println!(
        "{:<10} {:>7} {:>16} {:>16} {:>16}",
        "latency", "scheme", "top-10", "top-15", "all-20"
    );
    println!("{}", "-".repeat(70));
    let mut prev_all20 = [0.0f64; 2];
    for (li, ns) in [30u64, 50, 60].into_iter().enumerate() {
        let base = run_all_with(Scheme::BaselineNuma, ops, |c| c.link_latency = Nanos(ns));
        for (si, scheme) in [Scheme::DveAllow, Scheme::DveDeny].into_iter().enumerate() {
            let runs = run_all_with(scheme, ops, |c| c.link_latency = Nanos(ns));
            let g = grouped(&speedups(&runs, &base));
            println!(
                "{:<10} {:>7} {:>15.1}% {:>15.1}% {:>15.1}%",
                format!("{ns} ns"),
                if si == 0 { "allow" } else { "deny" },
                (g.top10 - 1.0) * 100.0,
                (g.top15 - 1.0) * 100.0,
                (g.all20 - 1.0) * 100.0
            );
            if li > 0 {
                // The paper's claim: benefits increase with latency.
                if g.all20 < prev_all20[si] {
                    println!("    (note: gain did not grow at this step)");
                }
            }
            prev_all20[si] = g.all20;
        }
    }
}
