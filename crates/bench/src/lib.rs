//! Shared harness code for the per-table / per-figure regenerators.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the
//! paper; this library holds the common machinery: running the 20
//! workloads under a scheme, collecting speedups in the paper's MPKI
//! order, and rendering aligned text tables.
//!
//! Run lengths default to 30 000 measured memory operations per thread
//! (plus 10% warm-up) — far past the point where the *normalized*
//! metrics of the statistical workload clones stabilize. Set `DVE_OPS`
//! to override.

use dve::config::{Scheme, SystemConfig};
use dve::metrics::GroupedSpeedups;
use dve::system::{RunResult, System};
use dve_sim::rng::derive_seed;
use dve_workloads::{catalog, WorkloadProfile};

/// Default measured memory operations per thread.
pub const DEFAULT_OPS: u64 = 30_000;

/// The master experiment seed used by every harness (reproducibility).
/// Per-run child seeds come from [`workload_seed`], never from ad-hoc
/// arithmetic on this constant.
pub const SEED: u64 = 0xD0E5_2021;

/// Stream id reserved for bench-harness runs in
/// [`dve_sim::rng::derive_seed`].
pub const BENCH_STREAM: u64 = 0xBE;

/// Deterministic child seed for one workload's run, derived from the
/// master [`SEED`] via [`dve_sim::rng::derive_seed`] with the
/// workload's name as the index (stable across catalog reorderings).
pub fn workload_seed(name: &str) -> u64 {
    // FNV-1a folds the name into the index; derive_seed does the mixing.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    derive_seed(SEED, BENCH_STREAM, h)
}

/// Reads the per-thread op budget from `DVE_OPS`, defaulting to
/// [`DEFAULT_OPS`].
pub fn ops_from_env() -> u64 {
    std::env::var("DVE_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_OPS)
}

/// Runs one workload under one scheme with a custom config tweak.
pub fn run_with<F>(profile: &WorkloadProfile, scheme: Scheme, ops: u64, tweak: F) -> RunResult
where
    F: FnOnce(&mut SystemConfig),
{
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.ops_per_thread = ops;
    cfg.warmup_per_thread = ops / 10;
    tweak(&mut cfg);
    System::new(cfg, profile, workload_seed(profile.name)).run()
}

/// Runs all 20 workloads (paper order) under `scheme`.
pub fn run_all(scheme: Scheme, ops: u64) -> Vec<RunResult> {
    run_all_with(scheme, ops, |_| {})
}

/// Runs all 20 workloads with a config tweak applied to each run.
pub fn run_all_with<F>(scheme: Scheme, ops: u64, tweak: F) -> Vec<RunResult>
where
    F: Fn(&mut SystemConfig),
{
    catalog()
        .iter()
        .map(|p| run_with(p, scheme, ops, &tweak))
        .collect()
}

/// Per-workload speedups of `variant` over `baseline`, in catalog order.
pub fn speedups(variant: &[RunResult], baseline: &[RunResult]) -> Vec<f64> {
    assert_eq!(variant.len(), baseline.len());
    variant
        .iter()
        .zip(baseline)
        .map(|(v, b)| v.speedup_over(b))
        .collect()
}

/// The paper's top-10 / top-15 / all-20 geomeans.
pub fn grouped(speedups: &[f64]) -> GroupedSpeedups {
    GroupedSpeedups::from_ordered(speedups)
}

/// Renders one row of an aligned table.
pub fn row(name: &str, cells: &[String]) -> String {
    let mut out = format!("{name:<16}");
    for c in cells {
        out.push_str(&format!("{c:>14}"));
    }
    out
}

/// Header + separator for an aligned table.
pub fn header(title: &str, cols: &[&str]) -> String {
    let mut out = format!("=== {title} ===\n");
    out.push_str(&row(
        "workload",
        &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(16 + 14 * cols.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_end_to_end_matrix() {
        let base = run_all(Scheme::BaselineNuma, 300);
        let deny = run_all(Scheme::DveDeny, 300);
        let s = speedups(&deny, &base);
        assert_eq!(s.len(), 20);
        let g = grouped(&s);
        assert!(g.top10 > 0.3 && g.top10 < 10.0, "top10 = {}", g.top10);
    }

    #[test]
    fn table_rendering() {
        let h = header("Fig. X", &["a", "b"]);
        assert!(h.contains("Fig. X"));
        assert!(h.contains("workload"));
        let r = row("fft", &["1.00".into(), "2.00".into()]);
        assert!(r.starts_with("fft"));
        assert!(r.contains("2.00"));
    }
}
