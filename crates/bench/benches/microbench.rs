//! Criterion micro-benchmarks of the substrate components: ECC codecs,
//! cache arrays, replica directory, DRAM controller, mesh routing and
//! trace synthesis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dve_coherence::cache::SetAssocCache;
use dve_coherence::replica_dir::{ReplicaDirectory, ReplicaPolicy, ReplicaState};
use dve_coherence::types::CacheState;
use dve_dram::config::DramConfig;
use dve_dram::controller::{AccessKind, MemoryController};
use dve_ecc::code::{CorrectionCode, DetectionCode};
use dve_ecc::hamming::SecDed;
use dve_ecc::rs::{DecodePolicy, Rs};
use dve_ecc::rs16::Rs16Detect;
use dve_noc::mesh::Mesh;
use dve_sim::time::Cycles;
use dve_workloads::{catalog, TraceGenerator};

fn ecc_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");
    let data16: Vec<u8> = (0..16).collect();
    let chipkill = Rs::new(18, 16, DecodePolicy::Correct);
    g.bench_function("rs18_16_encode", |b| {
        b.iter(|| chipkill.encode(black_box(&data16)))
    });
    let cw = chipkill.encode(&data16);
    g.bench_function("rs18_16_check_clean", |b| {
        b.iter(|| chipkill.check(black_box(&cw)))
    });
    let mut bad = cw.clone();
    bad[5] ^= 0xFF;
    g.bench_function("rs18_16_correct_one_symbol", |b| {
        b.iter(|| {
            let mut w = bad.clone();
            chipkill.check_and_repair(black_box(&mut w))
        })
    });
    let tsd = Rs16Detect::tsd(64);
    let line = vec![0xA5u8; 64];
    g.bench_function("tsd_encode_64B", |b| {
        b.iter(|| tsd.encode(black_box(&line)))
    });
    let tcw = tsd.encode(&line);
    g.bench_function("tsd_check_64B", |b| b.iter(|| tsd.check(black_box(&tcw))));
    let secded = SecDed::new();
    let word = [0x42u8; 8];
    g.bench_function("secded_encode", |b| {
        b.iter(|| secded.encode(black_box(&word)))
    });
    g.finish();
}

fn cache_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("llc_lookup_hit", |b| {
        let mut llc = SetAssocCache::new(8 * 1024 * 1024, 16, 64);
        for i in 0..1000u64 {
            llc.insert(i, CacheState::S);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1000;
            llc.lookup(black_box(i))
        })
    });
    g.bench_function("llc_insert_evict", |b| {
        let mut llc = SetAssocCache::new(64 * 1024, 8, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            llc.insert(black_box(i), CacheState::S)
        })
    });
    g.bench_function("replica_dir_lookup", |b| {
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Allow, Some(2048), 1);
        for i in 0..2048u64 {
            rd.install(i, ReplicaState::S);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            rd.lookup(black_box(i))
        })
    });
    g.finish();
}

fn platform_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform");
    g.bench_function("dram_access", |b| {
        let mut mc = MemoryController::new(0, DramConfig::ddr4_2400());
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096) & 0xFFFF_FFFF;
            t += 100;
            mc.access(black_box(addr), AccessKind::Read, Cycles(t))
        })
    });
    g.bench_function("mesh_route_2x4", |b| {
        let mesh = Mesh::new(4, 2);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 64;
            mesh.latency_cycles(black_box(i / 8), black_box(i % 8))
        })
    });
    g.bench_function("trace_gen_next_op", |b| {
        let profiles = catalog();
        let mut gen = TraceGenerator::new(&profiles[0], 16, 7);
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 1) % 16;
            gen.next_op(black_box(t))
        })
    });
    g.finish();
}

criterion_group!(benches, ecc_benches, cache_benches, platform_benches);
criterion_main!(benches);
