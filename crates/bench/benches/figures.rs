//! Criterion end-to-end benchmarks: one group per paper experiment,
//! measuring the wall time of a scaled-down regeneration of each
//! figure/table so `cargo bench` exercises every experiment pipeline.
//!
//! (The full-size figure outputs come from the `src/bin/figN` harnesses;
//! these benches use small op budgets to stay quick.)

use criterion::{criterion_group, criterion_main, Criterion};
use dve::config::Scheme;
use dve_bench::{run_all, run_with, speedups};
use dve_reliability::table1::table1_rows;
use dve_verify::{check, Variant};
use dve_workloads::catalog;

const BENCH_OPS: u64 = 1_000;

fn table1_bench(c: &mut Criterion) {
    c.bench_function("table1_reliability_model", |b| b.iter(table1_rows));
}

fn fig5_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_model_check");
    g.sample_size(10);
    g.bench_function("allow_50k_states", |b| {
        b.iter(|| check(Variant::Allow, 50_000))
    });
    g.bench_function("deny_50k_states", |b| {
        b.iter(|| check(Variant::Deny, 50_000))
    });
    g.finish();
}

fn fig6_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_speedup");
    g.sample_size(10);
    let profiles = catalog();
    for scheme in [
        Scheme::BaselineNuma,
        Scheme::DveAllow,
        Scheme::DveDeny,
        Scheme::DveDynamic,
    ] {
        g.bench_function(format!("backprop_{}", scheme.label()), |b| {
            b.iter(|| run_with(&profiles[0], scheme, BENCH_OPS, |_| {}))
        });
    }
    g.finish();
}

fn fig7_fig8_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig8_classification_traffic");
    g.sample_size(10);
    g.bench_function("baseline_sweep_4_workloads", |b| {
        let profiles = catalog();
        b.iter(|| {
            profiles[..4]
                .iter()
                .map(|p| run_with(p, Scheme::BaselineNuma, BENCH_OPS, |_| {}))
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn fig9_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_allow_variants");
    g.sample_size(10);
    let profiles = catalog();
    g.bench_function("allow_oracle_backprop", |b| {
        b.iter(|| {
            run_with(&profiles[0], Scheme::DveAllow, BENCH_OPS, |c| {
                c.engine.replica_dir_entries = None;
                c.engine.free_installs = true;
            })
        })
    });
    g.finish();
}

fn fig10_energy_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_energy");
    g.sample_size(10);
    g.bench_function("deny_latency_sweep_fft", |b| {
        let profiles = catalog();
        let fft = profiles.iter().find(|p| p.name == "fft").unwrap().clone();
        b.iter(|| {
            [30u64, 50, 60]
                .into_iter()
                .map(|ns| {
                    run_with(&fft, Scheme::DveDeny, BENCH_OPS, |c| {
                        c.link_latency = dve_sim::time::Nanos(ns)
                    })
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn end_to_end_geomean_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("all20_deny_vs_baseline_tiny", |b| {
        b.iter(|| {
            let base = run_all(Scheme::BaselineNuma, 300);
            let deny = run_all(Scheme::DveDeny, 300);
            speedups(&deny, &base)
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    table1_bench,
    fig5_bench,
    fig6_bench,
    fig7_fig8_bench,
    fig9_bench,
    fig10_energy_bench,
    end_to_end_geomean_bench
);
criterion_main!(figures);
