//! Effective-capacity accounting (the third axis of Fig. 1).
//!
//! Fig. 1 compares SEC-DED, Chipkill and Dvé on reliability, performance
//! and *effective capacity* — the fraction of purchased DRAM bytes that
//! hold unique user data. The paper quotes 43.75% for Dvé (full
//! replication of 87.5%-efficient detection-coded data) versus 85% for
//! Chipkill; and stresses that Dvé's overhead applies *only while
//! replication is enabled*, unlike design-time ECC provisioning.

/// Effective capacity of a memory organization.
///
/// # Example
///
/// ```
/// use dve_reliability::capacity::effective_capacity;
///
/// // Dvé: 12.5% detection-code overhead, 2 copies → 43.75%.
/// let dve = effective_capacity(0.125, 2);
/// assert!((dve - 0.4375).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `code_overhead` is outside `[0, 1)` or `replicas == 0`.
pub fn effective_capacity(code_overhead: f64, replicas: u32) -> f64 {
    assert!(
        (0.0..1.0).contains(&code_overhead),
        "overhead must be in [0,1)"
    );
    assert!(replicas >= 1, "need at least one copy");
    (1.0 - code_overhead) / replicas as f64
}

/// Capacity summary of one scheme for the Fig. 1 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Scheme name.
    pub scheme: &'static str,
    /// Effective capacity in [0, 1].
    pub effective: f64,
    /// Whether the overhead is fixed at design time (ECC DIMMs) or can be
    /// reclaimed at runtime (Dvé's on-demand replication).
    pub on_demand: bool,
}

/// The three Fig. 1 design points.
pub fn fig1_capacity_points() -> Vec<CapacityPoint> {
    vec![
        CapacityPoint {
            scheme: "SEC-DED",
            effective: effective_capacity(0.125, 1), // 8 check bits / 64
            on_demand: false,
        },
        CapacityPoint {
            // The paper quotes 85% effective capacity for Chipkill
            // (codeword overhead plus provisioned spare capacity).
            scheme: "Chipkill",
            effective: 0.85,
            on_demand: false,
        },
        CapacityPoint {
            scheme: "Dve",
            effective: effective_capacity(0.125, 2),
            on_demand: true, // reclaimable when replication is off
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dve_is_43_75_percent() {
        assert!((effective_capacity(0.125, 2) - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn no_overhead_single_copy_is_full() {
        assert_eq!(effective_capacity(0.0, 1), 1.0);
    }

    #[test]
    fn fig1_points_match_paper() {
        let pts = fig1_capacity_points();
        assert_eq!(pts.len(), 3);
        let dve = pts.iter().find(|p| p.scheme == "Dve").unwrap();
        assert!((dve.effective - 0.4375).abs() < 1e-12);
        assert!(dve.on_demand);
        let ck = pts.iter().find(|p| p.scheme == "Chipkill").unwrap();
        assert!((ck.effective - 0.85).abs() < 1e-12);
        assert!(!ck.on_demand);
    }

    #[test]
    #[should_panic(expected = "overhead")]
    fn full_overhead_rejected() {
        effective_capacity(1.0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_replicas_rejected() {
        effective_capacity(0.1, 0);
    }
}
