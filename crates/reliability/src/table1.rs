//! Assembles Table I of the paper: every scheme's DUE and SDC rate plus
//! the improvement factors the paper quotes.

use crate::fit::ThermalMapping;
use crate::model::{DueSdc, ReliabilityModel};
use std::fmt;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Scheme name as printed in the paper.
    pub scheme: &'static str,
    /// DUE/SDC rates per billion hours.
    pub rates: DueSdc,
    /// DUE improvement over this row's baseline (`None` for baselines).
    pub due_improvement: Option<f64>,
    /// SDC improvement over this row's baseline.
    pub sdc_improvement: Option<f64>,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} DUE {:>9.2e} ({:>8}) SDC {:>9.2e} ({:>8})",
            self.scheme,
            self.rates.due,
            self.due_improvement
                .map_or("-".into(), |x| format!("{x:.2}x")),
            self.rates.sdc,
            self.sdc_improvement
                .map_or("-".into(), |x| format!("{x:.2}x")),
        )
    }
}

/// Computes all eight rows of Table I (three comparison groups:
/// vs Chipkill, vs RAIM, and the temperature-scaled group).
pub fn table1_rows() -> Vec<Table1Row> {
    let m = ReliabilityModel::paper_defaults();
    let t = ReliabilityModel::thermal();

    let chipkill = m.chipkill();
    let dve_dsd = m.dve_dsd(ThermalMapping::Identity);
    let dve_tsd = m.dve_tsd(ThermalMapping::Identity);
    let raim = m.raim();
    let dve_ck = m.dve_chipkill();
    let chipkill_t = t.chipkill();
    let intel_t = t.intel_tsd();
    let dve_t = t.dve_tsd(ThermalMapping::RiskInverse);

    vec![
        Table1Row {
            scheme: "Chipkill",
            rates: chipkill,
            due_improvement: None,
            sdc_improvement: None,
        },
        Table1Row {
            scheme: "Dve+DSD",
            rates: dve_dsd,
            due_improvement: Some(chipkill.due / dve_dsd.due),
            sdc_improvement: Some(chipkill.sdc / dve_dsd.sdc),
        },
        Table1Row {
            scheme: "Dve+TSD",
            rates: dve_tsd,
            due_improvement: Some(chipkill.due / dve_tsd.due),
            sdc_improvement: Some(chipkill.sdc / dve_tsd.sdc),
        },
        Table1Row {
            scheme: "IBM RAIM",
            rates: raim,
            due_improvement: None,
            sdc_improvement: None,
        },
        Table1Row {
            scheme: "Dve+Chipkill",
            rates: dve_ck,
            due_improvement: Some(raim.due / dve_ck.due),
            sdc_improvement: Some(raim.sdc / dve_ck.sdc),
        },
        Table1Row {
            scheme: "Chipkill (thermal)",
            rates: chipkill_t,
            due_improvement: None,
            sdc_improvement: None,
        },
        Table1Row {
            scheme: "Intel+TSD (thermal)",
            rates: intel_t,
            due_improvement: Some(chipkill_t.due / intel_t.due),
            sdc_improvement: Some(chipkill_t.sdc / intel_t.sdc),
        },
        Table1Row {
            scheme: "Dve+TSD (thermal)",
            rates: dve_t,
            due_improvement: Some(chipkill_t.due / dve_t.due),
            sdc_improvement: Some(chipkill_t.sdc / dve_t.sdc),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_in_paper_order() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 8);
        let names: Vec<_> = rows.iter().map(|r| r.scheme).collect();
        assert_eq!(
            names,
            [
                "Chipkill",
                "Dve+DSD",
                "Dve+TSD",
                "IBM RAIM",
                "Dve+Chipkill",
                "Chipkill (thermal)",
                "Intel+TSD (thermal)",
                "Dve+TSD (thermal)"
            ]
        );
    }

    #[test]
    fn improvements_match_paper_quotes() {
        let rows = table1_rows();
        let get = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap().clone();
        // "4×" DUE for Dvé+DSD and Dvé+TSD.
        assert!((get("Dve+DSD").due_improvement.unwrap() - 4.0).abs() < 0.05);
        assert!((get("Dve+TSD").due_improvement.unwrap() - 4.0).abs() < 0.05);
        // "0.49×" SDC for Dvé+DSD (i.e. 2× worse).
        assert!((get("Dve+DSD").sdc_improvement.unwrap() - 0.5).abs() < 0.02);
        // "~10⁶×" SDC for Dvé+TSD.
        assert!(get("Dve+TSD").sdc_improvement.unwrap() > 1e5);
        // "172×" DUE for Dvé+Chipkill over RAIM.
        let impr = get("Dve+Chipkill").due_improvement.unwrap();
        assert!((impr - 172.4).abs() / 172.4 < 0.06, "impr = {impr}");
        // "0.63×" SDC for Dvé+Chipkill (64 vs 40 DIMMs).
        assert!((get("Dve+Chipkill").sdc_improvement.unwrap() - 0.625).abs() < 0.02);
        // Thermal: 3.72× Intel vs 4.15× Dvé.
        let intel = get("Intel+TSD (thermal)").due_improvement.unwrap();
        let dve = get("Dve+TSD (thermal)").due_improvement.unwrap();
        assert!((intel - 3.72).abs() < 0.1, "intel = {intel}");
        assert!((dve - 4.15).abs() < 0.1, "dve = {dve}");
        assert!(dve > intel, "risk-inverse mapping beats identity mirroring");
    }

    #[test]
    fn rows_render() {
        for row in table1_rows() {
            let s = row.to_string();
            assert!(s.contains("DUE") && s.contains("SDC"));
        }
    }
}
