//! Accelerated-time fault statistics for Monte Carlo campaigns.
//!
//! Real per-chip failure rates (66.1 FIT ≈ 6.6×10⁻⁸ failures/hour) are
//! far too small to observe in any simulated-trial budget: at real scale
//! a 10⁴-trial campaign would see zero events for every scheme.
//! Campaigns therefore run *time-compressed*: each trial observes one
//! scrub-interval window in which every chip fails independently with an
//! accelerated probability `p = FIT × 10⁻⁹ × window_hours × accel`.
//!
//! The point of this module is that the same closed-form combinatorics
//! the analytical Table I model uses can be evaluated **exactly** at the
//! accelerated `p`, giving per-window outcome probabilities in the *same
//! probability space the sampler draws from*. Empirical frequencies must
//! then agree with these within sampling error — any disagreement is a
//! bug in the campaign machinery, not a modeling gap — while the
//! *ratios* between schemes (the 4× Dvé-vs-Chipkill DUE gap, the ≥40×
//! Dvé+Chipkill gap) carry over to real scale because both are governed
//! by the same leading-order terms.

use crate::fit::BASE_FIT;

/// Parameters of one accelerated campaign window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelParams {
    /// Chips per DIMM (9 in the paper's configuration).
    pub chips_per_dimm: usize,
    /// Probability that one chip fails inside the observed window.
    pub chip_fail_prob: f64,
    /// Fraction of chip failures that are transient (clear on the
    /// write-repair of §V-B2) rather than permanent.
    pub transient_frac: f64,
}

impl AccelParams {
    /// Default campaign operating point: paper geometry, a per-window
    /// chip-failure probability of 5% (large enough that even
    /// Dvé+Chipkill's `O(p⁴)` DUE events materialize in 10⁴ trials),
    /// and a 70/30 transient/permanent split (field studies place
    /// transients at the majority; the exact split only moves the
    /// CE-transient vs CE-degraded ratio, not DUE/SDC).
    pub fn paper_accelerated() -> AccelParams {
        AccelParams {
            chips_per_dimm: 9,
            chip_fail_prob: 0.05,
            transient_frac: 0.7,
        }
    }

    /// Derives the per-window failure probability from a FIT rate, a
    /// window length in hours and a time-compression factor:
    /// `p = FIT × 10⁻⁹ × hours × accel`, clamped to `[0, 0.5]`.
    ///
    /// # Example
    ///
    /// ```
    /// use dve_reliability::accel::AccelParams;
    ///
    /// // 66.1 FIT, a 1-hour scrub window, 7.5×10⁵× compression ≈ 5%.
    /// let p = AccelParams::fail_prob_from_fit(66.1, 1.0, 7.5e5);
    /// assert!((p - 0.0496).abs() < 1e-3);
    /// ```
    pub fn fail_prob_from_fit(fit: f64, window_hours: f64, accel: f64) -> f64 {
        (fit * 1e-9 * window_hours * accel).clamp(0.0, 0.5)
    }

    /// Paper-default params at a given acceleration factor over a
    /// 1-hour window of [`BASE_FIT`]-rate chips.
    pub fn from_acceleration(accel: f64) -> AccelParams {
        AccelParams {
            chips_per_dimm: 9,
            chip_fail_prob: Self::fail_prob_from_fit(BASE_FIT, 1.0, accel),
            transient_frac: 0.7,
        }
    }
}

/// Exact binomial tail `P(X ≥ k)` for `X ~ Binomial(n, p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_tail_ge(n: usize, p: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Sum the complement head with running binomial terms for stability.
    let mut head = 0.0;
    let mut term = (1.0 - p).powi(n as i32); // P(X = 0)
    for i in 0..k {
        head += term;
        // P(X=i+1) = P(X=i) * (n-i)/(i+1) * p/(1-p); guard p == 1.
        if (1.0 - p).abs() < f64::EPSILON {
            term = 0.0;
        } else {
            term *= (n - i) as f64 / (i + 1) as f64 * (p / (1.0 - p));
        }
    }
    (1.0 - head).max(0.0)
}

/// Probability that a correcting RS(18,16) decoder *miscorrects* a
/// random beyond-guarantee error pattern instead of flagging it: the
/// single-error locator `S₁/S₀` lands on one of the 18 valid positions
/// with probability ≈ `n/q = 18/255` ≈ 7.1% — numerically the paper's
/// 6.9% detection-miss constant for a DSD code facing a triple failure.
pub const RS_SSC_MISCORRECT: f64 = 18.0 / 255.0;

/// Per-window outcome probabilities for one scheme, evaluated in the
/// accelerated probability space (see module docs). `due` is exact up
/// to the (small) miscorrection factors noted per scheme;
/// `sdc_expected` models the real decoders' escape behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowProbs {
    /// Expected detected-but-uncorrectable probability: data lost *and*
    /// a machine check raised.
    pub due: f64,
    /// Expected silent escape probability. For correcting RS codes this
    /// is the [`RS_SSC_MISCORRECT`] share of beyond-guarantee patterns;
    /// for detect-only codes facing random symbol corruption it is the
    /// all-syndromes-zero probability ≈ q⁻ⁿˢʸᵐ, far smaller.
    pub sdc_expected: f64,
}

impl WindowProbs {
    /// Total uncorrectable mass `due + sdc`: every trial whose fault
    /// pattern exceeded the scheme's correction power, however the
    /// decoder reacted. The empirical `DUE + SDC` frequency must match
    /// this within sampling error.
    pub fn uncorrectable(&self) -> f64 {
        self.due + self.sdc_expected
    }
}

/// The accelerated analogue of [`ReliabilityModel`]: exact per-window
/// combinatorics over one DIMM (Chipkill) or one DIMM pair (Dvé).
///
/// # Example
///
/// ```
/// use dve_reliability::accel::{AccelModel, AccelParams};
///
/// let m = AccelModel::new(AccelParams::paper_accelerated());
/// let ck = m.chipkill();
/// let dve = m.dve_detect_only();
/// // The paper's 4× DUE gap survives acceleration to leading order.
/// let ratio = ck.uncorrectable() / dve.uncorrectable();
/// assert!(ratio > 3.0 && ratio < 4.5, "ratio = {ratio}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelModel {
    params: AccelParams,
}

impl AccelModel {
    /// Builds the model for the given window parameters.
    pub fn new(params: AccelParams) -> AccelModel {
        AccelModel { params }
    }

    /// The window parameters.
    pub fn params(&self) -> AccelParams {
        self.params
    }

    /// Chipkill on a single DIMM: `k ~ Binomial(n, p)` chips fail;
    /// the RS(18,16) code corrects `k = 1` and loses data at `k ≥ 2`,
    /// where the beyond-guarantee mass splits into a miscorrected
    /// (silent) share and a flagged (DUE) share.
    pub fn chipkill(&self) -> WindowProbs {
        let n = self.params.chips_per_dimm;
        let p = self.params.chip_fail_prob;
        let beyond = binomial_tail_ge(n, p, 2);
        let sdc = beyond * RS_SSC_MISCORRECT;
        WindowProbs {
            due: beyond - sdc,
            sdc_expected: sdc,
        }
    }

    /// Dvé with the detect-only DSD code (RS(18,16) over GF(2⁸), two
    /// check symbols, distance 3): data chip `i` is replicated at the
    /// paired chip of the replica DIMM, so a symbol is unrecoverable iff
    /// *both* chips of a pair fail — the pair-overlap count is
    /// `o ~ Binomial(n, p²)` and data is lost at `o ≥ 1`.
    pub fn dve_detect_only(&self) -> WindowProbs {
        let n = self.params.chips_per_dimm;
        let p = self.params.chip_fail_prob;
        let p2 = p * p;
        WindowProbs {
            due: binomial_tail_ge(n, p2, 1),
            sdc_expected: self.detect_only_escape(3, 1.0 / (255.0 * 255.0)),
        }
    }

    /// Dvé with the detect-only TSD code (RS over GF(2¹⁶), three check
    /// symbols, distance 4): identical overlap combinatorics to DSD, but
    /// a silent escape must zero three 16-bit syndromes at once, pushing
    /// the per-pattern escape mass to ≈ q⁻² = 65535⁻² — unobservable at
    /// any realistic trial volume.
    pub fn dve_tsd(&self) -> WindowProbs {
        let n = self.params.chips_per_dimm;
        let p = self.params.chip_fail_prob;
        let p2 = p * p;
        WindowProbs {
            due: binomial_tail_ge(n, p2, 1),
            sdc_expected: self.detect_only_escape(4, 1.0 / (65535.0f64 * 65535.0)),
        }
    }

    /// Silent-escape mass of a distance-`d` detect-only code (`min_err =
    /// d`): the lightest escaping pattern corrupts `d` symbols of one
    /// copy (weight < d never zeroes all syndromes), and each such
    /// pattern escapes with probability ≈ `per_pattern` — the
    /// minimum-weight-codeword density `(q-1)/(q-1)^d` of an MDS code,
    /// exact for whole-chip (uniform-magnitude) faults and an
    /// order-of-magnitude estimate for bit/pin-restricted ones. The
    /// `(1 + P(k≥1))` factor adds the symmetric replica-side escape,
    /// which is only reachable once the primary has flagged.
    fn detect_only_escape(&self, min_err: usize, per_pattern: f64) -> f64 {
        let n = self.params.chips_per_dimm;
        let p = self.params.chip_fail_prob;
        binomial_tail_ge(n, p, min_err) * (1.0 + binomial_tail_ge(n, p, 1)) * per_pattern
    }

    /// Dvé over Chipkill DIMMs: each copy locally corrects one lost
    /// symbol, so a DUE needs pair-overlap `o ≥ 2` *and* both decoders
    /// to flag (rather than miscorrect) their beyond-guarantee pattern.
    pub fn dve_chipkill(&self) -> WindowProbs {
        let n = self.params.chips_per_dimm;
        let p = self.params.chip_fail_prob;
        let p2 = p * p;
        let m = RS_SSC_MISCORRECT;
        let beyond = binomial_tail_ge(n, p, 2); // one copy, k >= 2
                                                // The primary copy still runs a correcting RS(18,16): its ≈7%
                                                // miscorrection of beyond-guarantee patterns is silent *before*
                                                // the replica is ever consulted (and the replica's decoder can
                                                // miscorrect too, once the primary flags), so SDC tracks the
                                                // Chipkill baseline — Table I shows the same effect: Dvé+Chipkill
                                                // improves DUE by orders of magnitude while SDC stays at
                                                // Chipkill scale.
        let sdc = beyond * m * (1.0 + (1.0 - m) * beyond);
        WindowProbs {
            due: binomial_tail_ge(n, p2, 2) * (1.0 - m) * (1.0 - m),
            sdc_expected: sdc,
        }
    }

    /// Probability that exactly zero chips fail anywhere in the window
    /// (both DIMMs of a pair): the clean-trial mass for Dvé schemes.
    pub fn pair_all_clean(&self) -> f64 {
        let n = self.params.chips_per_dimm as i32;
        (1.0 - self.params.chip_fail_prob).powi(2 * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(binomial_tail_ge(9, 0.3, 0), 1.0);
        assert_eq!(binomial_tail_ge(9, 0.3, 10), 0.0);
        assert!((binomial_tail_ge(1, 0.25, 1) - 0.25).abs() < 1e-12);
        assert!((binomial_tail_ge(9, 1.0, 9) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail_ge(9, 0.0, 1), 0.0);
    }

    #[test]
    fn binomial_tail_matches_direct_sum() {
        // Direct evaluation via factorials for a small case.
        let n: usize = 9;
        let p: f64 = 0.05;
        let choose = |n: u64, k: u64| -> f64 {
            let mut c = 1.0;
            for i in 0..k {
                c = c * (n - i) as f64 / (i + 1) as f64;
            }
            c
        };
        for k in 0..=9usize {
            let direct: f64 = (k..=n)
                .map(|i| {
                    choose(n as u64, i as u64) * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32)
                })
                .sum();
            let fast = binomial_tail_ge(n, p, k);
            assert!(
                (direct - fast).abs() < 1e-12,
                "k={k}: {direct:e} vs {fast:e}"
            );
        }
    }

    #[test]
    fn accelerated_ratios_track_table1_to_leading_order() {
        // As p → 0 the accelerated ratios converge on the paper's:
        // Chipkill/Dvé DUE → C(9,2)p² / 9p² = 4.
        let m = AccelModel::new(AccelParams {
            chips_per_dimm: 9,
            chip_fail_prob: 1e-4,
            transient_frac: 0.7,
        });
        // Compare the raw beyond-correction masses: Chipkill's DUE+SDC
        // (= P(k >= 2) exactly) against the detect-only DUE (= P(o >= 1)
        // exactly): C(9,2)p² / 9p² = 4.
        let ratio = m.chipkill().uncorrectable() / m.dve_detect_only().due;
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn dve_chipkill_due_is_far_below_chipkill() {
        let m = AccelModel::new(AccelParams::paper_accelerated());
        let ck = m.chipkill().due;
        let dck = m.dve_chipkill().due;
        assert!(ck / dck > 40.0, "improvement = {}", ck / dck);
    }

    #[test]
    fn fail_prob_scales_linearly_then_clamps() {
        let p1 = AccelParams::fail_prob_from_fit(66.1, 1.0, 1e5);
        let p2 = AccelParams::fail_prob_from_fit(66.1, 1.0, 2e5);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        assert_eq!(AccelParams::fail_prob_from_fit(66.1, 1.0, 1e12), 0.5);
    }

    #[test]
    fn clean_mass_plus_fault_mass_is_one_ish() {
        let m = AccelModel::new(AccelParams::paper_accelerated());
        let clean = m.pair_all_clean();
        assert!(clean > 0.35 && clean < 0.45, "clean = {clean}");
    }
}
