//! The closed-form DUE/SDC model.
//!
//! Conventions (following §IV of the paper):
//!
//! * Rates are *per billion hours of operation* for the whole memory
//!   system.
//! * Each additional simultaneous failure inside one scrub interval
//!   contributes its FIT rate times the scrub-coincidence factor
//!   [`ReliabilityModel::SCRUB`] (10⁻⁹, the paper's constant).
//! * A DSD detection code misses a triple-chip error with probability
//!   6.9% ([`ReliabilityModel::DSD_MISS`], from Yeleswarapu & Somani);
//!   the same escape probability is applied to the first error pattern
//!   beyond any detection code's guarantee.

use crate::fit::{ThermalMapping, BASE_FIT};

/// A (DUE, SDC) rate pair, per billion hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DueSdc {
    /// Detected-but-uncorrectable error rate.
    pub due: f64,
    /// Silent data corruption rate.
    pub sdc: f64,
}

/// The analytical reliability model for one memory-system configuration.
///
/// # Example
///
/// ```
/// use dve_reliability::model::ReliabilityModel;
///
/// let m = ReliabilityModel::paper_defaults();
/// let chipkill = m.chipkill();
/// assert!((chipkill.due - 1.0e-2).abs() / 1.0e-2 < 0.02); // ≈ 10⁻²
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityModel {
    /// Chips per DIMM (9 in the paper's single-rank ECC DIMMs).
    pub chips_per_dimm: usize,
    /// DIMMs in the (non-replicated) system: 32.
    pub dimms: usize,
    /// Per-chip FIT rates within a DIMM (uniform or thermal vector).
    pub chip_fit: Vec<f64>,
}

impl ReliabilityModel {
    /// Scrub-interval coincidence factor per extra simultaneous failure.
    pub const SCRUB: f64 = 1e-9;
    /// Probability a DSD code fails to detect a 3-chip error (6.9%).
    pub const DSD_MISS: f64 = 0.069;

    /// The paper's §IV-A configuration: 32 DIMMs × 9 chips, uniform
    /// FIT = 66.1.
    pub fn paper_defaults() -> ReliabilityModel {
        ReliabilityModel {
            chips_per_dimm: 9,
            dimms: 32,
            chip_fit: vec![BASE_FIT; 9],
        }
    }

    /// The thermal variant: same geometry, FIT vector scaled by the fan
    /// gradient.
    pub fn thermal() -> ReliabilityModel {
        ReliabilityModel {
            chips_per_dimm: 9,
            dimms: 32,
            chip_fit: crate::fit::thermal_fit_vector().to_vec(),
        }
    }

    fn sum_fit(&self) -> f64 {
        self.chip_fit.iter().sum()
    }

    fn sum_fit_sq(&self) -> f64 {
        self.chip_fit.iter().map(|f| f * f).sum()
    }

    fn sum_fit_cube(&self) -> f64 {
        self.chip_fit.iter().map(|f| f * f * f).sum()
    }

    /// Ordered k-tuples of *distinct* chips failing together in one DIMM,
    /// weighted by their FITs with the scrub factor applied to all but
    /// the first: Σ_{i≠j} f_i f_j·S for k = 2, etc. For the uniform case
    /// this reduces to the paper's `9f × 8f·S × 7f·S²...` expressions.
    fn simultaneous(&self, k: usize) -> f64 {
        let n = self.chips_per_dimm as f64;
        // Uniform shortcut when all FITs equal (keeps the arithmetic
        // identical to the paper's).
        let f0 = self.chip_fit[0];
        if self.chip_fit.iter().all(|&f| (f - f0).abs() < 1e-12) {
            let mut rate = n * f0;
            for j in 1..k {
                rate *= (n - j as f64) * f0 * Self::SCRUB;
            }
            return rate;
        }
        // Non-uniform: inclusion-exclusion for ordered distinct tuples.
        match k {
            2 => {
                let s1 = self.sum_fit();
                let s2 = self.sum_fit_sq();
                (s1 * s1 - s2) * Self::SCRUB
            }
            3 => {
                let s1 = self.sum_fit();
                let s2 = self.sum_fit_sq();
                let s3 = self.sum_fit_cube();
                (s1.powi(3) - 3.0 * s2 * s1 + 2.0 * s3) * Self::SCRUB * Self::SCRUB
            }
            4 => {
                let s1 = self.sum_fit();
                let s2 = self.sum_fit_sq();
                let s3 = self.sum_fit_cube();
                let s4: f64 = self.chip_fit.iter().map(|f| f.powi(4)).sum();
                (s1.powi(4) - 6.0 * s2 * s1 * s1 + 3.0 * s2 * s2 + 8.0 * s3 * s1 - 6.0 * s4)
                    * Self::SCRUB.powi(3)
            }
            _ => panic!("simultaneous() supports k in 2..=4"),
        }
    }

    // ----- §IV-A: Chipkill vs Dvé ------------------------------------

    /// Chipkill ECC: DUE when 2 chips of one DIMM fail in a scrub
    /// interval; SDC when 3 fail and the DSD code misses (6.9%).
    pub fn chipkill(&self) -> DueSdc {
        let due = self.simultaneous(2) * self.dimms as f64;
        let sdc = self.simultaneous(3) * self.dimms as f64 * Self::DSD_MISS;
        DueSdc { due, sdc }
    }

    /// Dvé DUE: the same-position chip on the replica DIMM fails together
    /// with a data chip — `[n·f × 1·f·S] × dimms × 2` in the uniform
    /// case. `mapping` selects which replica chip pairs with each data
    /// chip (thermal risk-inverse lowers the product).
    pub fn dve_due(&self, mapping: ThermalMapping) -> f64 {
        let n = self.chips_per_dimm;
        let mut pair_sum = 0.0;
        for i in 0..n {
            pair_sum += self.chip_fit[i] * self.chip_fit[mapping.pair(i, n)];
        }
        pair_sum * Self::SCRUB * self.dimms as f64 * 2.0
    }

    /// Dvé+DSD: DUE from replica pairing; SDC doubled versus Chipkill
    /// (twice the DIMM population can corrupt silently).
    pub fn dve_dsd(&self, mapping: ThermalMapping) -> DueSdc {
        DueSdc {
            due: self.dve_due(mapping),
            sdc: self.chipkill().sdc * 2.0,
        }
    }

    /// Dvé+TSD: same DUE; SDC requires ≥4 chips of one DIMM failing
    /// simultaneously *and* escaping the stronger code (same 6.9%
    /// residual escape factor applied to the first uncovered pattern).
    pub fn dve_tsd(&self, mapping: ThermalMapping) -> DueSdc {
        let sdc = self.simultaneous(4) * self.dimms as f64 * 2.0 * Self::DSD_MISS;
        DueSdc {
            due: self.dve_due(mapping),
            sdc,
        }
    }

    // ----- N-way and two-tier placements ------------------------------

    /// Dvé generalized to `replicas` total copies of every page
    /// (round-robin N-way placement): a DUE needs the same-position
    /// chip on *every* other copy's DIMM to fail within the same scrub
    /// interval, so each extra copy multiplies the rate by another
    /// `f·S`. The DIMM-population factor scales with the copy count —
    /// any copy's detection can initiate the coincidence. Reduces
    /// exactly to [`ReliabilityModel::dve_due`] at `replicas == 2`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas < 2` (a single copy is baseline, not Dvé).
    pub fn dve_nway_due(&self, replicas: usize, mapping: ThermalMapping) -> f64 {
        assert!(replicas >= 2, "replication needs at least two copies");
        let n = self.chips_per_dimm;
        let mut sum = 0.0;
        for i in 0..n {
            let mut term = self.chip_fit[i];
            for _ in 1..replicas {
                term *= self.chip_fit[mapping.pair(i, n)] * Self::SCRUB;
            }
            sum += term;
        }
        sum * self.dimms as f64 * replicas as f64
    }

    /// N-way Dvé over a TSD detection code: DUE from the all-copies
    /// coincidence; SDC scales with the replicated DIMM population
    /// (every copy can corrupt silently past the code's guarantee).
    pub fn dve_nway_tsd(&self, replicas: usize, mapping: ThermalMapping) -> DueSdc {
        DueSdc {
            due: self.dve_nway_due(replicas, mapping),
            sdc: self.simultaneous(4) * (self.dimms * replicas) as f64 * Self::DSD_MISS,
        }
    }

    /// Two-tier replication (Volos & Sazeides): the full replica lives
    /// in a far-memory pool whose media sits behind an extra
    /// controller/retimer hop, modeled as a FIT multiplier
    /// `far_fit_scale` on the far chips (≥ 1: serialized links and
    /// denser media fail more, not less). The on-socket compressed
    /// copy is recovery-only and carries no coherent-read exposure.
    /// At `far_fit_scale == 1.0` this is exactly
    /// [`ReliabilityModel::dve_tsd`] with the identity mapping.
    pub fn two_tier_tsd(&self, far_fit_scale: f64) -> DueSdc {
        assert!(far_fit_scale >= 1.0, "far media cannot beat local media");
        let mut pair = 0.0;
        for &f in &self.chip_fit {
            pair += f * f * far_fit_scale * Self::SCRUB;
        }
        let due = pair * self.dimms as f64 * 2.0;
        // SDC: ≥4 simultaneous failures escaping the code, over the
        // socket DIMMs plus the (scaled) far pool.
        let sdc = self.simultaneous(4) * self.dimms as f64 * (1.0 + far_fit_scale) * Self::DSD_MISS;
        DueSdc { due, sdc }
    }

    /// Intel-mirroring-like scheme with a TSD code: replicas exist but on
    /// the *same* board position (identity thermal mapping) — §IV-C's
    /// comparison point.
    pub fn intel_tsd(&self) -> DueSdc {
        let sdc = self.simultaneous(4) * self.dimms as f64 * 2.0 * Self::DSD_MISS;
        DueSdc {
            due: self.dve_due(ThermalMapping::Identity),
            sdc,
        }
    }

    // ----- §IV-B: IBM RAIM vs Dvé+Chipkill ----------------------------

    /// IBM RAIM: 5 channels × 8 Chipkill DIMMs, RAID-3; DUE when two
    /// corresponding Chipkill DIMMs on 2 of the 5 channels fail together:
    /// `[(DUE_ck × 8) × 4 × (DUE_ck × 1)·S] × 5`.
    pub fn raim(&self) -> DueSdc {
        let per_dimm_due = self.simultaneous(2); // one Chipkill DIMM's DUE
        let due = (per_dimm_due * 8.0) * 4.0 * (per_dimm_due * Self::SCRUB) * 5.0;
        // SDC limited by Chipkill ECC detection over all 40 DIMMs.
        let sdc = self.simultaneous(3) * 40.0 * Self::DSD_MISS;
        DueSdc { due, sdc }
    }

    /// Dvé layered over Chipkill DIMMs (64 DIMMs total): DUE needs 2
    /// pairs of same-position chips on the two replica DIMMs —
    /// `[n·f × (n-1)·f·S × 1·f·S × 1·f·S] × dimms × 2`.
    pub fn dve_chipkill(&self) -> DueSdc {
        let n = self.chips_per_dimm as f64;
        let f = self.chip_fit[0];
        let due = n
            * f
            * (n - 1.0)
            * f
            * Self::SCRUB
            * f
            * Self::SCRUB
            * f
            * Self::SCRUB
            * self.dimms as f64
            * 2.0;
        // SDC over 64 DIMMs of Chipkill detection.
        let sdc = self.simultaneous(3) * 64.0 * Self::DSD_MISS;
        DueSdc { due, sdc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() / expected.abs() < tol,
            "actual {actual:e}, expected {expected:e}"
        );
    }

    #[test]
    fn chipkill_matches_paper() {
        let m = ReliabilityModel::paper_defaults();
        let r = m.chipkill();
        close(r.due, 1.0e-2, 0.02); // paper: ≈10⁻²
        close(r.sdc, 3.1e-10, 0.05); // paper: 3.1×10⁻¹⁰
    }

    #[test]
    fn dve_dsd_matches_paper() {
        let m = ReliabilityModel::paper_defaults();
        let r = m.dve_dsd(ThermalMapping::Identity);
        close(r.due, 2.5e-3, 0.02); // paper: 2.5×10⁻³ (4× better DUE)
        close(r.sdc, 6.3e-10, 0.05); // paper: 6.3×10⁻¹⁰ (0.49×)
        let ck = m.chipkill();
        close(ck.due / r.due, 4.0, 0.01); // the 4× improvement
    }

    #[test]
    fn dve_tsd_matches_paper() {
        let m = ReliabilityModel::paper_defaults();
        let r = m.dve_tsd(ThermalMapping::Identity);
        close(r.due, 2.5e-3, 0.02);
        close(r.sdc, 2.5e-16, 0.05); // paper: 2.5×10⁻¹⁶ (~10⁶× better)
        let ck = m.chipkill();
        assert!(ck.sdc / r.sdc > 1e5, "about six orders of magnitude");
    }

    #[test]
    fn raim_matches_paper() {
        let m = ReliabilityModel::paper_defaults();
        let r = m.raim();
        close(r.due, 1.5e-14, 0.06); // paper: 1.5×10⁻¹⁴
        close(r.sdc, 4.0e-10, 0.05); // paper: 4.0×10⁻¹⁰
    }

    #[test]
    fn dve_chipkill_matches_paper() {
        let m = ReliabilityModel::paper_defaults();
        let r = m.dve_chipkill();
        close(r.due, 8.7e-17, 0.05); // paper: 8.7×10⁻¹⁷
        close(r.sdc, 6.3e-10, 0.05); // paper: 6.3×10⁻¹⁰
        let raim = m.raim();
        close(raim.due / r.due, 172.4, 0.06); // the 172× improvement
    }

    #[test]
    fn thermal_chipkill_matches_paper() {
        let m = ReliabilityModel::thermal();
        let r = m.chipkill();
        close(r.due, 2.2e-2, 0.03); // paper: 2.2×10⁻²
        close(r.sdc, 1.0e-9, 0.07); // paper: 1.0×10⁻⁹
    }

    #[test]
    fn thermal_dve_vs_intel_matches_paper() {
        let m = ReliabilityModel::thermal();
        let dve = m.dve_tsd(ThermalMapping::RiskInverse);
        let intel = m.intel_tsd();
        close(dve.due, 5.3e-3, 0.02); // paper: 5.3×10⁻³
        close(intel.due, 5.9e-3, 0.02); // paper: 5.9×10⁻³
                                        // Dvé's risk-inverse mapping lowers DUE by ≈11% vs Intel.
        let gain = intel.due / dve.due;
        assert!(gain > 1.08 && gain < 1.12, "gain = {gain}");
        // Both reach the ~10⁶× SDC improvement with TSD. (The paper
        // rounds to 1.1×10⁻¹⁵; our exact inclusion-exclusion over
        // ordered distinct 4-tuples gives 1.23×10⁻¹⁵.)
        close(dve.sdc, 1.1e-15, 0.15);
        close(intel.sdc, 1.1e-15, 0.15);
        // 4.15× over the thermal Chipkill baseline.
        let ck = m.chipkill();
        close(ck.due / dve.due, 4.15, 0.02);
        // And Intel's improvement is only ~3.72× (the paper computes it
        // from rounded table entries; the exact ratio is 3.80).
        close(ck.due / intel.due, 3.72, 0.03);
    }

    #[test]
    fn risk_inverse_is_optimal_pairing() {
        // Rearrangement inequality: pairing ascending with descending
        // minimizes the sum of products among all *symmetric* pairings.
        let m = ReliabilityModel::thermal();
        let inv = m.dve_due(ThermalMapping::RiskInverse);
        let ident = m.dve_due(ThermalMapping::Identity);
        assert!(inv < ident);
    }

    #[test]
    fn uniform_and_general_formulas_agree() {
        // The inclusion-exclusion path must reduce to the uniform-FIT
        // shortcut when given an (almost) uniform vector.
        let uniform = ReliabilityModel::paper_defaults();
        let mut nearly = uniform.clone();
        nearly.chip_fit[0] += 1e-6; // force the general path
        for k in 2..=4 {
            let a = uniform.simultaneous(k);
            let b = nearly.simultaneous(k);
            assert!((a - b).abs() / a < 1e-4, "k={k}: {a:e} vs {b:e}");
        }
    }

    #[test]
    #[should_panic(expected = "supports k")]
    fn simultaneous_bounds() {
        ReliabilityModel::thermal().simultaneous(5);
    }

    #[test]
    fn nway_reduces_to_the_mirror_pair() {
        for m in [
            ReliabilityModel::paper_defaults(),
            ReliabilityModel::thermal(),
        ] {
            for mapping in [ThermalMapping::Identity, ThermalMapping::RiskInverse] {
                let pair = m.dve_due(mapping);
                let two = m.dve_nway_due(2, mapping);
                assert!((pair - two).abs() / pair < 1e-12, "{pair:e} vs {two:e}");
            }
            let tsd2 = m.dve_nway_tsd(2, ThermalMapping::Identity);
            let tsd = m.dve_tsd(ThermalMapping::Identity);
            close(tsd2.due, tsd.due, 1e-12);
            close(tsd2.sdc, tsd.sdc, 1e-12);
        }
    }

    #[test]
    fn each_extra_replica_buys_orders_of_magnitude() {
        let m = ReliabilityModel::paper_defaults();
        let d2 = m.dve_nway_due(2, ThermalMapping::Identity);
        let d3 = m.dve_nway_due(3, ThermalMapping::Identity);
        let d4 = m.dve_nway_due(4, ThermalMapping::Identity);
        assert!(d3 < d2 && d4 < d3);
        // Each extra copy multiplies the coincidence by another f·S:
        // with f ≈ 66 FIT and S = 1e-9 h⁻¹ that is ~1e7× per replica
        // (modulo the r/(r+1) population factor) — well over 1e5.
        assert!(d2 / d3 > 1e5, "2→3 gain = {:e}", d2 / d3);
        assert!(d3 / d4 > 1e5, "3→4 gain = {:e}", d3 / d4);
    }

    #[test]
    #[should_panic(expected = "at least two copies")]
    fn nway_rejects_a_single_copy() {
        ReliabilityModel::paper_defaults().dve_nway_due(1, ThermalMapping::Identity);
    }

    #[test]
    fn two_tier_brackets_the_mirror_pair() {
        let m = ReliabilityModel::paper_defaults();
        let mirror = m.dve_tsd(ThermalMapping::Identity);
        // Far media as good as local: exactly the mirror pair.
        let equal = m.two_tier_tsd(1.0);
        close(equal.due, mirror.due, 1e-12);
        close(equal.sdc, mirror.sdc, 1e-12);
        // A 3× worse far pool scales DUE by exactly 3× (the pair
        // product is linear in the far FIT) yet still crushes Chipkill.
        let worse = m.two_tier_tsd(3.0);
        close(worse.due / mirror.due, 3.0, 1e-12);
        assert!(worse.due < m.chipkill().due);
        assert!(worse.sdc > mirror.sdc);
    }

    #[test]
    #[should_panic(expected = "far media")]
    fn two_tier_rejects_magic_far_media() {
        ReliabilityModel::paper_defaults().two_tier_tsd(0.5);
    }
}
