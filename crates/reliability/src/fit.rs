//! FIT rates and temperature scaling.
//!
//! The paper uses a uniform DRAM device FIT rate of 66.1 (failures per
//! billion device-hours) from Sridharan & Liberty's field study, and for
//! the thermal analysis scales it with the Arrhenius equation over the
//! 10 °C gradient between the chip nearest and farthest from the fan,
//! yielding the 9-chip vector [66.1, 74.3, ..., 131.7].

/// Uniform DRAM device FIT rate (failures / 10^9 device-hours), §IV.
pub const BASE_FIT: f64 = 66.1;

/// Boltzmann constant in eV/K.
const K_B: f64 = 8.617_333e-5;

/// Scales a FIT rate from temperature `t0_celsius` to `t1_celsius` using
/// the Arrhenius acceleration factor with activation energy `ea_ev`
/// (typical DRAM wear-out activation energies are 0.5–1.1 eV).
///
/// # Example
///
/// ```
/// use dve_reliability::fit::arrhenius_scale;
///
/// let hotter = arrhenius_scale(66.1, 45.0, 55.0, 0.6);
/// assert!(hotter > 66.1); // failure rate grows with temperature
/// ```
pub fn arrhenius_scale(fit: f64, t0_celsius: f64, t1_celsius: f64, ea_ev: f64) -> f64 {
    assert!(fit >= 0.0, "FIT must be non-negative");
    let t0 = t0_celsius + 273.15;
    let t1 = t1_celsius + 273.15;
    fit * (ea_ev / K_B * (1.0 / t0 - 1.0 / t1)).exp()
}

/// The paper's temperature-scaled per-chip FIT vector for the 9 chips of
/// a DIMM, from nearest-to-fan (coolest) to farthest (hottest):
/// `[66.1, 74.3, 82.5, 90.7, 98.9, 107.1, 115.3, 123.5, 131.7]`.
pub fn thermal_fit_vector() -> [f64; 9] {
    let mut v = [0.0; 9];
    for (i, f) in v.iter_mut().enumerate() {
        *f = BASE_FIT + 8.2 * i as f64;
    }
    v
}

/// A per-chip FIT mapping between a DIMM and its replica DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalMapping {
    /// Chip `i` replicates onto chip `i` — what Intel-style same-board
    /// mirroring is stuck with.
    Identity,
    /// Chip `i` replicates onto chip `n-1-i` — Dvé's *risk-inverse*
    /// mapping: the hottest chip's data lives on the coolest replica
    /// chip (§IV-C).
    RiskInverse,
}

impl ThermalMapping {
    /// The replica chip index paired with data chip `i` of `n`.
    pub fn pair(self, i: usize, n: usize) -> usize {
        match self {
            ThermalMapping::Identity => i,
            ThermalMapping::RiskInverse => n - 1 - i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_matches_paper() {
        let v = thermal_fit_vector();
        assert_eq!(v[0], 66.1);
        assert!((v[8] - 131.7).abs() < 1e-9);
        assert!((v[4] - 98.9).abs() < 1e-9);
        // Monotone increasing.
        for w in v.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn arrhenius_identity_at_same_temperature() {
        let f = arrhenius_scale(66.1, 50.0, 50.0, 0.6);
        assert!((f - 66.1).abs() < 1e-9);
    }

    #[test]
    fn arrhenius_monotone_in_temperature() {
        let a = arrhenius_scale(66.1, 45.0, 50.0, 0.6);
        let b = arrhenius_scale(66.1, 45.0, 55.0, 0.6);
        assert!(b > a && a > 66.1);
    }

    #[test]
    fn arrhenius_10c_roughly_doubles_with_high_ea() {
        // The classic rule of thumb: ~2x per 10 °C near 1 eV activation.
        let f = arrhenius_scale(66.1, 45.0, 55.0, 0.65);
        let ratio = f / 66.1;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn mappings() {
        assert_eq!(ThermalMapping::Identity.pair(3, 9), 3);
        assert_eq!(ThermalMapping::RiskInverse.pair(0, 9), 8);
        assert_eq!(ThermalMapping::RiskInverse.pair(4, 9), 4);
    }
}
