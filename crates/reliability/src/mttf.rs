//! From rates to operational metrics: MTTF, annualized failure
//! probability, and fleet-level expectations.
//!
//! Table I's rates are "per billion hours of operation"; an operator
//! deciding whether to flip a fleet into replicated mode (§V-D's control
//! plane) thinks in mean-time-to-failure, failures per year per thousand
//! machines, and the probability of surviving a deployment's lifetime.
//! These conversions make the §IV results directly consumable by that
//! control plane.

/// Hours in a (Julian) year.
pub const HOURS_PER_YEAR: f64 = 8766.0;

/// Mean time to failure, in hours, from a rate per 10^9 hours.
///
/// # Panics
///
/// Panics if `rate_per_1e9h` is not strictly positive.
///
/// # Example
///
/// ```
/// use dve_reliability::mttf::mttf_hours;
///
/// // Chipkill's 1e-2 DUE per 1e9 h → 1e11 hours MTTF per system.
/// assert!((mttf_hours(1e-2) - 1e11).abs() < 1.0);
/// ```
pub fn mttf_hours(rate_per_1e9h: f64) -> f64 {
    assert!(rate_per_1e9h > 0.0, "rate must be positive");
    1e9 / rate_per_1e9h
}

/// Probability of at least one event within `years`, assuming an
/// exponential failure law (constant rate).
pub fn failure_probability(rate_per_1e9h: f64, years: f64) -> f64 {
    assert!(
        rate_per_1e9h >= 0.0 && years >= 0.0,
        "non-negative inputs required"
    );
    1.0 - (-(rate_per_1e9h / 1e9) * years * HOURS_PER_YEAR).exp()
}

/// Expected events per year across a fleet of `machines`.
pub fn fleet_events_per_year(rate_per_1e9h: f64, machines: u64) -> f64 {
    rate_per_1e9h / 1e9 * HOURS_PER_YEAR * machines as f64
}

/// Operational summary for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationalSummary {
    /// Scheme name.
    pub scheme: &'static str,
    /// MTTF for detected-uncorrectable errors, hours.
    pub due_mttf_hours: f64,
    /// Probability of a DUE within a 5-year deployment.
    pub due_5yr: f64,
    /// Expected DUEs per year in a 100 000-machine fleet.
    pub fleet_dues_per_year: f64,
    /// Expected silent corruptions per year in the same fleet.
    pub fleet_sdcs_per_year: f64,
}

/// Builds operational summaries for the Table I schemes.
pub fn operational_summaries() -> Vec<OperationalSummary> {
    crate::table1::table1_rows()
        .into_iter()
        .map(|row| OperationalSummary {
            scheme: row.scheme,
            due_mttf_hours: mttf_hours(row.rates.due),
            due_5yr: failure_probability(row.rates.due, 5.0),
            fleet_dues_per_year: fleet_events_per_year(row.rates.due, 100_000),
            fleet_sdcs_per_year: fleet_events_per_year(row.rates.sdc, 100_000),
        })
        .collect()
}

/// One rung of the replication-count MTTF ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Placement label (`nway:2` … `nway:N`, `twotier`).
    pub topology: String,
    /// Total copies of every page (the far-tier scheme keeps two).
    pub replicas: usize,
    /// MTTF for detected-uncorrectable errors, hours.
    pub due_mttf_hours: f64,
    /// Expected DUEs per year in a 100 000-machine fleet.
    pub fleet_dues_per_year: f64,
    /// Expected silent corruptions per year in the same fleet.
    pub fleet_sdcs_per_year: f64,
}

/// MTTF ladder for the topology-generic placements under Dvé+TSD:
/// round-robin N-way for every replica count `2..=max_replicas`, plus
/// the two-tier far-memory scheme with its far pool `far_fit_scale`
/// times the local FIT. This is the reliability face of the §V-D
/// control plane's topology choice — the perf face is the `topology`
/// sweep harness.
pub fn topology_summaries(max_replicas: usize, far_fit_scale: f64) -> Vec<TopologySummary> {
    use crate::fit::ThermalMapping;
    let m = crate::model::ReliabilityModel::paper_defaults();
    let mut out: Vec<TopologySummary> = (2..=max_replicas)
        .map(|r| {
            let rates = m.dve_nway_tsd(r, ThermalMapping::Identity);
            TopologySummary {
                topology: format!("nway:{r}"),
                replicas: r,
                due_mttf_hours: mttf_hours(rates.due),
                fleet_dues_per_year: fleet_events_per_year(rates.due, 100_000),
                fleet_sdcs_per_year: fleet_events_per_year(rates.sdc, 100_000),
            }
        })
        .collect();
    let tt = m.two_tier_tsd(far_fit_scale);
    out.push(TopologySummary {
        topology: "twotier".to_string(),
        replicas: 2,
        due_mttf_hours: mttf_hours(tt.due),
        fleet_dues_per_year: fleet_events_per_year(tt.due, 100_000),
        fleet_sdcs_per_year: fleet_events_per_year(tt.sdc, 100_000),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttf_inverts_rate() {
        assert!((mttf_hours(1.0) - 1e9).abs() < 1e-3);
        assert!((mttf_hours(2.0) - 5e8).abs() < 1e-3);
    }

    #[test]
    fn failure_probability_limits() {
        assert_eq!(failure_probability(0.0, 10.0), 0.0);
        assert!(failure_probability(1e9, 1.0) > 0.999);
        // Small-rate linearization: p ≈ rate × time.
        let p = failure_probability(1e-2, 1.0);
        let linear = 1e-2 / 1e9 * HOURS_PER_YEAR;
        assert!((p - linear).abs() / linear < 1e-3);
    }

    #[test]
    fn fleet_math_scales_linearly() {
        let one = fleet_events_per_year(1e-2, 1);
        let many = fleet_events_per_year(1e-2, 100_000);
        assert!((many / one - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn summaries_preserve_the_paper_ordering() {
        let s = operational_summaries();
        let get = |n: &str| s.iter().find(|x| x.scheme == n).unwrap();
        // Dvé's 4x DUE advantage shows up as 4x MTTF.
        let ck = get("Chipkill");
        let dve = get("Dve+TSD");
        assert!((dve.due_mttf_hours / ck.due_mttf_hours - 4.0).abs() < 0.05);
        // A 100k-machine Chipkill fleet sees ~0.009 DUEs/year.
        assert!(ck.fleet_dues_per_year > 0.008 && ck.fleet_dues_per_year < 0.010);
        assert!(dve.fleet_dues_per_year < ck.fleet_dues_per_year / 3.9);
        // SDCs are vanishingly rare under TSD.
        assert!(dve.fleet_sdcs_per_year < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_has_no_mttf() {
        mttf_hours(0.0);
    }

    #[test]
    fn topology_ladder_is_monotone_and_anchored() {
        let ladder = topology_summaries(4, 3.0);
        let get = |n: &str| ladder.iter().find(|x| x.topology == n).unwrap();
        // nway:2 is the classic mirror pair: same MTTF as Dve+TSD.
        let table = operational_summaries();
        let dve = table.iter().find(|x| x.scheme == "Dve+TSD").unwrap();
        let pair = get("nway:2");
        assert!((pair.due_mttf_hours / dve.due_mttf_hours - 1.0).abs() < 1e-9);
        // Every extra replica multiplies MTTF — strictly monotone.
        assert!(get("nway:3").due_mttf_hours > pair.due_mttf_hours * 1e5);
        assert!(get("nway:4").due_mttf_hours > get("nway:3").due_mttf_hours * 1e5);
        // The two-tier far pool (3× FIT) sits between the pair and
        // nway:3: worse than local mirroring, far better than Chipkill.
        let tt = get("twotier");
        assert!(tt.due_mttf_hours < pair.due_mttf_hours);
        let ck = table.iter().find(|x| x.scheme == "Chipkill").unwrap();
        assert!(tt.due_mttf_hours > ck.due_mttf_hours);
        // SDC exposure grows with the replicated population.
        assert!(get("nway:4").fleet_sdcs_per_year > pair.fleet_sdcs_per_year);
    }
}
