//! # dve-reliability — the analytical DUE/SDC model of §IV
//!
//! Reproduces every number in Table I of the paper from first principles:
//! detected-but-uncorrectable (DUE) and silent-data-corruption (SDC)
//! rates per billion hours of operation, for
//!
//! * Chipkill ECC (RS(18,16) SSC-DSD, 32 single-rank DIMMs × 9 chips),
//! * Dvé+DSD and Dvé+TSD (replicas on 2× the DIMMs, detection-only
//!   codes),
//! * IBM RAIM (RAID-3 over 5 channels of Chipkill DIMMs),
//! * Dvé+Chipkill,
//! * and the temperature-scaled variants (Arrhenius-derived per-chip FIT
//!   gradient) including Dvé's thermal risk-inverse mapping and the
//!   Intel-mirroring comparison.
//!
//! The model follows the paper's arithmetic exactly: a scheme suffers a
//! DUE when the specific combination of component failures it cannot
//! correct happens within one scrub interval (the `1e-9` coincidence
//! factor per additional simultaneous failure), and an SDC when enough
//! failures align that the detection code misses them (6.9% escape
//! probability for a DSD code facing a triple-chip failure, per
//! Yeleswarapu & Somani).

pub mod accel;
pub mod capacity;
pub mod fit;
pub mod model;
pub mod mttf;
pub mod table1;

pub use accel::{binomial_tail_ge, AccelModel, AccelParams, WindowProbs};
pub use fit::{arrhenius_scale, thermal_fit_vector, BASE_FIT};
pub use model::{DueSdc, ReliabilityModel};
pub use table1::{table1_rows, Table1Row};
