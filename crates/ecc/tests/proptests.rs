//! Property-based tests for the error-control codes.

use dve_ecc::code::{CheckOutcome, CorrectionCode, DetectionCode};
use dve_ecc::crc::{Crc16Ccitt, Crc32, Crc8Atm};
use dve_ecc::gf::{Gf16, Gf256};
use dve_ecc::hamming::SecDed;
use dve_ecc::inject::{FaultInjector, FaultKind};
use dve_ecc::rs::{DecodePolicy, Rs};
use dve_ecc::rs16::Rs16Detect;
use proptest::prelude::*;

proptest! {
    // ---- Galois fields ------------------------------------------------

    #[test]
    fn gf256_field_axioms(a in 0u8.., b in 0u8.., c in 0u8..) {
        prop_assert_eq!(Gf256::mul(a, b), Gf256::mul(b, a));
        prop_assert_eq!(
            Gf256::mul(Gf256::mul(a, b), c),
            Gf256::mul(a, Gf256::mul(b, c))
        );
        prop_assert_eq!(
            Gf256::mul(a, Gf256::add(b, c)),
            Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c))
        );
    }

    #[test]
    fn gf256_division_inverts_multiplication(a in 0u8.., b in 1u8..) {
        prop_assert_eq!(Gf256::div(Gf256::mul(a, b), b), a);
    }

    #[test]
    fn gf16_field_axioms(a in 0u16.., b in 0u16.., c in 0u16..) {
        prop_assert_eq!(Gf16::mul(a, b), Gf16::mul(b, a));
        prop_assert_eq!(Gf16::mul(Gf16::mul(a, b), c), Gf16::mul(a, Gf16::mul(b, c)));
        prop_assert_eq!(
            Gf16::mul(a, Gf16::add(b, c)),
            Gf16::add(Gf16::mul(a, b), Gf16::mul(a, c))
        );
    }

    #[test]
    fn gf16_inverse(a in 1u16..) {
        prop_assert_eq!(Gf16::mul(a, Gf16::inv(a)), 1);
    }

    // ---- Reed–Solomon -------------------------------------------------

    #[test]
    fn rs_clean_roundtrip(data in proptest::collection::vec(any::<u8>(), 16)) {
        let rs = Rs::chipkill();
        let cw = rs.encode(&data);
        prop_assert_eq!(rs.check(&cw), CheckOutcome::NoError);
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn rs_corrects_any_single_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        let rs = Rs::chipkill();
        let mut cw = rs.encode(&data);
        cw[pos] ^= err;
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn rs_detect_only_never_mutates(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        let rs = Rs::dsd();
        let mut cw = rs.encode(&data);
        cw[pos] ^= err;
        let before = cw.clone();
        let outcome = rs.check_and_repair(&mut cw);
        let detected = matches!(outcome, CheckOutcome::DetectedUncorrectable { .. });
        prop_assert!(detected);
        prop_assert_eq!(cw, before);
    }

    #[test]
    fn rs_t2_corrects_any_double_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        p1 in 0usize..20,
        p2 in 0usize..20,
        e1 in 1u8..,
        e2 in 1u8..,
    ) {
        prop_assume!(p1 != p2);
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let mut cw = rs.encode(&data);
        cw[p1] ^= e1;
        cw[p2] ^= e2;
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 2 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn tsd_detects_up_to_three_symbols(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..35, 1..=3),
        err in 1u16..,
    ) {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&data);
        let mut bad = cw.clone();
        for &p in &positions {
            let cur = u16::from_be_bytes([bad[2 * p], bad[2 * p + 1]]) ^ err;
            bad[2 * p..2 * p + 2].copy_from_slice(&cur.to_be_bytes());
        }
        prop_assert!(!tsd.check(&bad).is_good());
    }

    // ---- Fault injector driving the codes (campaign hooks) ------------

    #[test]
    fn injected_single_symbol_is_always_corrected(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        seed in any::<u64>(),
    ) {
        // The campaign corrupts exactly the failed chip's symbol through
        // inject_symbols_at; RS(18,16) must repair any such error.
        let rs = Rs::chipkill();
        let mut cw = rs.encode(&data);
        let mut inj = FaultInjector::new(seed);
        let touched = inj.inject_symbols_at(&mut cw, &[pos]);
        prop_assert_eq!(touched, vec![pos]);
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn injected_double_symbol_is_never_silent(
        data in proptest::collection::vec(any::<u8>(), 16),
        positions in proptest::collection::btree_set(0usize..18, 2),
        seed in any::<u64>(),
    ) {
        // Two distinct symbol errors can never zero both syndromes
        // (S₀ = S₁ = 0 would force the two error locators to coincide),
        // so detection of doubles is guaranteed — even though the
        // *correcting* decoder may miscorrect them (~7%, the SDC channel
        // the campaign measures).
        let rs = Rs::chipkill();
        let cw = rs.encode(&data);
        let mut bad = cw.clone();
        let positions: Vec<usize> = positions.into_iter().collect();
        let mut inj = FaultInjector::new(seed);
        inj.inject_symbols_at(&mut bad, &positions);
        prop_assert_ne!(rs.check(&bad), CheckOutcome::NoError);
    }

    #[test]
    fn dsd_detect_only_never_repairs_injected_faults(
        data in proptest::collection::vec(any::<u8>(), 16),
        chips in 1usize..=4,
        seed in any::<u64>(),
    ) {
        // Under Dvé the local code relinquishes correction: whatever the
        // injector throws at a DSD codeword, the outcome is detection
        // (never Corrected) and the codeword is left untouched for the
        // replica-recovery path.
        let dsd = Rs::dsd();
        let mut cw = dsd.encode(&data);
        let mut inj = FaultInjector::new(seed);
        inj.inject(&mut cw, FaultKind::MultiChip { count: chips });
        let before = cw.clone();
        let outcome = dsd.check_and_repair(&mut cw);
        prop_assert!(!matches!(outcome, CheckOutcome::Corrected { .. }));
        prop_assert_eq!(cw, before);
    }

    #[test]
    fn tsd_detects_injected_faults_up_to_three_symbols(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..35, 1..=3),
        seed in any::<u64>(),
    ) {
        // The TSD guarantee the paper leans on (§IV-B): any ≤3 corrupted
        // 16-bit symbols are detected.
        let tsd = Rs16Detect::tsd(64);
        let mut cw = tsd.encode(&data);
        let positions: Vec<usize> = positions.into_iter().collect();
        let mut inj = FaultInjector::new(seed);
        let touched = inj.inject_symbols16_at(&mut cw, &positions);
        prop_assert!(!touched.is_empty());
        prop_assert!(!tsd.check(&cw).is_good());
    }

    #[test]
    fn injector_is_deterministic_and_reports_touched_bytes(
        len in 8usize..64,
        seed in any::<u64>(),
        chips in 1usize..=4,
    ) {
        let kind = FaultKind::MultiChip { count: chips };
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        let ta = FaultInjector::new(seed).inject(&mut a, kind);
        let tb = FaultInjector::new(seed).inject(&mut b, kind);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&ta, &tb);
        // Every touched byte actually changed; no untouched byte did.
        for (i, &byte) in a.iter().enumerate() {
            prop_assert_eq!(byte != 0, ta.contains(&i));
        }
    }

    // ---- SEC-DED ------------------------------------------------------

    #[test]
    fn secded_corrects_single_bits(word in any::<[u8; 8]>(), bit in 0usize..72) {
        let code = SecDed::new();
        let mut cw = code.encode(&word);
        cw[bit / 8] ^= 1 << (bit % 8);
        let outcome = code.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(code.extract_data(&cw), word.to_vec());
    }

    #[test]
    fn secded_detects_double_bits(word in any::<[u8; 8]>(), a in 0usize..72, b in 0usize..72) {
        prop_assume!(a != b);
        let code = SecDed::new();
        let mut cw = code.encode(&word);
        cw[a / 8] ^= 1 << (a % 8);
        cw[b / 8] ^= 1 << (b % 8);
        let detected =
            matches!(code.check(&cw), CheckOutcome::DetectedUncorrectable { .. });
        prop_assert!(detected);
    }

    // ---- CRC ------------------------------------------------------------

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in any::<usize>(),
    ) {
        let bit = bit % (data.len() * 8);
        let c8 = Crc8Atm::checksum(&data);
        let c16 = Crc16Ccitt::checksum(&data);
        let c32 = Crc32::checksum(&data);
        let mut bad = data.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!Crc8Atm::verify(&bad, c8));
        prop_assert!(!Crc16Ccitt::verify(&bad, c16));
        prop_assert!(!Crc32::verify(&bad, c32));
    }
}
