//! Property-based tests for the error-control codes.

use dve_ecc::code::{CheckOutcome, CorrectionCode, DetectionCode};
use dve_ecc::crc::{Crc16Ccitt, Crc32, Crc8Atm};
use dve_ecc::gf::{Gf16, Gf256};
use dve_ecc::hamming::SecDed;
use dve_ecc::rs::{DecodePolicy, Rs};
use dve_ecc::rs16::Rs16Detect;
use proptest::prelude::*;

proptest! {
    // ---- Galois fields ------------------------------------------------

    #[test]
    fn gf256_field_axioms(a in 0u8.., b in 0u8.., c in 0u8..) {
        prop_assert_eq!(Gf256::mul(a, b), Gf256::mul(b, a));
        prop_assert_eq!(
            Gf256::mul(Gf256::mul(a, b), c),
            Gf256::mul(a, Gf256::mul(b, c))
        );
        prop_assert_eq!(
            Gf256::mul(a, Gf256::add(b, c)),
            Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c))
        );
    }

    #[test]
    fn gf256_division_inverts_multiplication(a in 0u8.., b in 1u8..) {
        prop_assert_eq!(Gf256::div(Gf256::mul(a, b), b), a);
    }

    #[test]
    fn gf16_field_axioms(a in 0u16.., b in 0u16.., c in 0u16..) {
        prop_assert_eq!(Gf16::mul(a, b), Gf16::mul(b, a));
        prop_assert_eq!(Gf16::mul(Gf16::mul(a, b), c), Gf16::mul(a, Gf16::mul(b, c)));
        prop_assert_eq!(
            Gf16::mul(a, Gf16::add(b, c)),
            Gf16::add(Gf16::mul(a, b), Gf16::mul(a, c))
        );
    }

    #[test]
    fn gf16_inverse(a in 1u16..) {
        prop_assert_eq!(Gf16::mul(a, Gf16::inv(a)), 1);
    }

    // ---- Reed–Solomon -------------------------------------------------

    #[test]
    fn rs_clean_roundtrip(data in proptest::collection::vec(any::<u8>(), 16)) {
        let rs = Rs::chipkill();
        let cw = rs.encode(&data);
        prop_assert_eq!(rs.check(&cw), CheckOutcome::NoError);
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn rs_corrects_any_single_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        let rs = Rs::chipkill();
        let mut cw = rs.encode(&data);
        cw[pos] ^= err;
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn rs_detect_only_never_mutates(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        let rs = Rs::dsd();
        let mut cw = rs.encode(&data);
        cw[pos] ^= err;
        let before = cw.clone();
        let outcome = rs.check_and_repair(&mut cw);
        let detected = matches!(outcome, CheckOutcome::DetectedUncorrectable { .. });
        prop_assert!(detected);
        prop_assert_eq!(cw, before);
    }

    #[test]
    fn rs_t2_corrects_any_double_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        p1 in 0usize..20,
        p2 in 0usize..20,
        e1 in 1u8..,
        e2 in 1u8..,
    ) {
        prop_assume!(p1 != p2);
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let mut cw = rs.encode(&data);
        cw[p1] ^= e1;
        cw[p2] ^= e2;
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 2 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn tsd_detects_up_to_three_symbols(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..35, 1..=3),
        err in 1u16..,
    ) {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&data);
        let mut bad = cw.clone();
        for &p in &positions {
            let cur = u16::from_be_bytes([bad[2 * p], bad[2 * p + 1]]) ^ err;
            bad[2 * p..2 * p + 2].copy_from_slice(&cur.to_be_bytes());
        }
        prop_assert!(!tsd.check(&bad).is_good());
    }

    // ---- SEC-DED ------------------------------------------------------

    #[test]
    fn secded_corrects_single_bits(word in any::<[u8; 8]>(), bit in 0usize..72) {
        let code = SecDed::new();
        let mut cw = code.encode(&word);
        cw[bit / 8] ^= 1 << (bit % 8);
        let outcome = code.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(code.extract_data(&cw), word.to_vec());
    }

    #[test]
    fn secded_detects_double_bits(word in any::<[u8; 8]>(), a in 0usize..72, b in 0usize..72) {
        prop_assume!(a != b);
        let code = SecDed::new();
        let mut cw = code.encode(&word);
        cw[a / 8] ^= 1 << (a % 8);
        cw[b / 8] ^= 1 << (b % 8);
        let detected =
            matches!(code.check(&cw), CheckOutcome::DetectedUncorrectable { .. });
        prop_assert!(detected);
    }

    // ---- CRC ------------------------------------------------------------

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in any::<usize>(),
    ) {
        let bit = bit % (data.len() * 8);
        let c8 = Crc8Atm::checksum(&data);
        let c16 = Crc16Ccitt::checksum(&data);
        let c32 = Crc32::checksum(&data);
        let mut bad = data.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!Crc8Atm::verify(&bad, c8));
        prop_assert!(!Crc16Ccitt::verify(&bad, c16));
        prop_assert!(!Crc32::verify(&bad, c32));
    }
}
