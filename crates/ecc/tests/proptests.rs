//! Property-based tests for the error-control codes.

use dve_ecc::code::{CheckOutcome, CorrectionCode, DetectionCode};
use dve_ecc::crc::{Crc16Ccitt, Crc32, Crc8Atm};
use dve_ecc::gf::{reference, Gf16, Gf256};
use dve_ecc::hamming::SecDed;
use dve_ecc::inject::{FaultInjector, FaultKind};
use dve_ecc::rs::{DecodePolicy, Rs};
use dve_ecc::rs16::Rs16Detect;
use proptest::prelude::*;

proptest! {
    // ---- Galois fields ------------------------------------------------

    #[test]
    fn gf256_field_axioms(a in 0u8.., b in 0u8.., c in 0u8..) {
        prop_assert_eq!(Gf256::mul(a, b), Gf256::mul(b, a));
        prop_assert_eq!(
            Gf256::mul(Gf256::mul(a, b), c),
            Gf256::mul(a, Gf256::mul(b, c))
        );
        prop_assert_eq!(
            Gf256::mul(a, Gf256::add(b, c)),
            Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c))
        );
    }

    #[test]
    fn gf256_division_inverts_multiplication(a in 0u8.., b in 1u8..) {
        prop_assert_eq!(Gf256::div(Gf256::mul(a, b), b), a);
    }

    #[test]
    fn gf16_field_axioms(a in 0u16.., b in 0u16.., c in 0u16..) {
        prop_assert_eq!(Gf16::mul(a, b), Gf16::mul(b, a));
        prop_assert_eq!(Gf16::mul(Gf16::mul(a, b), c), Gf16::mul(a, Gf16::mul(b, c)));
        prop_assert_eq!(
            Gf16::mul(a, Gf16::add(b, c)),
            Gf16::add(Gf16::mul(a, b), Gf16::mul(a, c))
        );
    }

    #[test]
    fn gf16_inverse(a in 1u16..) {
        prop_assert_eq!(Gf16::mul(a, Gf16::inv(a)), 1);
    }

    // ---- Table-driven kernels vs the shift-and-add oracle -------------
    //
    // The hot path multiplies through 384 KiB log/antilog tables; the
    // `reference` module keeps the branch-per-bit schoolbook form. These
    // properties pin the two implementations together on random inputs
    // (the build also runs exhaustive sweeps for GF(2^8) in unit tests,
    // but GF(2^16)×GF(2^16) is too large to sweep, hence sampling here).

    #[test]
    fn gf256_table_mul_matches_reference(a in 0u8.., b in 0u8..) {
        prop_assert_eq!(Gf256::mul(a, b), reference::gf256_mul(a, b));
    }

    #[test]
    fn gf16_table_mul_matches_reference(a in 0u16.., b in 0u16..) {
        prop_assert_eq!(Gf16::mul(a, b), reference::gf16_mul(a, b));
    }

    #[test]
    fn gf16_table_pow_and_inv_match_reference(a in 1u16.., n in 0u32..200_000) {
        prop_assert_eq!(Gf16::pow(a, n), reference::gf16_pow(a, n));
        prop_assert_eq!(Gf16::inv(a), reference::gf16_inv(a));
    }

    #[test]
    fn gf_exp_sum_matches_mul(a in 1u8.., b in 1u8.., x in 1u16.., y in 1u16..) {
        // exp_sum fuses log(a)+log(b) lookups on the shared-log hot path
        // of the LFSR encoders; it must agree with plain table mul.
        prop_assert_eq!(Gf256::exp_sum(Gf256::log(a), Gf256::log(b)), Gf256::mul(a, b));
        prop_assert_eq!(Gf16::exp_sum(Gf16::log(x), Gf16::log(y)), Gf16::mul(x, y));
    }

    #[test]
    fn gf256_slice_kernels_match_scalar(
        acc in proptest::collection::vec(any::<u8>(), 1..80),
        src_seed in any::<u64>(),
        c in 0u8..,
    ) {
        let src: Vec<u8> = acc
            .iter()
            .enumerate()
            .map(|(i, _)| (src_seed.rotate_left(i as u32) & 0xFF) as u8)
            .collect();
        let mut fast = acc.clone();
        Gf256::fma_slice(&mut fast, &src, c);
        let slow: Vec<u8> = acc
            .iter()
            .zip(&src)
            .map(|(&a, &s)| a ^ reference::gf256_mul(s, c))
            .collect();
        prop_assert_eq!(&fast, &slow);

        let mut fast2 = acc.clone();
        Gf256::mul_slice_assign(&mut fast2, c);
        let slow2: Vec<u8> = acc.iter().map(|&a| reference::gf256_mul(a, c)).collect();
        prop_assert_eq!(&fast2, &slow2);
    }

    #[test]
    fn gf16_slice_kernels_match_scalar(
        buf in proptest::collection::vec(any::<u16>(), 1..48),
        c in 0u16..,
    ) {
        let mut fast = buf.clone();
        Gf16::mul_slice_assign(&mut fast, c);
        let slow: Vec<u16> = buf.iter().map(|&a| reference::gf16_mul(a, c)).collect();
        prop_assert_eq!(&fast, &slow);
    }

    // ---- Allocation-free hot paths vs the allocating compat API -------

    #[test]
    fn rs_encode_into_matches_encode(
        data in proptest::collection::vec(any::<u8>(), 16),
    ) {
        // chipkill (nsym = 2) takes the precomputed-log two-tap LFSR
        // fast path; the 4-check-symbol code exercises the generic loop.
        for rs in [Rs::chipkill(), Rs::dsd(), Rs::new(20, 16, DecodePolicy::Correct)] {
            let mut fast = vec![0u8; rs.codeword_len()];
            rs.encode_into(&data, &mut fast);
            prop_assert_eq!(&fast, &rs.encode(&data));
        }
    }

    #[test]
    fn rs_decode_in_place_matches_check_and_repair(
        data in proptest::collection::vec(any::<u8>(), 16),
        p1 in 0usize..18,
        p2 in 0usize..18,
        e1 in 0u8..,
        e2 in 0u8..,
    ) {
        // Clean, single- and double-symbol corruptions, against both the
        // correcting (Chipkill) and detect-only (DSD) policies: the
        // scratch-reusing decode must agree with the compat API on the
        // outcome *and* on the final buffer contents.
        for rs in [Rs::chipkill(), Rs::dsd()] {
            let cw = rs.encode(&data);
            let mut a = cw.clone();
            a[p1] ^= e1;
            a[p2] ^= e2;
            let mut b = a.clone();
            let mut scratch = rs.make_scratch();
            let fast = rs.decode_in_place(&mut a, &mut scratch);
            let slow = rs.check_and_repair(&mut b);
            prop_assert_eq!(fast, slow);
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn rs_scratch_reuse_is_stateless(
        d1 in proptest::collection::vec(any::<u8>(), 16),
        d2 in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        // A scratch dirtied by a prior (corrupted) decode must not leak
        // state into the next decode.
        let rs = Rs::chipkill();
        let mut scratch = rs.make_scratch();
        let mut first = rs.encode(&d1);
        first[pos] ^= err;
        let _ = rs.decode_in_place(&mut first, &mut scratch);
        let mut second = rs.encode(&d2);
        second[pos] ^= err;
        let reused = rs.decode_in_place(&mut second, &mut scratch);
        let mut fresh_cw = rs.encode(&d2);
        fresh_cw[pos] ^= err;
        let fresh = rs.decode_in_place(&mut fresh_cw, &mut rs.make_scratch());
        prop_assert_eq!(reused, fresh);
        prop_assert_eq!(&second, &fresh_cw);
    }

    #[test]
    fn tsd_encode_into_matches_encode_and_fused_check(
        data in proptest::collection::vec(any::<u8>(), 64),
        pos in 0usize..35,
        err in 0u16..,
    ) {
        // tsd() (3 check symbols) takes the three-tap precomputed-log
        // parity path and the fully fused table-free syndrome pass; the
        // 2-check-symbol variant exercises the generic loops.
        for code in [Rs16Detect::tsd(64), Rs16Detect::new(64, 2)] {
            let mut fast = vec![0u8; code.codeword_len()];
            code.encode_into(&data, &mut fast);
            let cw = code.encode(&data);
            prop_assert_eq!(&fast, &cw);
            let mut bad = cw.clone();
            let pos = pos % (code.codeword_len() / 2);
            let sym = u16::from_be_bytes([bad[2 * pos], bad[2 * pos + 1]]) ^ err;
            bad[2 * pos..2 * pos + 2].copy_from_slice(&sym.to_be_bytes());
            // err == 0 keeps the word clean; the check must agree with
            // whether anything actually changed.
            prop_assert_eq!(code.check(&bad).is_good(), err == 0);
        }
    }

    // ---- Bitsliced kernels vs the shift-and-add oracle ----------------
    //
    // The batched decode path transposes 64 codewords into bit-planes
    // (gf::bitslice); every plane kernel must agree lane-for-lane with
    // the schoolbook reference across random lane counts and constants.

    #[test]
    fn bitslice_gf256_kernels_match_reference(
        lanes in proptest::collection::vec(any::<u8>(), 1..=64),
        c in 0u8..,
    ) {
        use dve_ecc::gf::bitslice;
        let planes = bitslice::pack8(&lanes);
        // Pack/unpack round-trip.
        let mut out = vec![0u8; lanes.len()];
        bitslice::unpack8(&planes, &mut out);
        prop_assert_eq!(&out, &lanes);
        // Constant multiply across all lanes at once.
        let prod = bitslice::mul_const8(&planes, c);
        bitslice::unpack8(&prod, &mut out);
        let expect = reference::gf256_mul_lanes(&lanes, c);
        prop_assert_eq!(&out, &expect);
        // mul_alpha == mul_const(2).
        let mut by_alpha = planes;
        bitslice::mul_alpha8(&mut by_alpha);
        prop_assert_eq!(by_alpha, bitslice::mul_const8(&planes, 2));
        // Non-zero lane mask.
        let expect_mask = lanes.iter().enumerate().fold(0u64, |m, (l, &v)| {
            m | (u64::from(v != 0) << l)
        });
        prop_assert_eq!(bitslice::nonzero8(&planes), expect_mask);
    }

    #[test]
    fn bitslice_gf16_kernels_match_reference(
        lanes in proptest::collection::vec(any::<u16>(), 1..=64),
        c in 0u16..,
    ) {
        use dve_ecc::gf::bitslice;
        let planes = bitslice::pack16(&lanes);
        let mut out = vec![0u16; lanes.len()];
        bitslice::unpack16(&planes, &mut out);
        prop_assert_eq!(&out, &lanes);
        let prod = bitslice::mul_const16(&planes, c);
        bitslice::unpack16(&prod, &mut out);
        let expect = reference::gf16_mul_lanes(&lanes, c);
        prop_assert_eq!(&out, &expect);
        let mut by_alpha = planes;
        bitslice::mul_alpha16(&mut by_alpha);
        prop_assert_eq!(by_alpha, bitslice::mul_const16(&planes, 2));
        let expect_mask = lanes.iter().enumerate().fold(0u64, |m, (l, &v)| {
            m | (u64::from(v != 0) << l)
        });
        prop_assert_eq!(bitslice::nonzero16(&planes), expect_mask);
    }

    // ---- Batched multi-codeword APIs vs N scalar calls ----------------
    //
    // decode_batch_in_place screens blocks of 64 lanes with the
    // bitsliced syndrome kernel and only sends flagged lanes to the
    // scalar pipeline; it must be indistinguishable from N scalar
    // decode_in_place calls — same outcomes, same final bytes — across
    // batch sizes straddling the 64-lane block boundary, random error
    // weights per word, and all code configurations the campaign
    // schemes use (correcting Chipkill, detect-only DSD, a wider
    // generic nsym=4 code, and the GF(2^16) TSD).

    #[test]
    fn rs_encode_batch_matches_scalar(
        datas in proptest::collection::vec(any::<u8>(), 16 * 5),
    ) {
        for rs in [Rs::chipkill(), Rs::dsd(), Rs::new(20, 16, DecodePolicy::Correct)] {
            let n = rs.codeword_len();
            let mut batch = vec![0u8; 5 * n];
            rs.encode_batch_into(&datas, &mut batch);
            for (w, data) in datas.chunks_exact(16).enumerate() {
                let scalar = rs.encode(data);
                prop_assert_eq!(&batch[w * n..(w + 1) * n], scalar.as_slice());
            }
        }
    }

    #[test]
    fn rs_decode_batch_matches_scalar(
        seed in any::<u64>(),
        count in 1usize..=130,
        errors in proptest::collection::vec(
            (0usize..130, 0usize..18, 0u8..), 0..24
        ),
    ) {
        for rs in [Rs::chipkill(), Rs::dsd(), Rs::new(20, 16, DecodePolicy::Correct)] {
            let n = rs.codeword_len();
            let mut batch = vec![0u8; count * n];
            for (w, cw) in batch.chunks_exact_mut(n).enumerate() {
                let data: Vec<u8> = (0..16)
                    .map(|i| (seed.rotate_left((w * 16 + i) as u32 % 64) & 0xFF) as u8)
                    .collect();
                rs.encode_into(&data, cw);
            }
            // Sprinkle 0..24 random symbol corruptions (weight 0 hits the
            // clean screen path; stacked errors hit miscorrect/detect).
            for &(w, pos, e) in &errors {
                batch[(w % count) * n + pos] ^= e;
            }
            let mut scalar = batch.clone();
            let mut scalar_outcomes = Vec::new();
            let mut s = rs.make_scratch();
            for cw in scalar.chunks_exact_mut(n) {
                scalar_outcomes.push(rs.decode_in_place(cw, &mut s));
            }
            let mut batch_outcomes = Vec::new();
            let decoded = rs.decode_batch_in_place(&mut batch, &mut batch_outcomes, &mut s);
            prop_assert_eq!(decoded, count);
            prop_assert_eq!(&batch_outcomes, &scalar_outcomes);
            prop_assert_eq!(&batch, &scalar);
        }
    }

    #[test]
    fn tsd_check_batch_matches_scalar(
        seed in any::<u64>(),
        count in 1usize..=70,
        errors in proptest::collection::vec(
            (0usize..70, 0usize..35, 0u16..), 0..16
        ),
    ) {
        for code in [Rs16Detect::tsd(64), Rs16Detect::new(64, 2)] {
            let cw_len = code.codeword_len();
            let mut batch = vec![0u8; count * cw_len];
            let mut datas = vec![0u8; count * 64];
            for (i, b) in datas.iter_mut().enumerate() {
                *b = (seed.rotate_left(i as u32 % 64) & 0xFF) as u8;
            }
            code.encode_batch_into(&datas, &mut batch);
            for (w, data) in datas.chunks_exact(64).enumerate() {
                let scalar = code.encode(data);
                prop_assert_eq!(&batch[w * cw_len..(w + 1) * cw_len], scalar.as_slice());
            }
            for &(w, pos, e) in &errors {
                let base = (w % count) * cw_len + 2 * (pos % (cw_len / 2));
                let sym = u16::from_be_bytes([batch[base], batch[base + 1]]) ^ e;
                batch[base..base + 2].copy_from_slice(&sym.to_be_bytes());
            }
            let scalar: Vec<CheckOutcome> =
                batch.chunks_exact(cw_len).map(|cw| code.check(cw)).collect();
            let mut batched = Vec::new();
            let checked = code.check_batch(&batch, &mut batched);
            prop_assert_eq!(checked, count);
            prop_assert_eq!(&batched, &scalar);
        }
    }

    // ---- Reed–Solomon -------------------------------------------------

    #[test]
    fn rs_clean_roundtrip(data in proptest::collection::vec(any::<u8>(), 16)) {
        let rs = Rs::chipkill();
        let cw = rs.encode(&data);
        prop_assert_eq!(rs.check(&cw), CheckOutcome::NoError);
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn rs_corrects_any_single_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        let rs = Rs::chipkill();
        let mut cw = rs.encode(&data);
        cw[pos] ^= err;
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn rs_detect_only_never_mutates(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        err in 1u8..,
    ) {
        let rs = Rs::dsd();
        let mut cw = rs.encode(&data);
        cw[pos] ^= err;
        let before = cw.clone();
        let outcome = rs.check_and_repair(&mut cw);
        let detected = matches!(outcome, CheckOutcome::DetectedUncorrectable { .. });
        prop_assert!(detected);
        prop_assert_eq!(cw, before);
    }

    #[test]
    fn rs_t2_corrects_any_double_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        p1 in 0usize..20,
        p2 in 0usize..20,
        e1 in 1u8..,
        e2 in 1u8..,
    ) {
        prop_assume!(p1 != p2);
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let mut cw = rs.encode(&data);
        cw[p1] ^= e1;
        cw[p2] ^= e2;
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 2 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn tsd_detects_up_to_three_symbols(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..35, 1..=3),
        err in 1u16..,
    ) {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&data);
        let mut bad = cw.clone();
        for &p in &positions {
            let cur = u16::from_be_bytes([bad[2 * p], bad[2 * p + 1]]) ^ err;
            bad[2 * p..2 * p + 2].copy_from_slice(&cur.to_be_bytes());
        }
        prop_assert!(!tsd.check(&bad).is_good());
    }

    // ---- Fault injector driving the codes (campaign hooks) ------------

    #[test]
    fn injected_single_symbol_is_always_corrected(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        seed in any::<u64>(),
    ) {
        // The campaign corrupts exactly the failed chip's symbol through
        // inject_symbols_at; RS(18,16) must repair any such error.
        let rs = Rs::chipkill();
        let mut cw = rs.encode(&data);
        let mut inj = FaultInjector::new(seed);
        let touched = inj.inject_symbols_at(&mut cw, &[pos]);
        prop_assert_eq!(touched, vec![pos]);
        let outcome = rs.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn injected_double_symbol_is_never_silent(
        data in proptest::collection::vec(any::<u8>(), 16),
        positions in proptest::collection::btree_set(0usize..18, 2),
        seed in any::<u64>(),
    ) {
        // Two distinct symbol errors can never zero both syndromes
        // (S₀ = S₁ = 0 would force the two error locators to coincide),
        // so detection of doubles is guaranteed — even though the
        // *correcting* decoder may miscorrect them (~7%, the SDC channel
        // the campaign measures).
        let rs = Rs::chipkill();
        let cw = rs.encode(&data);
        let mut bad = cw.clone();
        let positions: Vec<usize> = positions.into_iter().collect();
        let mut inj = FaultInjector::new(seed);
        inj.inject_symbols_at(&mut bad, &positions);
        prop_assert_ne!(rs.check(&bad), CheckOutcome::NoError);
    }

    #[test]
    fn dsd_detect_only_never_repairs_injected_faults(
        data in proptest::collection::vec(any::<u8>(), 16),
        chips in 1usize..=4,
        seed in any::<u64>(),
    ) {
        // Under Dvé the local code relinquishes correction: whatever the
        // injector throws at a DSD codeword, the outcome is detection
        // (never Corrected) and the codeword is left untouched for the
        // replica-recovery path.
        let dsd = Rs::dsd();
        let mut cw = dsd.encode(&data);
        let mut inj = FaultInjector::new(seed);
        inj.inject(&mut cw, FaultKind::MultiChip { count: chips });
        let before = cw.clone();
        let outcome = dsd.check_and_repair(&mut cw);
        prop_assert!(!matches!(outcome, CheckOutcome::Corrected { .. }));
        prop_assert_eq!(cw, before);
    }

    #[test]
    fn tsd_detects_injected_faults_up_to_three_symbols(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..35, 1..=3),
        seed in any::<u64>(),
    ) {
        // The TSD guarantee the paper leans on (§IV-B): any ≤3 corrupted
        // 16-bit symbols are detected.
        let tsd = Rs16Detect::tsd(64);
        let mut cw = tsd.encode(&data);
        let positions: Vec<usize> = positions.into_iter().collect();
        let mut inj = FaultInjector::new(seed);
        let touched = inj.inject_symbols16_at(&mut cw, &positions);
        prop_assert!(!touched.is_empty());
        prop_assert!(!tsd.check(&cw).is_good());
    }

    #[test]
    fn injector_is_deterministic_and_reports_touched_bytes(
        len in 8usize..64,
        seed in any::<u64>(),
        chips in 1usize..=4,
    ) {
        let kind = FaultKind::MultiChip { count: chips };
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        let ta = FaultInjector::new(seed).inject(&mut a, kind);
        let tb = FaultInjector::new(seed).inject(&mut b, kind);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&ta, &tb);
        // Every touched byte actually changed; no untouched byte did.
        for (i, &byte) in a.iter().enumerate() {
            prop_assert_eq!(byte != 0, ta.contains(&i));
        }
    }

    // ---- SEC-DED ------------------------------------------------------

    #[test]
    fn secded_corrects_single_bits(word in any::<[u8; 8]>(), bit in 0usize..72) {
        let code = SecDed::new();
        let mut cw = code.encode(&word);
        cw[bit / 8] ^= 1 << (bit % 8);
        let outcome = code.check_and_repair(&mut cw);
        prop_assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        prop_assert_eq!(code.extract_data(&cw), word.to_vec());
    }

    #[test]
    fn secded_detects_double_bits(word in any::<[u8; 8]>(), a in 0usize..72, b in 0usize..72) {
        prop_assume!(a != b);
        let code = SecDed::new();
        let mut cw = code.encode(&word);
        cw[a / 8] ^= 1 << (a % 8);
        cw[b / 8] ^= 1 << (b % 8);
        let detected =
            matches!(code.check(&cw), CheckOutcome::DetectedUncorrectable { .. });
        prop_assert!(detected);
    }

    // ---- CRC ------------------------------------------------------------

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in any::<usize>(),
    ) {
        let bit = bit % (data.len() * 8);
        let c8 = Crc8Atm::checksum(&data);
        let c16 = Crc16Ccitt::checksum(&data);
        let c32 = Crc32::checksum(&data);
        let mut bad = data.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!Crc8Atm::verify(&bad, c8));
        prop_assert!(!Crc16Ccitt::verify(&bad, c16));
        prop_assert!(!Crc32::verify(&bad, c32));
    }
}
