//! Reed–Solomon codes over GF(2^8) — the substrate of Chipkill ECC.
//!
//! The paper's baseline (§IV-A) is an "8-bit symbol based RS(18,16,8) code
//! with SSC-DSD", i.e. 16 data symbols + 2 check symbols per codeword with
//! each symbol sourced from a different DRAM chip, so a whole-chip failure
//! manifests as a single-symbol error. [`Rs`] implements a general
//! systematic RS(n, k) codec:
//!
//! * encoding by polynomial long division (parity = remainder),
//! * syndrome computation,
//! * full decoding via Berlekamp–Massey, Chien search and Forney's
//!   algorithm.
//!
//! The [`DecodePolicy`] selects how the code is *used*: `Correct` behaves
//! like Chipkill (repair up to ⌊(n−k)/2⌋ symbols), `DetectOnly` behaves
//! like the paper's DSD configuration (Dvé relinquishes local correction
//! and any non-zero syndrome routes the request to the replica).
//!
//! # Hot-path design
//!
//! Millions of campaign trials and scrub reads funnel through this codec,
//! so the decode pipeline is organised around three invariants:
//!
//! * **Everything position-dependent is precomputed once** in the
//!   constructor: syndrome roots `α^i`, per-position location values
//!   `X_j = α^{n-1-j}` and their inverses, and the `α^i` step factors the
//!   Chien search advances by. No `pow` is ever called per decode;
//!   Chien/Forney use incremental running products and Horner evaluation.
//! * **Fault-free words exit early**: [`Rs::decode_in_place`] computes the
//!   syndromes in a single fused pass (the `i = 0` syndrome is a plain
//!   XOR fold; `i = 1` is a Horner loop of table-free α-multiplies) and
//!   returns before Berlekamp–Massey ever runs when they are all zero —
//!   the overwhelming majority of scrub and campaign reads.
//! * **The caller owns the scratch**: [`RsScratch`] carries every buffer
//!   the decoder needs, so [`Rs::encode_into`] and [`Rs::decode_in_place`]
//!   are allocation-free after construction. The legacy allocating
//!   `encode`/`check`/`check_and_repair` APIs remain as thin wrappers.

use crate::code::{CheckOutcome, CorrectionCode, DetectionCode};
use crate::gf::{bitslice, Gf256};

/// How a Reed–Solomon code reacts to a non-zero syndrome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodePolicy {
    /// Attempt in-place correction up to the code's capability
    /// (Chipkill-style SSC with `n - k = 2`).
    Correct,
    /// Never correct locally: report any detected error as uncorrectable
    /// so the caller recovers from the replica (Dvé+DSD).
    DetectOnly,
}

/// Caller-owned scratch buffers for [`Rs::decode_in_place`].
///
/// Create one per worker with [`Rs::make_scratch`] and reuse it across
/// decodes; all buffers are `clear()`ed/overwritten per call, never
/// reallocated (capacities are sized for the worst decode up front).
#[derive(Debug, Clone, Default)]
pub struct RsScratch {
    syn: Vec<u8>,
    sigma: Vec<u8>,
    prev: Vec<u8>,
    temp: Vec<u8>,
    omega: Vec<u8>,
    coefs: Vec<u8>,
    positions: Vec<usize>,
    magnitudes: Vec<u8>,
    /// Per-block dirty-lane masks for [`Rs::decode_batch_in_place`].
    dirty: Vec<u64>,
}

/// A systematic Reed–Solomon code over GF(2^8).
///
/// # Example
///
/// ```
/// use dve_ecc::rs::{DecodePolicy, Rs};
/// use dve_ecc::code::{CheckOutcome, CorrectionCode, DetectionCode};
///
/// // Chipkill-style RS(18,16): corrects any single-symbol (chip) error.
/// let chipkill = Rs::new(18, 16, DecodePolicy::Correct);
/// let data: Vec<u8> = (100..116).collect();
/// let mut cw = chipkill.encode(&data);
/// cw[7] ^= 0xFF; // whole-chip failure on symbol 7
/// let outcome = chipkill.check_and_repair(&mut cw);
/// assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
/// assert_eq!(chipkill.extract_data(&cw), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rs {
    n: usize,
    k: usize,
    policy: DecodePolicy,
    generator: Vec<u8>,
    /// Syndrome roots: `roots[i] = α^i` for `i < n - k`.
    roots: Vec<u8>,
    /// Location values: `x[j] = α^{n-1-j}` for codeword position `j`.
    x: Vec<u8>,
    /// Inverse location values: `x_inv[j] = α^{-(n-1-j)}`.
    x_inv: Vec<u8>,
    /// Chien step factors: `alpha_pows[i] = α^i` for `i <= n - k`.
    alpha_pows: Vec<u8>,
    /// Discrete logs of `generator[1..]` when `n - k == 2` and both
    /// coefficients are non-zero (always true for RS generator
    /// polynomials of this size): enables the fully register-resident
    /// two-tap LFSR encode fast path.
    gen_log2: Option<(u16, u16)>,
}

impl Rs {
    /// Creates an RS(n, k) code.
    ///
    /// All position-dependent constants (syndrome roots, Chien/Forney
    /// location tables) are precomputed here so the per-decode paths are
    /// free of `pow` calls and allocations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize, policy: DecodePolicy) -> Rs {
        assert!(
            k > 0 && k < n && n <= 255,
            "invalid RS parameters n={n} k={k}"
        );
        let nsym = n - k;
        let roots: Vec<u8> = (0..nsym).map(|i| Gf256::alpha_pow(i as u32)).collect();
        let x: Vec<u8> = (0..n)
            .map(|j| Gf256::alpha_pow((n - 1 - j) as u32))
            .collect();
        let x_inv: Vec<u8> = x.iter().map(|&v| Gf256::inv(v)).collect();
        let alpha_pows: Vec<u8> = (0..=nsym).map(|i| Gf256::alpha_pow(i as u32)).collect();
        let generator = Self::generator_poly(nsym);
        let gen_log2 = if nsym == 2 && generator[1] != 0 && generator[2] != 0 {
            Some((Gf256::log(generator[1]), Gf256::log(generator[2])))
        } else {
            None
        };
        Rs {
            n,
            k,
            policy,
            generator,
            roots,
            x,
            x_inv,
            alpha_pows,
            gen_log2,
        }
    }

    /// The paper's Chipkill configuration: RS(18,16) with correction.
    pub fn chipkill() -> Rs {
        Rs::new(18, 16, DecodePolicy::Correct)
    }

    /// The paper's DSD configuration: RS(18,16) detect-only (Dvé+DSD).
    pub fn dsd() -> Rs {
        Rs::new(18, 16, DecodePolicy::DetectOnly)
    }

    /// Number of parity symbols `n - k`.
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// The decode policy in effect.
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// Builds a scratch sized for this code's worst-case decode.
    pub fn make_scratch(&self) -> RsScratch {
        let nsym = self.parity_len();
        RsScratch {
            syn: Vec::with_capacity(nsym),
            sigma: Vec::with_capacity(2 * nsym + 2),
            prev: Vec::with_capacity(2 * nsym + 2),
            temp: Vec::with_capacity(2 * nsym + 2),
            omega: Vec::with_capacity(nsym),
            coefs: Vec::with_capacity(nsym + 1),
            positions: Vec::with_capacity(nsym),
            magnitudes: Vec::with_capacity(nsym),
            dirty: Vec::new(),
        }
    }

    /// g(x) = Π_{i=0}^{nsym-1} (x − α^i), coefficients highest-degree
    /// first.
    fn generator_poly(nsym: usize) -> Vec<u8> {
        let mut g = vec![1u8];
        for i in 0..nsym {
            // Multiply g by (x - alpha^i) == (x + alpha^i) in GF(2^m).
            let root = Gf256::alpha_pow(i as u32);
            let mut next = vec![0u8; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j] ^= c; // times x
                next[j + 1] ^= Gf256::mul(c, root);
            }
            g = next;
        }
        g
    }

    /// Syndromes S_i = C(α^i) for i in 0..nsym, written into `syn`
    /// (cleared first). Returns `true` if any syndrome is non-zero.
    ///
    /// Single fused pass over the codeword with per-root Horner steps;
    /// the `i = 0` root is 1 (pure XOR fold) and `i = 1` is an α-multiply
    /// that needs no table access, which makes the all-zero fast path of
    /// the ubiquitous RS(18,16) nearly free.
    fn syndromes_into(&self, codeword: &[u8], syn: &mut Vec<u8>) -> bool {
        let nsym = self.parity_len();
        syn.clear();
        syn.resize(nsym, 0);
        // S_0 and S_1 fused in one pass: S_0 is a plain XOR fold (root
        // α^0 = 1), S_1 a Horner walk with the generator α itself —
        // shift/reduce, no tables. RS(18,16) has no syndromes beyond
        // these two, so its clean path is a single traversal.
        let mut s0 = 0u8;
        let mut s1 = 0u8;
        for &c in codeword {
            s0 ^= c;
            s1 = Gf256::mul_alpha(s1) ^ c;
        }
        syn[0] = s0;
        if nsym >= 2 {
            syn[1] = s1;
        }
        // Remaining syndromes (absent for RS(18,16)): Horner with α^i.
        for (i, s) in syn.iter_mut().enumerate().skip(2) {
            let root = self.roots[i];
            let mut acc = 0u8;
            for &c in codeword {
                acc = Gf256::mul(acc, root) ^ c;
            }
            *s = acc;
        }
        syn.iter().any(|&s| s != 0)
    }

    /// Berlekamp–Massey over `s.syn`, leaving the error locator in
    /// `s.sigma` (lowest-degree first, `sigma[0] == 1`). Allocation-free:
    /// works entirely in the scratch buffers.
    fn berlekamp_massey_into(s: &mut RsScratch) {
        s.sigma.clear();
        s.sigma.push(1);
        s.prev.clear();
        s.prev.push(1);
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..s.syn.len() {
            // Discrepancy d = S_n + sum sigma[i] * S_{n-i}.
            let mut d = s.syn[n];
            for i in 1..=l {
                if i < s.sigma.len() {
                    d ^= Gf256::mul(s.sigma[i], s.syn[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                s.temp.clear();
                s.temp.extend_from_slice(&s.sigma);
                let coef = Gf256::div(d, b);
                // sigma = sigma - coef * x^m * prev
                let shift = m;
                if s.sigma.len() < s.prev.len() + shift {
                    s.sigma.resize(s.prev.len() + shift, 0);
                }
                for i in 0..s.prev.len() {
                    s.sigma[i + shift] ^= Gf256::mul(coef, s.prev[i]);
                }
                l = n + 1 - l;
                std::mem::swap(&mut s.prev, &mut s.temp);
                b = d;
                m = 1;
            } else {
                let coef = Gf256::div(d, b);
                let shift = m;
                if s.sigma.len() < s.prev.len() + shift {
                    s.sigma.resize(s.prev.len() + shift, 0);
                }
                for i in 0..s.prev.len() {
                    s.sigma[i + shift] ^= Gf256::mul(coef, s.prev[i]);
                }
                m += 1;
            }
        }
        // Trim trailing zeros.
        while s.sigma.len() > 1 && *s.sigma.last().unwrap() == 0 {
            s.sigma.pop();
        }
    }

    /// Chien search by incremental evaluation: positions (codeword
    /// indices from the left) where the locator evaluates to zero.
    ///
    /// Position `j` corresponds to evaluating σ at `X_j^{-1} = α^{j-(n-1)}`;
    /// stepping `j → j+1` multiplies the evaluation point by α, so the
    /// `i`-th term of σ just picks up a constant factor `α^i` per step —
    /// no `pow` anywhere.
    fn chien_search_into(&self, s: &mut RsScratch) {
        s.positions.clear();
        let deg = s.sigma.len() - 1;
        // Initialise coefs[i] = sigma[i] * (X_0^{-1})^i with a running
        // product.
        s.coefs.clear();
        let x_inv0 = self.x_inv[0];
        let mut xp = 1u8;
        for i in 0..=deg {
            s.coefs.push(Gf256::mul(s.sigma[i], xp));
            xp = Gf256::mul(xp, x_inv0);
        }
        for j in 0..self.n {
            let mut acc = 0u8;
            for &c in s.coefs.iter() {
                acc ^= c;
            }
            if acc == 0 {
                s.positions.push(j);
            }
            if j + 1 < self.n {
                for (i, c) in s.coefs.iter_mut().enumerate().skip(1) {
                    *c = Gf256::mul(*c, self.alpha_pows[i]);
                }
            }
        }
    }

    /// Forney's algorithm: error magnitudes at `s.positions`, written to
    /// `s.magnitudes`. Polynomial evaluations use Horner on the
    /// precomputed per-position location values — no `pow` calls.
    fn forney_into(&self, s: &mut RsScratch) {
        // Error evaluator omega(x) = [S(x) * sigma(x)] mod x^nsym,
        // with S(x) = sum S_i x^i (lowest-degree first).
        let nsym = self.parity_len();
        s.omega.clear();
        for i in 0..nsym {
            let mut acc = 0u8;
            for j in 0..=i {
                if j < s.sigma.len() && (i - j) < s.syn.len() {
                    acc ^= Gf256::mul(s.sigma[j], s.syn[i - j]);
                }
            }
            s.omega.push(acc);
        }
        s.magnitudes.clear();
        for p in 0..s.positions.len() {
            let j = s.positions[p];
            let x_inv = self.x_inv[j];
            // omega(x_inv) by Horner (omega is lowest-degree first).
            let mut num = 0u8;
            for &c in s.omega.iter().rev() {
                num = Gf256::mul(num, x_inv) ^ c;
            }
            // sigma'(x_inv): derivative in char 2 keeps odd-power terms,
            // each contributing sigma[i] * x^{i-1}. Evaluate with a
            // running product of x_inv^2.
            let x_inv2 = Gf256::mul(x_inv, x_inv);
            let mut den = 0u8;
            let mut xp = 1u8;
            let mut i = 1;
            while i < s.sigma.len() {
                den ^= Gf256::mul(s.sigma[i], xp);
                xp = Gf256::mul(xp, x_inv2);
                i += 2;
            }
            if den == 0 {
                // Degenerate: signal failure with zero magnitude; caller
                // treats as uncorrectable.
                s.magnitudes.push(0);
            } else {
                // e_j = X_j * omega(X_j^{-1}) / sigma'(X_j^{-1}) with
                // fcr = 0 => multiply by X_j^{1-fcr} = X_j.
                s.magnitudes
                    .push(Gf256::mul(self.x[j], Gf256::div(num, den)));
            }
        }
    }

    /// Encodes `data` systematically into the caller-provided `codeword`
    /// buffer (`data` copied to the front, parity written behind it).
    /// Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or `codeword.len() != n`.
    pub fn encode_into(&self, data: &[u8], codeword: &mut [u8]) {
        assert_eq!(data.len(), self.k, "dataword length mismatch");
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        let (out_data, remainder) = codeword.split_at_mut(self.k);
        out_data.copy_from_slice(data);
        // Two-tap fast path (RS(18,16) and every other nsym == 2 code):
        // the LFSR registers live in locals and the generator
        // coefficients' logs are precomputed, so each data byte costs one
        // log load plus two antilog loads — no rotate, no slice writes.
        if let Some((lg1, lg2)) = self.gen_log2 {
            let mut r0 = 0u8;
            let mut r1 = 0u8;
            for &d in data {
                let coef = d ^ r0;
                if coef != 0 {
                    let lc = Gf256::log(coef);
                    r0 = r1 ^ Gf256::exp_sum(lc, lg1);
                    r1 = Gf256::exp_sum(lc, lg2);
                } else {
                    r0 = r1;
                    r1 = 0;
                }
            }
            remainder[0] = r0;
            remainder[1] = r1;
            return;
        }
        remainder.fill(0);
        let nsym = self.parity_len();
        for &d in data {
            let coef = d ^ remainder[0];
            remainder.rotate_left(1);
            remainder[nsym - 1] = 0;
            if coef != 0 {
                // generator[0] == 1 (monic); skip it.
                Gf256::fma_slice(remainder, &self.generator[1..], coef);
            }
        }
    }

    /// Checks and (under [`DecodePolicy::Correct`]) repairs `codeword` in
    /// place using caller-owned scratch. Allocation-free; the fast path
    /// for fault-free codewords never runs the full decoder.
    ///
    /// Behaviourally identical to [`CorrectionCode::check_and_repair`]
    /// (which wraps this with a throwaway scratch).
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn decode_in_place(&self, codeword: &mut [u8], s: &mut RsScratch) -> CheckOutcome {
        self.decode_scratch(codeword, true, s)
    }

    /// Detect-only check via caller-owned scratch: never mutates the
    /// codeword, regardless of policy. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn check_scratch(&self, codeword: &[u8], s: &mut RsScratch) -> CheckOutcome {
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        if !self.syndromes_into(codeword, &mut s.syn) {
            return CheckOutcome::NoError;
        }
        CheckOutcome::DetectedUncorrectable {
            syndrome_weight: s.syn.iter().filter(|&&v| v != 0).count(),
        }
    }

    fn decode_scratch(&self, codeword: &mut [u8], repair: bool, s: &mut RsScratch) -> CheckOutcome {
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        // Syndrome-zero early exit: fault-free words never reach BM.
        if !self.syndromes_into(codeword, &mut s.syn) {
            return CheckOutcome::NoError;
        }
        let weight = s.syn.iter().filter(|&&v| v != 0).count();
        if !repair || self.policy == DecodePolicy::DetectOnly {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        Self::berlekamp_massey_into(s);
        let num_errors = s.sigma.len() - 1;
        if num_errors == 0 || num_errors > self.parity_len() / 2 {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        self.chien_search_into(s);
        if s.positions.len() != num_errors {
            // Locator degree and root count disagree: uncorrectable.
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        self.forney_into(s);
        if s.magnitudes.contains(&0) {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        for (&pos, &mag) in s.positions.iter().zip(&s.magnitudes) {
            codeword[pos] ^= mag;
        }
        // Verify the repair really zeroed the syndromes.
        if self.syndromes_into(codeword, &mut s.syn) {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        CheckOutcome::Corrected {
            symbols_fixed: s.positions.len(),
        }
    }

    /// Encodes `count` datawords packed back-to-back in `datas`
    /// (`count * k` bytes) into `codewords` (`count * n` bytes), reusing
    /// the register-resident LFSR fast path per word. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `datas.len()` is not a multiple of `k` or `codewords`
    /// does not hold exactly the same number of codewords.
    pub fn encode_batch_into(&self, datas: &[u8], codewords: &mut [u8]) {
        assert_eq!(datas.len() % self.k, 0, "datas not a multiple of k");
        let count = datas.len() / self.k;
        assert_eq!(
            codewords.len(),
            count * self.n,
            "codeword buffer/count mismatch"
        );
        for (data, cw) in datas
            .chunks_exact(self.k)
            .zip(codewords.chunks_exact_mut(self.n))
        {
            self.encode_into(data, cw);
        }
    }

    /// Bitsliced syndrome screen over a batch of codewords packed
    /// back-to-back: pushes one bitmask per 64-codeword block into
    /// `dirty` (cleared first), bit `l` set iff lane `l` of that block
    /// has a non-zero syndrome. The final block's unused high bits are
    /// zero.
    ///
    /// The codewords are transposed into [`bitslice`] planes one symbol
    /// column at a time; both RS(18,16) syndromes then cost a plane XOR
    /// and a plane-rotate-XOR per column for all 64 lanes at once.
    /// Restricted to `n - k == 2` codes, where a zero `(S_0, S_1)` pair
    /// is exactly the fault-free condition.
    ///
    /// # Panics
    ///
    /// Panics if `n - k != 2` or `codewords.len()` is not a multiple of
    /// `n`.
    pub fn dirty_mask_bitsliced(&self, codewords: &[u8], dirty: &mut Vec<u64>) {
        assert_eq!(
            self.parity_len(),
            2,
            "bitsliced screen requires nsym == 2 (exact for RS(18,16))"
        );
        assert_eq!(codewords.len() % self.n, 0, "codewords not a multiple of n");
        dirty.clear();
        for block in codewords.chunks(bitslice::LANES * self.n) {
            let lanes = block.len() / self.n;
            let mut s0: bitslice::Planes8 = [0; 8];
            let mut s1: bitslice::Planes8 = [0; 8];
            let mut col = [0u8; bitslice::LANES];
            for j in 0..self.n {
                for l in 0..lanes {
                    col[l] = block[l * self.n + j];
                }
                let planes = bitslice::pack8(&col[..lanes]);
                bitslice::xor8(&mut s0, &planes);
                bitslice::mul_alpha8(&mut s1);
                bitslice::xor8(&mut s1, &planes);
            }
            dirty.push(bitslice::nonzero8(&s0) | bitslice::nonzero8(&s1));
        }
    }

    /// Decodes `count` codewords packed back-to-back in `codewords` in
    /// place with one shared scratch, pushing one [`CheckOutcome`] per
    /// codeword into `outcomes` (cleared first).
    ///
    /// Behaviourally identical to calling [`Rs::decode_in_place`] on each
    /// codeword in order (the batch-vs-scalar property tests pin this),
    /// but for `n - k == 2` codes the fault-free majority is screened out
    /// by the bitsliced syndrome kernel
    /// ([`Rs::dirty_mask_bitsliced`]) — only lanes whose block mask bit
    /// is set take the scalar BM/Chien/Forney pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `codewords.len()` is not a multiple of `n`.
    pub fn decode_batch_in_place(
        &self,
        codewords: &mut [u8],
        outcomes: &mut Vec<CheckOutcome>,
        s: &mut RsScratch,
    ) -> usize {
        assert_eq!(codewords.len() % self.n, 0, "codewords not a multiple of n");
        let count = codewords.len() / self.n;
        outcomes.clear();
        outcomes.reserve(count);
        if self.parity_len() != 2 {
            // No exact two-syndrome screen exists for wider codes; the
            // batch API still amortizes scratch reuse per word.
            for cw in codewords.chunks_exact_mut(self.n) {
                outcomes.push(self.decode_in_place(cw, s));
            }
            return count;
        }
        let mut dirty = std::mem::take(&mut s.dirty);
        self.dirty_mask_bitsliced(codewords, &mut dirty);
        for (b, block) in codewords.chunks_mut(bitslice::LANES * self.n).enumerate() {
            let mask = dirty[b];
            for (l, cw) in block.chunks_exact_mut(self.n).enumerate() {
                if mask & (1 << l) == 0 {
                    outcomes.push(CheckOutcome::NoError);
                } else {
                    outcomes.push(self.decode_in_place(cw, s));
                }
            }
        }
        s.dirty = dirty;
        count
    }
}

impl DetectionCode for Rs {
    fn data_len(&self) -> usize {
        self.k
    }

    fn codeword_len(&self) -> usize {
        self.n
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut cw = vec![0u8; self.n];
        self.encode_into(data, &mut cw);
        cw
    }

    fn encode_into(&self, data: &[u8], codeword: &mut [u8]) {
        Rs::encode_into(self, data, codeword);
    }

    fn check(&self, codeword: &[u8]) -> CheckOutcome {
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        // Stack-buffered syndrome pass: `check` stays allocation-free
        // even without caller scratch (nsym <= 255 always fits).
        let mut syn = [0u8; 255];
        let nsym = self.parity_len();
        let syn = &mut syn[..nsym];
        let mut s0 = 0u8;
        let mut s1 = 0u8;
        for &c in codeword {
            s0 ^= c;
            s1 = Gf256::mul_alpha(s1) ^ c;
        }
        syn[0] = s0;
        if nsym >= 2 {
            syn[1] = s1;
        }
        for (i, s) in syn.iter_mut().enumerate().skip(2) {
            let root = self.roots[i];
            let mut acc = 0u8;
            for &c in codeword {
                acc = Gf256::mul(acc, root) ^ c;
            }
            *s = acc;
        }
        let weight = syn.iter().filter(|&&v| v != 0).count();
        if weight == 0 {
            CheckOutcome::NoError
        } else {
            CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            }
        }
    }
}

impl CorrectionCode for Rs {
    fn check_and_repair(&self, codeword: &mut [u8]) -> CheckOutcome {
        // Compat wrapper over [`Rs::decode_in_place`]: callers that
        // cannot own scratch borrow a thread-local one, so this path
        // allocates only on each thread's first decode (the buffers
        // grow to the largest code ever decoded on the thread).
        thread_local! {
            static SCRATCH: std::cell::RefCell<RsScratch> =
                std::cell::RefCell::new(RsScratch::default());
        }
        SCRATCH.with(|s| self.decode_scratch(codeword, true, &mut s.borrow_mut()))
    }

    fn correctable_symbols(&self) -> usize {
        match self.policy {
            DecodePolicy::Correct => self.parity_len() / 2,
            DecodePolicy::DetectOnly => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(k: usize) -> Vec<u8> {
        (0..k as u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = Rs::chipkill();
        let d = data(16);
        let cw = rs.encode(&d);
        assert_eq!(cw.len(), 18);
        assert_eq!(&cw[..16], d.as_slice());
    }

    #[test]
    fn encode_into_matches_encode() {
        for (n, k) in [(18usize, 16usize), (20, 16), (24, 16), (10, 4)] {
            let rs = Rs::new(n, k, DecodePolicy::Correct);
            let d = data(k);
            let mut cw = vec![0xAAu8; n]; // dirty buffer must be overwritten
            rs.encode_into(&d, &mut cw);
            assert_eq!(cw, rs.encode(&d), "n={n} k={k}");
        }
    }

    #[test]
    fn clean_codeword_checks_clean() {
        let rs = Rs::chipkill();
        let cw = rs.encode(&data(16));
        assert_eq!(rs.check(&cw), CheckOutcome::NoError);
        let mut scratch = rs.make_scratch();
        assert_eq!(rs.check_scratch(&cw, &mut scratch), CheckOutcome::NoError);
    }

    #[test]
    fn corrects_single_symbol_any_position() {
        let rs = Rs::chipkill();
        let d = data(16);
        let mut scratch = rs.make_scratch();
        for pos in 0..18 {
            for pattern in [0x01u8, 0xFF, 0xA5] {
                let mut cw = rs.encode(&d);
                cw[pos] ^= pattern;
                let outcome = rs.decode_in_place(&mut cw, &mut scratch);
                assert_eq!(
                    outcome,
                    CheckOutcome::Corrected { symbols_fixed: 1 },
                    "pos={pos} pattern={pattern:#x}"
                );
                assert_eq!(rs.extract_data(&cw), d);
            }
        }
    }

    #[test]
    fn two_symbol_errors_flagged_uncorrectable_by_rs18_16() {
        let rs = Rs::chipkill();
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[2] ^= 0x55;
        cw[9] ^= 0x7C;
        let outcome = rs.check_and_repair(&mut cw);
        assert!(
            matches!(outcome, CheckOutcome::DetectedUncorrectable { .. }),
            "got {outcome:?}"
        );
    }

    #[test]
    fn detect_only_policy_never_repairs() {
        let rs = Rs::dsd();
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[0] ^= 0x01;
        let before = cw.clone();
        let outcome = rs.check_and_repair(&mut cw);
        assert!(matches!(
            outcome,
            CheckOutcome::DetectedUncorrectable { .. }
        ));
        assert_eq!(cw, before, "detect-only must not mutate the codeword");
        assert_eq!(rs.correctable_symbols(), 0);
    }

    #[test]
    fn stronger_code_corrects_two_errors() {
        // RS(20,16): 4 parity symbols -> corrects 2.
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[3] ^= 0xDE;
        cw[17] ^= 0xAD;
        let outcome = rs.check_and_repair(&mut cw);
        assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 2 });
        assert_eq!(rs.extract_data(&cw), d);
        assert_eq!(rs.correctable_symbols(), 2);
    }

    #[test]
    fn three_errors_beyond_capability_of_rs20_16() {
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[0] ^= 0x11;
        cw[7] ^= 0x22;
        cw[15] ^= 0x33;
        // Beyond capability: must *not* report Corrected with wrong data.
        let mut copy = cw.clone();
        let outcome = rs.check_and_repair(&mut copy);
        if let CheckOutcome::Corrected { .. } = outcome {
            // Miscorrection is theoretically possible for >t errors; but
            // then the result must at least be a valid codeword.
            assert_eq!(rs.check(&copy), CheckOutcome::NoError);
        }
    }

    #[test]
    fn scratch_reuse_across_mixed_decodes_is_clean() {
        // One scratch must serve interleaved clean/1-err/2-err decodes
        // without state leaking between calls.
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let d = data(16);
        let clean = rs.encode(&d);
        let mut scratch = rs.make_scratch();
        for round in 0..50 {
            let mut cw = clean.clone();
            assert_eq!(
                rs.decode_in_place(&mut cw, &mut scratch),
                CheckOutcome::NoError,
                "round {round} clean"
            );
            let mut cw = clean.clone();
            cw[(round * 7) % 20] ^= 0x3C;
            assert_eq!(
                rs.decode_in_place(&mut cw, &mut scratch),
                CheckOutcome::Corrected { symbols_fixed: 1 },
                "round {round} 1-err"
            );
            assert_eq!(&cw, &clean);
            let mut cw = clean.clone();
            cw[round % 20] ^= 0x11;
            cw[(round + 5) % 20] ^= 0x2F;
            assert_eq!(
                rs.decode_in_place(&mut cw, &mut scratch),
                CheckOutcome::Corrected { symbols_fixed: 2 },
                "round {round} 2-err"
            );
            assert_eq!(&cw, &clean);
        }
    }

    #[test]
    fn overhead_matches_paper_numbers() {
        // RS(18,16): 2/16 = 12.5% ECC overhead.
        let rs = Rs::chipkill();
        assert!((rs.overhead() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn parity_len_accessor() {
        assert_eq!(Rs::chipkill().parity_len(), 2);
        assert_eq!(Rs::new(24, 16, DecodePolicy::Correct).parity_len(), 8);
    }

    #[test]
    #[should_panic(expected = "invalid RS parameters")]
    fn rejects_bad_parameters() {
        Rs::new(16, 16, DecodePolicy::Correct);
    }

    #[test]
    #[should_panic(expected = "dataword length mismatch")]
    fn rejects_wrong_data_len() {
        Rs::chipkill().encode(&[0u8; 15]);
    }

    #[test]
    fn burst_within_one_symbol_is_single_symbol_error() {
        // Chipkill's point: all bits of one chip map to one symbol.
        let rs = Rs::chipkill();
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[5] = !cw[5]; // all 8 bits of the symbol flip
        assert_eq!(
            rs.check_and_repair(&mut cw),
            CheckOutcome::Corrected { symbols_fixed: 1 }
        );
        assert_eq!(rs.extract_data(&cw), d);
    }
}
