//! Reed–Solomon codes over GF(2^8) — the substrate of Chipkill ECC.
//!
//! The paper's baseline (§IV-A) is an "8-bit symbol based RS(18,16,8) code
//! with SSC-DSD", i.e. 16 data symbols + 2 check symbols per codeword with
//! each symbol sourced from a different DRAM chip, so a whole-chip failure
//! manifests as a single-symbol error. [`Rs`] implements a general
//! systematic RS(n, k) codec:
//!
//! * encoding by polynomial long division (parity = remainder),
//! * syndrome computation,
//! * full decoding via Berlekamp–Massey, Chien search and Forney's
//!   algorithm.
//!
//! The [`DecodePolicy`] selects how the code is *used*: `Correct` behaves
//! like Chipkill (repair up to ⌊(n−k)/2⌋ symbols), `DetectOnly` behaves
//! like the paper's DSD configuration (Dvé relinquishes local correction
//! and any non-zero syndrome routes the request to the replica).

use crate::code::{CheckOutcome, CorrectionCode, DetectionCode};
use crate::gf::Gf256;

/// How a Reed–Solomon code reacts to a non-zero syndrome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodePolicy {
    /// Attempt in-place correction up to the code's capability
    /// (Chipkill-style SSC with `n - k = 2`).
    Correct,
    /// Never correct locally: report any detected error as uncorrectable
    /// so the caller recovers from the replica (Dvé+DSD).
    DetectOnly,
}

/// A systematic Reed–Solomon code over GF(2^8).
///
/// # Example
///
/// ```
/// use dve_ecc::rs::{DecodePolicy, Rs};
/// use dve_ecc::code::{CheckOutcome, CorrectionCode, DetectionCode};
///
/// // Chipkill-style RS(18,16): corrects any single-symbol (chip) error.
/// let chipkill = Rs::new(18, 16, DecodePolicy::Correct);
/// let data: Vec<u8> = (100..116).collect();
/// let mut cw = chipkill.encode(&data);
/// cw[7] ^= 0xFF; // whole-chip failure on symbol 7
/// let outcome = chipkill.check_and_repair(&mut cw);
/// assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
/// assert_eq!(chipkill.extract_data(&cw), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rs {
    n: usize,
    k: usize,
    policy: DecodePolicy,
    generator: Vec<u8>,
}

impl Rs {
    /// Creates an RS(n, k) code.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize, policy: DecodePolicy) -> Rs {
        assert!(
            k > 0 && k < n && n <= 255,
            "invalid RS parameters n={n} k={k}"
        );
        Rs {
            n,
            k,
            policy,
            generator: Self::generator_poly(n - k),
        }
    }

    /// The paper's Chipkill configuration: RS(18,16) with correction.
    pub fn chipkill() -> Rs {
        Rs::new(18, 16, DecodePolicy::Correct)
    }

    /// The paper's DSD configuration: RS(18,16) detect-only (Dvé+DSD).
    pub fn dsd() -> Rs {
        Rs::new(18, 16, DecodePolicy::DetectOnly)
    }

    /// Number of parity symbols `n - k`.
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// The decode policy in effect.
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// g(x) = Π_{i=0}^{nsym-1} (x − α^i), coefficients highest-degree
    /// first.
    fn generator_poly(nsym: usize) -> Vec<u8> {
        let mut g = vec![1u8];
        for i in 0..nsym {
            // Multiply g by (x - alpha^i) == (x + alpha^i) in GF(2^m).
            let root = Gf256::alpha_pow(i as u32);
            let mut next = vec![0u8; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j] ^= c; // times x
                next[j + 1] ^= Gf256::mul(c, root);
            }
            g = next;
        }
        g
    }

    /// Syndromes S_i = C(α^i) for i in 0..nsym.
    fn syndromes(&self, codeword: &[u8]) -> Vec<u8> {
        let nsym = self.parity_len();
        let mut s = vec![0u8; nsym];
        for (i, syn) in s.iter_mut().enumerate() {
            let x = Gf256::alpha_pow(i as u32);
            let mut acc = 0u8;
            for &c in codeword {
                acc = Gf256::add(Gf256::mul(acc, x), c);
            }
            *syn = acc;
        }
        s
    }

    /// Berlekamp–Massey: error locator polynomial from syndromes
    /// (coefficients lowest-degree first, sigma[0] == 1).
    fn berlekamp_massey(syndromes: &[u8]) -> Vec<u8> {
        let mut sigma = vec![1u8];
        let mut prev = vec![1u8];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..syndromes.len() {
            // Discrepancy d = S_n + sum sigma[i] * S_{n-i}.
            let mut d = syndromes[n];
            for i in 1..=l {
                if i < sigma.len() {
                    d ^= Gf256::mul(sigma[i], syndromes[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let temp = sigma.clone();
                let coef = Gf256::div(d, b);
                // sigma = sigma - coef * x^m * prev
                let shift = m;
                if sigma.len() < prev.len() + shift {
                    sigma.resize(prev.len() + shift, 0);
                }
                for (i, &p) in prev.iter().enumerate() {
                    sigma[i + shift] ^= Gf256::mul(coef, p);
                }
                l = n + 1 - l;
                prev = temp;
                b = d;
                m = 1;
            } else {
                let coef = Gf256::div(d, b);
                let shift = m;
                if sigma.len() < prev.len() + shift {
                    sigma.resize(prev.len() + shift, 0);
                }
                for (i, &p) in prev.iter().enumerate() {
                    sigma[i + shift] ^= Gf256::mul(coef, p);
                }
                m += 1;
            }
        }
        // Trim trailing zeros.
        while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
            sigma.pop();
        }
        sigma
    }

    /// Chien search: positions (as codeword indices from the left) where
    /// the locator evaluates to zero. Codeword index `j` (0 = leftmost,
    /// highest power) corresponds to location value α^(n-1-j).
    fn chien_search(&self, sigma: &[u8]) -> Vec<usize> {
        let mut positions = Vec::new();
        for j in 0..self.n {
            let loc_pow = (self.n - 1 - j) as u32;
            // Evaluate sigma at X = alpha^{-loc_pow}.
            let x_inv = Gf256::alpha_pow((255 - loc_pow % 255) % 255);
            let mut acc = 0u8;
            // sigma lowest-degree first.
            for (i, &c) in sigma.iter().enumerate() {
                acc ^= Gf256::mul(c, Gf256::pow(x_inv, i as u32));
            }
            if acc == 0 {
                positions.push(j);
            }
        }
        positions
    }

    /// Forney's algorithm: error magnitudes at the found positions.
    fn forney(&self, syndromes: &[u8], sigma: &[u8], positions: &[usize]) -> Vec<u8> {
        // Error evaluator omega(x) = [S(x) * sigma(x)] mod x^nsym,
        // with S(x) = sum S_i x^i (lowest-degree first).
        let nsym = self.parity_len();
        let mut omega = vec![0u8; nsym];
        for (i, o) in omega.iter_mut().enumerate() {
            let mut acc = 0u8;
            for j in 0..=i {
                if j < sigma.len() && (i - j) < syndromes.len() {
                    acc ^= Gf256::mul(sigma[j], syndromes[i - j]);
                }
            }
            *o = acc;
        }
        // Formal derivative of sigma: sigma'(x) keeps odd-power terms.
        let mut magnitudes = Vec::with_capacity(positions.len());
        for &j in positions {
            let loc_pow = (self.n - 1 - j) as u32;
            let x_inv = Gf256::alpha_pow((255 - loc_pow % 255) % 255);
            // omega(x_inv)
            let mut num = 0u8;
            for (i, &c) in omega.iter().enumerate() {
                num ^= Gf256::mul(c, Gf256::pow(x_inv, i as u32));
            }
            // sigma'(x_inv): derivative in char 2 keeps terms with odd i,
            // contributing i * c * x^{i-1} = c * x^{i-1}.
            let mut den = 0u8;
            let mut i = 1;
            while i < sigma.len() {
                den ^= Gf256::mul(sigma[i], Gf256::pow(x_inv, (i - 1) as u32));
                i += 2;
            }
            if den == 0 {
                // Degenerate: signal failure with zero magnitude; caller
                // treats as uncorrectable.
                magnitudes.push(0);
            } else {
                // e_j = X_j^{1} * omega(X_j^{-1}) / sigma'(X_j^{-1}) with
                // fcr = 0 => multiply by X_j^{1-fcr} = X_j.
                let x = Gf256::alpha_pow(loc_pow % 255);
                magnitudes.push(Gf256::mul(x, Gf256::div(num, den)));
            }
        }
        magnitudes
    }

    fn decode_internal(&self, codeword: &mut [u8], repair: bool) -> CheckOutcome {
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        let syn = self.syndromes(codeword);
        let weight = syn.iter().filter(|&&s| s != 0).count();
        if weight == 0 {
            return CheckOutcome::NoError;
        }
        if !repair || self.policy == DecodePolicy::DetectOnly {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        let sigma = Self::berlekamp_massey(&syn);
        let num_errors = sigma.len() - 1;
        if num_errors == 0 || num_errors > self.parity_len() / 2 {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        let positions = self.chien_search(&sigma);
        if positions.len() != num_errors {
            // Locator degree and root count disagree: uncorrectable.
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        let magnitudes = self.forney(&syn, &sigma, &positions);
        if magnitudes.contains(&0) {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        for (&pos, &mag) in positions.iter().zip(&magnitudes) {
            codeword[pos] ^= mag;
        }
        // Verify the repair really zeroed the syndromes.
        if self.syndromes(codeword).iter().any(|&s| s != 0) {
            return CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            };
        }
        CheckOutcome::Corrected {
            symbols_fixed: positions.len(),
        }
    }
}

impl DetectionCode for Rs {
    fn data_len(&self) -> usize {
        self.k
    }

    fn codeword_len(&self) -> usize {
        self.n
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "dataword length mismatch");
        // Systematic encoding: remainder of data * x^(n-k) by g(x).
        let nsym = self.parity_len();
        let mut remainder = vec![0u8; nsym];
        for &d in data {
            let coef = d ^ remainder[0];
            remainder.rotate_left(1);
            remainder[nsym - 1] = 0;
            if coef != 0 {
                for (i, r) in remainder.iter_mut().enumerate() {
                    // generator[0] == 1 (monic); skip it.
                    *r ^= Gf256::mul(self.generator[i + 1], coef);
                }
            }
        }
        let mut cw = Vec::with_capacity(self.n);
        cw.extend_from_slice(data);
        cw.extend_from_slice(&remainder);
        cw
    }

    fn check(&self, codeword: &[u8]) -> CheckOutcome {
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        let syn = self.syndromes(codeword);
        let weight = syn.iter().filter(|&&s| s != 0).count();
        if weight == 0 {
            CheckOutcome::NoError
        } else {
            CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            }
        }
    }
}

impl CorrectionCode for Rs {
    fn check_and_repair(&self, codeword: &mut [u8]) -> CheckOutcome {
        self.decode_internal(codeword, true)
    }

    fn correctable_symbols(&self) -> usize {
        match self.policy {
            DecodePolicy::Correct => self.parity_len() / 2,
            DecodePolicy::DetectOnly => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(k: usize) -> Vec<u8> {
        (0..k as u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = Rs::chipkill();
        let d = data(16);
        let cw = rs.encode(&d);
        assert_eq!(cw.len(), 18);
        assert_eq!(&cw[..16], d.as_slice());
    }

    #[test]
    fn clean_codeword_checks_clean() {
        let rs = Rs::chipkill();
        let cw = rs.encode(&data(16));
        assert_eq!(rs.check(&cw), CheckOutcome::NoError);
    }

    #[test]
    fn corrects_single_symbol_any_position() {
        let rs = Rs::chipkill();
        let d = data(16);
        for pos in 0..18 {
            for pattern in [0x01u8, 0xFF, 0xA5] {
                let mut cw = rs.encode(&d);
                cw[pos] ^= pattern;
                let outcome = rs.check_and_repair(&mut cw);
                assert_eq!(
                    outcome,
                    CheckOutcome::Corrected { symbols_fixed: 1 },
                    "pos={pos} pattern={pattern:#x}"
                );
                assert_eq!(rs.extract_data(&cw), d);
            }
        }
    }

    #[test]
    fn two_symbol_errors_flagged_uncorrectable_by_rs18_16() {
        let rs = Rs::chipkill();
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[2] ^= 0x55;
        cw[9] ^= 0x7C;
        let outcome = rs.check_and_repair(&mut cw);
        assert!(
            matches!(outcome, CheckOutcome::DetectedUncorrectable { .. }),
            "got {outcome:?}"
        );
    }

    #[test]
    fn detect_only_policy_never_repairs() {
        let rs = Rs::dsd();
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[0] ^= 0x01;
        let before = cw.clone();
        let outcome = rs.check_and_repair(&mut cw);
        assert!(matches!(
            outcome,
            CheckOutcome::DetectedUncorrectable { .. }
        ));
        assert_eq!(cw, before, "detect-only must not mutate the codeword");
        assert_eq!(rs.correctable_symbols(), 0);
    }

    #[test]
    fn stronger_code_corrects_two_errors() {
        // RS(20,16): 4 parity symbols -> corrects 2.
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[3] ^= 0xDE;
        cw[17] ^= 0xAD;
        let outcome = rs.check_and_repair(&mut cw);
        assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 2 });
        assert_eq!(rs.extract_data(&cw), d);
        assert_eq!(rs.correctable_symbols(), 2);
    }

    #[test]
    fn three_errors_beyond_capability_of_rs20_16() {
        let rs = Rs::new(20, 16, DecodePolicy::Correct);
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[0] ^= 0x11;
        cw[7] ^= 0x22;
        cw[15] ^= 0x33;
        // Beyond capability: must *not* report Corrected with wrong data.
        let mut copy = cw.clone();
        let outcome = rs.check_and_repair(&mut copy);
        if let CheckOutcome::Corrected { .. } = outcome {
            // Miscorrection is theoretically possible for >t errors; but
            // then the result must at least be a valid codeword.
            assert_eq!(rs.check(&copy), CheckOutcome::NoError);
        }
    }

    #[test]
    fn overhead_matches_paper_numbers() {
        // RS(18,16): 2/16 = 12.5% ECC overhead.
        let rs = Rs::chipkill();
        assert!((rs.overhead() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn parity_len_accessor() {
        assert_eq!(Rs::chipkill().parity_len(), 2);
        assert_eq!(Rs::new(24, 16, DecodePolicy::Correct).parity_len(), 8);
    }

    #[test]
    #[should_panic(expected = "invalid RS parameters")]
    fn rejects_bad_parameters() {
        Rs::new(16, 16, DecodePolicy::Correct);
    }

    #[test]
    #[should_panic(expected = "dataword length mismatch")]
    fn rejects_wrong_data_len() {
        Rs::chipkill().encode(&[0u8; 15]);
    }

    #[test]
    fn burst_within_one_symbol_is_single_symbol_error() {
        // Chipkill's point: all bits of one chip map to one symbol.
        let rs = Rs::chipkill();
        let d = data(16);
        let mut cw = rs.encode(&d);
        cw[5] = !cw[5]; // all 8 bits of the symbol flip
        assert_eq!(
            rs.check_and_repair(&mut cw),
            CheckOutcome::Corrected { symbols_fixed: 1 }
        );
        assert_eq!(rs.extract_data(&cw), d);
    }
}
