//! Cyclic redundancy checks used on the memory channel.
//!
//! DDR4 adds a write CRC on the data bus (the ATM-8 polynomial
//! `x^8 + x^2 + x + 1`) and command/address parity; the paper lists these
//! among the "bus reliability mechanisms" that detect (but cannot
//! correct) channel errors (§II-A). [`Crc8Atm`], [`Crc16Ccitt`] and
//! [`Crc32`] provide the standard bit-reflected implementations.

/// DDR4 write-CRC polynomial `x^8 + x^2 + x + 1` (0x07, MSB-first).
///
/// # Example
///
/// ```
/// use dve_ecc::crc::Crc8Atm;
///
/// let crc = Crc8Atm::checksum(b"123456789");
/// assert_eq!(crc, 0xF4); // standard CRC-8/SMBUS check value
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc8Atm;

impl Crc8Atm {
    /// Computes the CRC-8 of `data` (init 0x00, no reflection, no xorout).
    pub fn checksum(data: &[u8]) -> u8 {
        let mut crc: u8 = 0;
        for &b in data {
            crc ^= b;
            for _ in 0..8 {
                crc = if crc & 0x80 != 0 {
                    (crc << 1) ^ 0x07
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    /// Whether `data` followed by its transmitted CRC byte verifies.
    pub fn verify(data: &[u8], crc: u8) -> bool {
        Self::checksum(data) == crc
    }
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc16Ccitt;

impl Crc16Ccitt {
    /// Computes the CRC-16 of `data`.
    ///
    /// # Example
    ///
    /// ```
    /// use dve_ecc::crc::Crc16Ccitt;
    /// assert_eq!(Crc16Ccitt::checksum(b"123456789"), 0x29B1);
    /// ```
    pub fn checksum(data: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &b in data {
            crc ^= (b as u16) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    /// Whether `data` and its transmitted CRC verify.
    pub fn verify(data: &[u8], crc: u16) -> bool {
        Self::checksum(data) == crc
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc32;

impl Crc32 {
    /// Computes the CRC-32 of `data`.
    ///
    /// # Example
    ///
    /// ```
    /// use dve_ecc::crc::Crc32;
    /// assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
    /// ```
    pub fn checksum(data: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    /// Whether `data` and its transmitted CRC verify.
    pub fn verify(data: &[u8], crc: u32) -> bool {
        Self::checksum(data) == crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc8_standard_vector() {
        assert_eq!(Crc8Atm::checksum(b"123456789"), 0xF4);
        assert_eq!(Crc8Atm::checksum(b""), 0x00);
    }

    #[test]
    fn crc16_standard_vector() {
        assert_eq!(Crc16Ccitt::checksum(b"123456789"), 0x29B1);
        assert_eq!(Crc16Ccitt::checksum(b""), 0xFFFF);
    }

    #[test]
    fn crc32_standard_vector() {
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b""), 0x0000_0000);
    }

    #[test]
    fn verify_catches_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let c8 = Crc8Atm::checksum(&data);
        let c16 = Crc16Ccitt::checksum(&data);
        let c32 = Crc32::checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert!(!Crc8Atm::verify(&bad, c8));
                assert!(!Crc16Ccitt::verify(&bad, c16));
                assert!(!Crc32::verify(&bad, c32));
            }
        }
        assert!(Crc8Atm::verify(&data, c8));
        assert!(Crc16Ccitt::verify(&data, c16));
        assert!(Crc32::verify(&data, c32));
    }

    #[test]
    fn crc_detects_burst_errors_within_width() {
        // A CRC of width w detects all burst errors of length <= w.
        let data = vec![0xA5u8; 64];
        let c32 = Crc32::checksum(&data);
        for start in 0..(64 * 8 - 32) {
            let mut bad = data.clone();
            for b in start..start + 32 {
                bad[b / 8] ^= 1 << (b % 8);
            }
            assert!(!Crc32::verify(&bad, c32), "burst at {start} escaped");
        }
    }
}
