//! SEC-DED (72,64) extended Hamming code.
//!
//! The classic "ECC DIMM" baseline in Fig. 1 of the paper: 8 check bits
//! protect a 64-bit word, correcting any single-bit error and detecting
//! any double-bit error. Check bits live at power-of-two positions of the
//! (1-indexed) 72-bit codeword plus an overall parity bit at position 0.

use crate::code::{CheckOutcome, CorrectionCode, DetectionCode};

/// The (72,64) SEC-DED Hamming code over a 64-bit dataword.
///
/// Codewords are 9 bytes: the 72 bits are packed little-endian
/// (bit `i` of the codeword is bit `i % 8` of byte `i / 8`).
///
/// # Example
///
/// ```
/// use dve_ecc::hamming::SecDed;
/// use dve_ecc::code::{CheckOutcome, CorrectionCode, DetectionCode};
///
/// let code = SecDed::new();
/// let mut cw = code.encode(&0xDEAD_BEEF_0BAD_F00Du64.to_le_bytes());
/// cw[3] ^= 0x10; // single-bit upset
/// assert_eq!(code.check_and_repair(&mut cw), CheckOutcome::Corrected { symbols_fixed: 1 });
/// assert_eq!(code.extract_data(&cw), 0xDEAD_BEEF_0BAD_F00Du64.to_le_bytes());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecDed;

/// Number of Hamming check bits (positions 1,2,4,...,64 in the 1-indexed
/// layout).
const CHECK_BITS: usize = 7;
/// Total payload bits.
const DATA_BITS: usize = 64;
/// 1-indexed Hamming codeword length: 64 data + 7 check = 71, positions
/// 1..=71; position 0 holds the overall (extended) parity bit.
const HAMMING_LEN: usize = DATA_BITS + CHECK_BITS;

impl SecDed {
    /// Creates the code (stateless).
    pub fn new() -> SecDed {
        SecDed
    }

    fn get_bit(buf: &[u8], i: usize) -> u8 {
        (buf[i / 8] >> (i % 8)) & 1
    }

    fn set_bit(buf: &mut [u8], i: usize, v: u8) {
        if v != 0 {
            buf[i / 8] |= 1 << (i % 8);
        } else {
            buf[i / 8] &= !(1 << (i % 8));
        }
    }

    /// Maps data-bit index (0..64) to its 1-indexed Hamming position
    /// (skipping power-of-two positions).
    fn data_position(mut idx: usize) -> usize {
        let mut pos: usize = 1;
        loop {
            if !pos.is_power_of_two() {
                if idx == 0 {
                    return pos;
                }
                idx -= 1;
            }
            pos += 1;
        }
    }

    /// Builds the 72-bit layout: `layout[0]` is the extended parity,
    /// `layout[1..=71]` is the Hamming codeword.
    fn layout_from_data(data: &[u8; 8]) -> [u8; HAMMING_LEN + 1] {
        let mut layout = [0u8; HAMMING_LEN + 1];
        for i in 0..DATA_BITS {
            let bit = (data[i / 8] >> (i % 8)) & 1;
            layout[Self::data_position(i)] = bit;
        }
        // Check bits: parity over positions with that bit set in index.
        for c in 0..CHECK_BITS {
            let mask = 1usize << c;
            let mut parity = 0u8;
            for (pos, item) in layout.iter().enumerate().skip(1) {
                if pos & mask != 0 && !pos.is_power_of_two() {
                    parity ^= item;
                }
            }
            layout[mask] = parity;
        }
        // Extended parity over everything else.
        let mut overall = 0u8;
        for item in layout.iter().skip(1) {
            overall ^= item;
        }
        layout[0] = overall;
        layout
    }

    fn layout_to_bytes(layout: &[u8; HAMMING_LEN + 1]) -> [u8; 9] {
        let mut out = [0u8; 9];
        for (i, &b) in layout.iter().enumerate() {
            Self::set_bit(&mut out, i, b);
        }
        out
    }

    fn bytes_to_layout(bytes: &[u8]) -> [u8; HAMMING_LEN + 1] {
        let mut layout = [0u8; HAMMING_LEN + 1];
        for (i, item) in layout.iter_mut().enumerate() {
            *item = Self::get_bit(bytes, i);
        }
        layout
    }

    /// (syndrome, parity_ok) of a received layout.
    fn syndrome(layout: &[u8; HAMMING_LEN + 1]) -> (usize, bool) {
        let mut syndrome = 0usize;
        for c in 0..CHECK_BITS {
            let mask = 1usize << c;
            let mut parity = 0u8;
            for (pos, item) in layout.iter().enumerate().skip(1) {
                if pos & mask != 0 {
                    parity ^= item;
                }
            }
            if parity != 0 {
                syndrome |= mask;
            }
        }
        let mut overall = 0u8;
        for item in layout.iter() {
            overall ^= item;
        }
        (syndrome, overall == 0)
    }

    fn extract(layout: &[u8; HAMMING_LEN + 1]) -> [u8; 8] {
        let mut data = [0u8; 8];
        for i in 0..DATA_BITS {
            let bit = layout[Self::data_position(i)];
            if bit != 0 {
                data[i / 8] |= 1 << (i % 8);
            }
        }
        data
    }
}

impl DetectionCode for SecDed {
    fn data_len(&self) -> usize {
        8
    }

    fn codeword_len(&self) -> usize {
        9
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), 8, "dataword length mismatch");
        let mut d = [0u8; 8];
        d.copy_from_slice(data);
        Self::layout_to_bytes(&Self::layout_from_data(&d)).to_vec()
    }

    fn check(&self, codeword: &[u8]) -> CheckOutcome {
        assert_eq!(codeword.len(), 9, "codeword length mismatch");
        let layout = Self::bytes_to_layout(codeword);
        let (syndrome, parity_ok) = Self::syndrome(&layout);
        match (syndrome, parity_ok) {
            (0, true) => CheckOutcome::NoError,
            // Single-bit error (correctable, but check() doesn't repair).
            (_, false) => CheckOutcome::Corrected { symbols_fixed: 1 },
            // Non-zero syndrome with good parity: double error.
            (_, true) => CheckOutcome::DetectedUncorrectable { syndrome_weight: 2 },
        }
    }

    fn extract_data(&self, codeword: &[u8]) -> Vec<u8> {
        assert_eq!(codeword.len(), 9, "codeword length mismatch");
        Self::extract(&Self::bytes_to_layout(codeword)).to_vec()
    }
}

impl CorrectionCode for SecDed {
    fn check_and_repair(&self, codeword: &mut [u8]) -> CheckOutcome {
        assert_eq!(codeword.len(), 9, "codeword length mismatch");
        let mut layout = Self::bytes_to_layout(codeword);
        let (syndrome, parity_ok) = Self::syndrome(&layout);
        match (syndrome, parity_ok) {
            (0, true) => CheckOutcome::NoError,
            (0, false) => {
                // Extended parity bit itself flipped.
                layout[0] ^= 1;
                codeword.copy_from_slice(&Self::layout_to_bytes(&layout));
                CheckOutcome::Corrected { symbols_fixed: 1 }
            }
            (s, false) if s <= HAMMING_LEN => {
                layout[s] ^= 1;
                codeword.copy_from_slice(&Self::layout_to_bytes(&layout));
                CheckOutcome::Corrected { symbols_fixed: 1 }
            }
            _ => CheckOutcome::DetectedUncorrectable { syndrome_weight: 2 },
        }
    }

    fn correctable_symbols(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word() -> [u8; 8] {
        0x0123_4567_89AB_CDEFu64.to_le_bytes()
    }

    #[test]
    fn clean_roundtrip() {
        let code = SecDed::new();
        let cw = code.encode(&word());
        assert_eq!(cw.len(), 9);
        assert_eq!(code.check(&cw), CheckOutcome::NoError);
        assert_eq!(code.extract_data(&cw), word());
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let code = SecDed::new();
        let clean = code.encode(&word());
        for bit in 0..72 {
            let mut cw = clean.clone();
            cw[bit / 8] ^= 1 << (bit % 8);
            let outcome = code.check_and_repair(&mut cw);
            assert_eq!(
                outcome,
                CheckOutcome::Corrected { symbols_fixed: 1 },
                "bit {bit}"
            );
            assert_eq!(code.extract_data(&cw), word(), "bit {bit}");
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let code = SecDed::new();
        let clean = code.encode(&word());
        for a in 0..72 {
            for b in (a + 1)..72 {
                let mut cw = clean.clone();
                cw[a / 8] ^= 1 << (a % 8);
                cw[b / 8] ^= 1 << (b % 8);
                let outcome = code.check(&cw);
                assert!(
                    matches!(outcome, CheckOutcome::DetectedUncorrectable { .. }),
                    "bits {a},{b} gave {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn all_zero_and_all_one_data() {
        let code = SecDed::new();
        for data in [[0u8; 8], [0xFF; 8]] {
            let cw = code.encode(&data);
            assert_eq!(code.check(&cw), CheckOutcome::NoError);
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn overhead_is_12_5_percent() {
        let code = SecDed::new();
        assert!((code.overhead() - 0.125).abs() < 1e-12);
        assert_eq!(code.correctable_symbols(), 1);
    }
}
