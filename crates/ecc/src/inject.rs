//! Fault injection on codewords.
//!
//! The paper's motivation (§II) is that real failures span granularities:
//! single cells, pins, whole chips, shared board circuitry, channels and
//! memory controllers. [`FaultInjector`] synthesizes each of those
//! patterns on raw codeword bytes so the detection/correction coverage of
//! every code can be measured empirically (see the `ecc_coverage`
//! integration tests and the recovery path in `dve`).

use crate::gf::Gf256;
use dve_sim::rng::SplitMix64;

/// The granularity of an injected fault, mirroring Fig. 2's anatomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One bit flips (cell upset / cosmic ray).
    SingleBit,
    /// `count` independent random bits flip.
    MultiBit {
        /// Number of independent bit flips.
        count: usize,
    },
    /// All bits of one 8-bit symbol are randomized — a whole-chip error
    /// under the chipkill data layout (one chip contributes one symbol).
    ChipSymbol,
    /// `count` distinct symbols are randomized — multi-chip / shared
    /// board circuitry failure.
    MultiChip {
        /// Number of distinct symbols affected.
        count: usize,
    },
    /// A contiguous burst of `bits` bit-flips — a pin/lane or channel
    /// transmission error.
    Burst {
        /// Burst length in bits.
        bits: usize,
    },
    /// The entire codeword is randomized — memory-controller or channel
    /// hard failure (Dvé's headline recovery case).
    WholeCodeword,
}

/// Deterministic, seedable fault injector.
///
/// # Example
///
/// ```
/// use dve_ecc::inject::{FaultInjector, FaultKind};
///
/// let mut inj = FaultInjector::new(7);
/// let mut cw = vec![0u8; 18];
/// let touched = inj.inject(&mut cw, FaultKind::ChipSymbol);
/// assert_eq!(touched.len(), 1); // exactly one symbol corrupted
/// assert!(cw.iter().any(|&b| b != 0));
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// Creates an injector with a fixed seed (deterministic).
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: SplitMix64::new(seed),
        }
    }

    /// Injects `kind` into `codeword`, guaranteeing the codeword actually
    /// changes. Returns the byte indices touched (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `codeword` is empty, or if a multi-bit/multi-chip count
    /// exceeds what the codeword can hold.
    pub fn inject(&mut self, codeword: &mut [u8], kind: FaultKind) -> Vec<usize> {
        assert!(!codeword.is_empty(), "cannot inject into empty codeword");
        let mut touched = Vec::new();
        match kind {
            FaultKind::SingleBit => {
                let bit = self.rng.next_below(codeword.len() as u64 * 8) as usize;
                codeword[bit / 8] ^= 1 << (bit % 8);
                touched.push(bit / 8);
            }
            FaultKind::MultiBit { count } => {
                assert!(
                    count <= codeword.len() * 8,
                    "more bit flips than bits in the codeword"
                );
                let mut bits = std::collections::BTreeSet::new();
                while bits.len() < count {
                    bits.insert(self.rng.next_below(codeword.len() as u64 * 8) as usize);
                }
                for bit in bits {
                    codeword[bit / 8] ^= 1 << (bit % 8);
                    touched.push(bit / 8);
                }
            }
            FaultKind::ChipSymbol => {
                let sym = self.rng.next_below(codeword.len() as u64) as usize;
                codeword[sym] ^= self.nonzero_byte();
                touched.push(sym);
            }
            FaultKind::MultiChip { count } => {
                assert!(count <= codeword.len(), "more chips than symbols");
                let mut syms = std::collections::BTreeSet::new();
                while syms.len() < count {
                    syms.insert(self.rng.next_below(codeword.len() as u64) as usize);
                }
                for sym in syms {
                    codeword[sym] ^= self.nonzero_byte();
                    touched.push(sym);
                }
            }
            FaultKind::Burst { bits } => {
                assert!(
                    bits >= 1 && bits <= codeword.len() * 8,
                    "invalid burst length"
                );
                let start = self.rng.next_below((codeword.len() * 8 - bits + 1) as u64) as usize;
                // First and last bit of a burst flip by definition; the
                // interior flips randomly.
                for (i, bit) in (start..start + bits).enumerate() {
                    let flip = i == 0 || i == bits - 1 || self.rng.chance(0.5);
                    if flip {
                        codeword[bit / 8] ^= 1 << (bit % 8);
                        touched.push(bit / 8);
                    }
                }
            }
            FaultKind::WholeCodeword => {
                for (i, b) in codeword.iter_mut().enumerate() {
                    *b = self.rng.next_u64() as u8;
                    touched.push(i);
                }
                // Guarantee at least one byte differs (whole-codeword
                // randomization could in principle reproduce the input).
                let idx = self.rng.next_below(codeword.len() as u64) as usize;
                codeword[idx] ^= self.nonzero_byte();
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Corrupts exactly the given symbol (byte) positions, each with a
    /// fresh non-zero error value. Positions may repeat; each XOR uses an
    /// independent non-zero value, so a repeated position could in
    /// principle cancel — pass distinct positions for an exact error
    /// weight. Returns the touched indices (sorted, deduplicated).
    ///
    /// This is the deterministic-placement entry point used by fault
    /// campaigns: the *campaign* decides which chips failed, the injector
    /// only supplies error values.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn inject_symbols_at(&mut self, codeword: &mut [u8], positions: &[usize]) -> Vec<usize> {
        let mut touched = Vec::with_capacity(positions.len());
        for &pos in positions {
            assert!(pos < codeword.len(), "symbol position out of bounds");
            codeword[pos] ^= self.nonzero_byte();
            touched.push(pos);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Like [`inject_symbols_at`](Self::inject_symbols_at) but for
    /// 16-bit-symbol codewords laid out as big-endian byte pairs (the
    /// `Rs16Detect` layout): symbol `s` occupies bytes `2s..2s+2`.
    ///
    /// # Panics
    ///
    /// Panics if the codeword length is odd or a position is out of range.
    pub fn inject_symbols16_at(&mut self, codeword: &mut [u8], positions: &[usize]) -> Vec<usize> {
        assert!(
            codeword.len().is_multiple_of(2),
            "odd codeword for 16-bit symbols"
        );
        let mut touched = Vec::with_capacity(positions.len());
        for &pos in positions {
            assert!(
                pos * 2 + 1 < codeword.len(),
                "symbol position out of bounds"
            );
            let e = self.nonzero_u16();
            codeword[pos * 2] ^= (e >> 8) as u8;
            codeword[pos * 2 + 1] ^= e as u8;
            touched.push(pos);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    fn nonzero_byte(&mut self) -> u8 {
        // Any non-zero GF(2^8) element; generated via a random exponent so
        // the distribution is uniform over the 255 non-zero values.
        Gf256::alpha_pow(self.rng.next_below(255) as u32)
    }

    fn nonzero_u16(&mut self) -> u16 {
        // Uniform non-zero GF(2^16) element via rejection sampling.
        loop {
            let v = self.rng.next_u64() as u16;
            if v != 0 {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_changes_exactly_one_bit() {
        let mut inj = FaultInjector::new(1);
        for _ in 0..100 {
            let mut cw = vec![0u8; 18];
            inj.inject(&mut cw, FaultKind::SingleBit);
            let ones: u32 = cw.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn multibit_flips_exact_count() {
        let mut inj = FaultInjector::new(2);
        for count in [2usize, 3, 8, 17] {
            let mut cw = vec![0u8; 18];
            inj.inject(&mut cw, FaultKind::MultiBit { count });
            let ones: usize = cw.iter().map(|b| b.count_ones() as usize).sum();
            assert_eq!(ones, count);
        }
    }

    #[test]
    fn chip_symbol_touches_one_byte() {
        let mut inj = FaultInjector::new(3);
        for _ in 0..100 {
            let mut cw = vec![0u8; 18];
            let touched = inj.inject(&mut cw, FaultKind::ChipSymbol);
            assert_eq!(touched.len(), 1);
            assert_ne!(cw[touched[0]], 0);
            assert_eq!(cw.iter().filter(|&&b| b != 0).count(), 1);
        }
    }

    #[test]
    fn multichip_touches_distinct_symbols() {
        let mut inj = FaultInjector::new(4);
        let mut cw = vec![0u8; 18];
        let touched = inj.inject(&mut cw, FaultKind::MultiChip { count: 3 });
        assert_eq!(touched.len(), 3);
        assert_eq!(cw.iter().filter(|&&b| b != 0).count(), 3);
    }

    #[test]
    fn burst_confined_to_window() {
        let mut inj = FaultInjector::new(5);
        for _ in 0..200 {
            let mut cw = vec![0u8; 32];
            let touched = inj.inject(&mut cw, FaultKind::Burst { bits: 16 });
            assert!(!touched.is_empty());
            let lo = *touched.first().unwrap();
            let hi = *touched.last().unwrap();
            assert!(hi - lo <= 2, "burst of 16 bits spans at most 3 bytes");
        }
    }

    #[test]
    fn whole_codeword_always_differs() {
        let mut inj = FaultInjector::new(6);
        for _ in 0..100 {
            let orig = vec![0x42u8; 18];
            let mut cw = orig.clone();
            inj.inject(&mut cw, FaultKind::WholeCodeword);
            assert_ne!(cw, orig);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultInjector::new(99);
        let mut b = FaultInjector::new(99);
        let mut cw_a = vec![0u8; 18];
        let mut cw_b = vec![0u8; 18];
        a.inject(&mut cw_a, FaultKind::MultiBit { count: 5 });
        b.inject(&mut cw_b, FaultKind::MultiBit { count: 5 });
        assert_eq!(cw_a, cw_b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_codeword_rejected() {
        FaultInjector::new(0).inject(&mut [], FaultKind::SingleBit);
    }
}
