//! # dve-ecc — error detection and correction codes
//!
//! Dvé (ISCA 2021) decouples error *detection* (kept local, via ECC
//! codewords at the memory controller) from error *correction* (performed
//! by reading the replica on the other socket). This crate implements all
//! the codes the paper builds on or compares against:
//!
//! * [`hamming`] — SEC-DED (72,64) Hamming code: the classic single-error
//!   correct / double-error detect baseline ("SEC-DED" in Fig. 1).
//! * [`rs`] — Reed–Solomon codes over GF(2^8), the substrate of Chipkill.
//!   `Rs::new(18, 16, ..)` is the paper's RS(18,16,8) configuration
//!   (§IV-A); decoding implements Berlekamp–Massey + Chien + Forney, so
//!   the same type serves as a *correcting* Chipkill code or a
//!   *detect-only* DSD code depending on the [`rs::DecodePolicy`].
//! * [`rs16`] — detection-only Reed–Solomon over GF(2^16): the TSD
//!   (triple-symbol-detect) code the paper borrows from Multi-ECC.
//! * [`crc`] — DDR4 write-CRC (CRC-8 ATM), CRC-16/CCITT and CRC-32 bus
//!   codes used for channel error detection.
//! * [`code`] — the [`code::DetectionCode`] / [`code::CorrectionCode`]
//!   traits and the [`code::CheckOutcome`] vocabulary (`NoError`,
//!   `Corrected`, `DetectedUncorrectable`) shared with the memory
//!   controller model in `dve-dram`.
//! * [`inject`] — fault injection on codewords at bit, symbol, chip and
//!   burst granularity, used by the recovery tests and the empirical
//!   detection-coverage experiments.
//! * [`loghash`] — MemGuard-style incremental multiset log hashes, the
//!   alternative detection mechanism §IV points to for future work.
//!
//! # Example: detect with ECC, correct from the replica
//!
//! ```
//! use dve_ecc::code::{CheckOutcome, DetectionCode};
//! use dve_ecc::rs::{DecodePolicy, Rs};
//!
//! // The paper's RS(18,16) over 8-bit symbols, used detect-only (DSD).
//! let code = Rs::new(18, 16, DecodePolicy::DetectOnly);
//! let data: Vec<u8> = (0..16).collect();
//! let mut cw = code.encode(&data);
//! cw[3] ^= 0xA5; // a chip goes bad
//! assert!(matches!(code.check(&cw), CheckOutcome::DetectedUncorrectable { .. }));
//! // ...at which point Dvé reads the replica instead of reconstructing.
//! ```

pub mod code;
pub mod crc;
pub mod gf;
pub mod hamming;
pub mod inject;
pub mod loghash;
pub mod rs;
pub mod rs16;

pub use code::{CheckOutcome, CorrectionCode, DetectionCode};
pub use hamming::SecDed;
pub use rs::{DecodePolicy, Rs};
pub use rs16::Rs16Detect;
