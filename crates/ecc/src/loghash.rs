//! Incremental multiset log hashes — the MemGuard-style alternative
//! detection mechanism §IV mentions ("alternatively, incremental
//! multi-set log hashes can also be used to detect errors").
//!
//! The idea (Chen & Zhang, ISCA'14): the memory controller maintains two
//! incremental hashes — one over every value *written* to memory
//! (`WriteSet`) and one over every value *read back* (`ReadSet`), each
//! keyed by (address, data, per-location write counter). When the
//! verification epoch ends, the controller re-reads all live locations;
//! if memory was honest, the two multiset hashes must be equal. The hash
//! must be *incremental* (update in O(1) per operation) and
//! *multiset-collision-resistant*; we use the standard add-multiply
//! construction over a 128-bit modulus (sufficient for a simulation
//! substrate; MemGuard itself uses AES-based MSet-XOR/Add hashes).
//!
//! Dvé can pair this with replica-based correction exactly like its
//! ECC-based detection: a mismatch at epoch end marks the epoch's data
//! suspect and recovery re-reads from the replica.

use std::collections::HashMap;

/// Large prime modulus (2^89 - 1, a Mersenne prime) for the multiset
/// hash accumulator.
const MODULUS: u128 = (1u128 << 89) - 1;

fn mix(addr: u64, data: u64, version: u64) -> u128 {
    // SplitMix-style avalanche of the triple into a residue.
    let mut z = (addr as u128) ^ ((data as u128) << 64 >> 3) ^ ((version as u128) << 89 >> 19);
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835);
    z ^= z >> 67;
    z = z.wrapping_mul(0xC2B2_AE3D_27D4_EB4F_1656_67B1_E3FA_9D4B);
    z ^= z >> 43;
    (z % (MODULUS - 1)) + 1 // never zero
}

/// An incremental multiset hash: order-independent, O(1) updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultisetHash {
    acc: u128,
}

impl Default for MultisetHash {
    fn default() -> Self {
        MultisetHash { acc: 1 }
    }
}

impl MultisetHash {
    /// The hash of the empty multiset.
    pub fn new() -> MultisetHash {
        MultisetHash::default()
    }

    /// Adds one element (multiplication in the group: order-independent).
    pub fn add(&mut self, addr: u64, data: u64, version: u64) {
        self.acc = mul_mod(self.acc, mix(addr, data, version));
    }

    /// The accumulator value.
    pub fn value(&self) -> u128 {
        self.acc
    }
}

/// Multiplication mod 2^89 − 1 by binary (Russian-peasant) reduction:
/// both operands are < 2^89, so doubling never overflows u128.
fn mul_mod(mut a: u128, mut b: u128) -> u128 {
    a %= MODULUS;
    let mut acc: u128 = 0;
    while b > 0 {
        if b & 1 == 1 {
            acc = (acc + a) % MODULUS;
        }
        a = (a << 1) % MODULUS;
        b >>= 1;
    }
    if acc == 0 {
        1 // stay inside the multiplicative group
    } else {
        acc
    }
}

/// The MemGuard-style memory integrity checker for one controller.
///
/// # Example
///
/// ```
/// use dve_ecc::loghash::MemGuard;
///
/// let mut mg = MemGuard::new();
/// mg.write(0x40, 7);
/// mg.write(0x80, 9);
/// assert_eq!(mg.read(0x40), Some(7));
/// // End of epoch: audit all live locations against honest memory.
/// let honest: Vec<(u64, u64)> = vec![(0x40, 7), (0x80, 9)];
/// assert!(mg.verify_epoch(honest.into_iter()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemGuard {
    write_set: MultisetHash,
    read_set: MultisetHash,
    /// Shadow of current (value, version) per address — in hardware this
    /// is the DRAM itself plus a small per-region version counter; here
    /// it doubles as the functional memory.
    live: HashMap<u64, (u64, u64)>,
}

impl MemGuard {
    /// Creates an empty checker.
    pub fn new() -> MemGuard {
        MemGuard::default()
    }

    /// Records a write of `data` to `addr`.
    pub fn write(&mut self, addr: u64, data: u64) {
        // Reading out the old value moves it from WriteSet to ReadSet.
        if let Some(&(old, ver)) = self.live.get(&addr) {
            self.read_set.add(addr, old, ver);
        }
        let version = self.live.get(&addr).map(|&(_, v)| v + 1).unwrap_or(0);
        self.write_set.add(addr, data, version);
        self.live.insert(addr, (data, version));
    }

    /// Records a read of `addr`, returning the live value (None if never
    /// written). Reads do not consume the entry (the value stays live);
    /// only overwrites and the final audit move entries to the ReadSet.
    pub fn read(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).map(|&(v, _)| v)
    }

    /// Ends the epoch: replays `memory_contents` (address, value) as the
    /// audit read sweep and checks the multiset hashes match. Returns
    /// `true` if memory is consistent with the write log.
    ///
    /// A corrupted location (value differing from what was written, or a
    /// replayed stale version) makes the hashes diverge with
    /// overwhelming probability.
    pub fn verify_epoch(mut self, memory_contents: impl Iterator<Item = (u64, u64)>) -> bool {
        let mut audited = 0usize;
        for (addr, value) in memory_contents {
            let Some(&(_, ver)) = self.live.get(&addr) else {
                return false; // memory invented an address
            };
            self.read_set.add(addr, value, ver);
            audited += 1;
        }
        audited == self.live.len() && self.read_set.value() == self.write_set.value()
    }

    /// Number of live (written) locations.
    pub fn live_locations(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(mg: &MemGuard) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = mg.live.iter().map(|(&a, &(d, _))| (a, d)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_epoch_verifies() {
        assert!(MemGuard::new().verify_epoch(std::iter::empty()));
    }

    #[test]
    fn honest_memory_verifies() {
        let mut mg = MemGuard::new();
        for a in 0..100u64 {
            mg.write(a * 64, a * 3 + 1);
        }
        // Overwrites too.
        for a in 0..50u64 {
            mg.write(a * 64, a + 1000);
        }
        let contents = honest(&mg);
        assert_eq!(mg.live_locations(), 100);
        assert!(mg.verify_epoch(contents.into_iter()));
    }

    #[test]
    fn corrupted_value_detected() {
        let mut mg = MemGuard::new();
        for a in 0..100u64 {
            mg.write(a * 64, a);
        }
        let mut contents = honest(&mg);
        contents[37].1 ^= 0x4; // silent bit flip in DRAM
        assert!(!mg.verify_epoch(contents.into_iter()));
    }

    #[test]
    fn dropped_location_detected() {
        let mut mg = MemGuard::new();
        mg.write(0, 1);
        mg.write(64, 2);
        assert!(!mg.clone().verify_epoch(vec![(0, 1)].into_iter()));
    }

    #[test]
    fn replayed_stale_value_detected() {
        // Memory returns the OLD value of an overwritten location.
        let mut mg = MemGuard::new();
        mg.write(0, 111);
        mg.write(0, 222);
        assert!(!mg.clone().verify_epoch(vec![(0, 111)].into_iter()));
        assert!(mg.verify_epoch(vec![(0, 222)].into_iter()));
    }

    #[test]
    fn invented_address_detected() {
        let mut mg = MemGuard::new();
        mg.write(0, 1);
        assert!(!mg.verify_epoch(vec![(0, 1), (64, 9)].into_iter()));
    }

    #[test]
    fn multiset_hash_is_order_independent() {
        let mut a = MultisetHash::new();
        let mut b = MultisetHash::new();
        a.add(1, 10, 0);
        a.add(2, 20, 0);
        b.add(2, 20, 0);
        b.add(1, 10, 0);
        assert_eq!(a.value(), b.value());
        // And sensitive to every component.
        let mut c = MultisetHash::new();
        c.add(1, 10, 1);
        c.add(2, 20, 0);
        assert_ne!(a.value(), c.value());
    }
}
