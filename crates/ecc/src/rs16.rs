//! Detection-only Reed–Solomon over GF(2^16) — the paper's TSD code.
//!
//! §IV of the paper equips Dvé with a *Triple Symbol Detect* (TSD) code,
//! "provided using 16-bit Reed–Solomon code as in Multi-ECC", using the
//! check-symbol budget freed by relinquishing local correction. With 3
//! check symbols over GF(2^16) the code has minimum distance 4 and
//! guarantees detection of any 3 symbol errors; random larger errors
//! escape with probability ≈ 2^-48.
//!
//! The codeword is byte-oriented at the API boundary (to match
//! [`DetectionCode`]): data bytes are packed into big-endian 16-bit
//! symbols, and the 3 parity symbols are appended as 6 bytes.
//!
//! # Hot-path design
//!
//! This codec sits on the data path of every Dvé+TSD scrub read and
//! campaign trial, so since the decode-pipeline overhaul:
//!
//! * the generator polynomial and syndrome roots are computed **once in
//!   the constructor** (previously the generator was rebuilt per
//!   `encode` call);
//! * [`Rs16Detect::check`] walks the codeword in a single fused pass with
//!   no symbol-vector allocation — the `i = 0` syndrome is a plain XOR
//!   fold, `i = 1` a table-free α-multiply Horner loop, and the rest
//!   table-driven [`Gf16::mul`] Horner steps;
//! * [`Rs16Detect::encode_into`] writes parity straight into the caller's
//!   buffer, allocation-free, using a fixed-size LFSR register when the
//!   code has ≤ [`MAX_INLINE_CHECK_SYMBOLS`] check symbols (the paper's
//!   TSD has 3).

use crate::code::{CheckOutcome, DetectionCode};
use crate::gf::{bitslice, Gf16};

/// Check-symbol count up to which encode/check run entirely on
/// fixed-size stack registers (no heap in any path). The paper's TSD
/// uses 3.
pub const MAX_INLINE_CHECK_SYMBOLS: usize = 8;

/// A detection-only RS code over GF(2^16) with a configurable number of
/// check symbols (3 for the paper's TSD).
///
/// # Example
///
/// ```
/// use dve_ecc::rs16::Rs16Detect;
/// use dve_ecc::code::{CheckOutcome, DetectionCode};
///
/// let tsd = Rs16Detect::tsd(64); // 64-byte cache line + 3×16-bit checks
/// let data = vec![0x5A; 64];
/// let mut cw = tsd.encode(&data);
/// cw[10] ^= 0x01;
/// cw[20] ^= 0x80;
/// cw[30] ^= 0xFF; // three independent symbol errors
/// assert!(matches!(cw.len(), 70));
/// assert!(!tsd.check(&cw).is_good());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rs16Detect {
    data_bytes: usize,
    check_symbols: usize,
    /// g(x) = Π (x − α^i), i in 0..check_symbols, highest degree first —
    /// built once at construction.
    generator: Vec<u16>,
    /// Syndrome roots `α^i` for i in 0..check_symbols.
    roots: Vec<u16>,
    /// Discrete logs of `generator[1..]` when `check_symbols == 3` (the
    /// paper's TSD) and all three coefficients are non-zero: enables the
    /// register-resident three-tap LFSR encode fast path.
    gen_log3: Option<(u16, u16, u16)>,
}

impl Rs16Detect {
    /// Creates a detection code over `data_bytes` of data with
    /// `check_symbols` 16-bit check symbols. The generator polynomial and
    /// syndrome roots are precomputed here; encode/check are
    /// allocation-free afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is zero or odd, if `check_symbols` is zero,
    /// or if the total symbol count exceeds the field bound (65535).
    pub fn new(data_bytes: usize, check_symbols: usize) -> Rs16Detect {
        assert!(
            data_bytes > 0 && data_bytes.is_multiple_of(2),
            "data must be a whole number of 16-bit symbols"
        );
        assert!(check_symbols > 0, "need at least one check symbol");
        assert!(
            data_bytes / 2 + check_symbols <= 65535,
            "codeword exceeds GF(2^16) length bound"
        );
        let generator = Self::generator_poly(check_symbols);
        let gen_log3 =
            if check_symbols == 3 && generator[1] != 0 && generator[2] != 0 && generator[3] != 0 {
                Some((
                    Gf16::log(generator[1]),
                    Gf16::log(generator[2]),
                    Gf16::log(generator[3]),
                ))
            } else {
                None
            };
        Rs16Detect {
            data_bytes,
            check_symbols,
            generator,
            roots: (0..check_symbols)
                .map(|i| Gf16::alpha_pow(i as u32))
                .collect(),
            gen_log3,
        }
    }

    /// The paper's TSD configuration: 3 check symbols (triple symbol
    /// detect) over a `data_bytes` payload.
    pub fn tsd(data_bytes: usize) -> Rs16Detect {
        Rs16Detect::new(data_bytes, 3)
    }

    /// Number of 16-bit check symbols.
    pub fn check_symbols(&self) -> usize {
        self.check_symbols
    }

    /// Guaranteed symbol-error detection capability (= check symbols).
    pub fn detectable_symbols(&self) -> usize {
        self.check_symbols
    }

    /// g(x) = Π (x − α^i), i in 0..nsym, highest degree first.
    fn generator_poly(nsym: usize) -> Vec<u16> {
        let mut g = vec![1u16];
        for i in 0..nsym {
            let root = Gf16::alpha_pow(i as u32);
            let mut next = vec![0u16; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j] ^= c;
                next[j + 1] ^= Gf16::mul(c, root);
            }
            g = next;
        }
        g
    }

    /// Runs the systematic LFSR over the data symbols, leaving the parity
    /// in `rem` (`rem.len() == check_symbols`, zeroed by the caller).
    fn parity_into(&self, data: &[u8], rem: &mut [u16]) {
        // Three-tap fast path (the paper's TSD): registers in locals,
        // generator logs precomputed, one log load + three antilog loads
        // per data symbol — no rotate, no slice writes.
        if let Some((lg1, lg2, lg3)) = self.gen_log3 {
            let mut r0 = 0u16;
            let mut r1 = 0u16;
            let mut r2 = 0u16;
            for pair in data.chunks_exact(2) {
                let d = u16::from_be_bytes([pair[0], pair[1]]);
                let coef = d ^ r0;
                if coef != 0 {
                    let lc = Gf16::log(coef);
                    r0 = r1 ^ Gf16::exp_sum(lc, lg1);
                    r1 = r2 ^ Gf16::exp_sum(lc, lg2);
                    r2 = Gf16::exp_sum(lc, lg3);
                } else {
                    r0 = r1;
                    r1 = r2;
                    r2 = 0;
                }
            }
            rem[0] = r0;
            rem[1] = r1;
            rem[2] = r2;
            return;
        }
        let nsym = self.check_symbols;
        for pair in data.chunks_exact(2) {
            let d = u16::from_be_bytes([pair[0], pair[1]]);
            let coef = d ^ rem[0];
            rem.rotate_left(1);
            rem[nsym - 1] = 0;
            if coef != 0 {
                // generator[0] == 1 (monic); skip it.
                Gf16::fma_slice(rem, &self.generator[1..], coef);
            }
        }
    }

    /// Syndrome pass: fills `syn[..check_symbols]` with S_i = C(α^i) in a
    /// single fused walk over the codeword bytes. Returns the number of
    /// non-zero syndromes.
    fn syndromes_into(&self, codeword: &[u8], syn: &mut [u16]) -> usize {
        syn.fill(0);
        let nsym = self.check_symbols;
        // TSD fast path: all three syndromes in one fused, table-free
        // pass. S_0 is a XOR fold; S_1 and S_2 are Horner walks with
        // roots α and α² — one and two shift-reduce α-multiplies per
        // symbol respectively, all in registers.
        if nsym == 3 {
            let mut s0 = 0u16;
            let mut s1 = 0u16;
            let mut s2 = 0u16;
            for pair in codeword.chunks_exact(2) {
                let c = u16::from_be_bytes([pair[0], pair[1]]);
                s0 ^= c;
                s1 = Gf16::mul_alpha(s1) ^ c;
                s2 = Gf16::mul_alpha(Gf16::mul_alpha(s2)) ^ c;
            }
            syn[0] = s0;
            syn[1] = s1;
            syn[2] = s2;
            return syn[..3].iter().filter(|&&s| s != 0).count();
        }
        // General fused Horner pass: S_0 is a plain XOR fold, S_1
        // multiplies by α without touching the tables, the rest use
        // table muls.
        let mut s0 = 0u16;
        let mut s1 = 0u16;
        for pair in codeword.chunks_exact(2) {
            let c = u16::from_be_bytes([pair[0], pair[1]]);
            s0 ^= c;
            s1 = Gf16::mul_alpha(s1) ^ c;
        }
        syn[0] = s0;
        if nsym >= 2 {
            syn[1] = s1;
        }
        for (i, s) in syn.iter_mut().enumerate().take(nsym).skip(2) {
            let root = self.roots[i];
            let mut acc = 0u16;
            for pair in codeword.chunks_exact(2) {
                let c = u16::from_be_bytes([pair[0], pair[1]]);
                acc = Gf16::mul(acc, root) ^ c;
            }
            *s = acc;
        }
        syn[..nsym].iter().filter(|&&s| s != 0).count()
    }

    fn syndrome_weight(&self, codeword: &[u8]) -> usize {
        if self.check_symbols <= MAX_INLINE_CHECK_SYMBOLS {
            let mut syn = [0u16; MAX_INLINE_CHECK_SYMBOLS];
            self.syndromes_into(codeword, &mut syn[..self.check_symbols])
        } else {
            let mut syn = vec![0u16; self.check_symbols];
            self.syndromes_into(codeword, &mut syn)
        }
    }

    /// Encodes `count` datawords packed back-to-back in `datas` into
    /// `codewords` (`count * codeword_len()` bytes), reusing the
    /// three-tap LFSR fast path per word. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `datas.len()` is not a multiple of `data_len()` or the
    /// codeword buffer does not hold exactly the same number of words.
    pub fn encode_batch_into(&self, datas: &[u8], codewords: &mut [u8]) {
        assert_eq!(
            datas.len() % self.data_bytes,
            0,
            "datas not a multiple of data_len"
        );
        let count = datas.len() / self.data_bytes;
        let cw_len = self.codeword_len();
        assert_eq!(
            codewords.len(),
            count * cw_len,
            "codeword buffer/count mismatch"
        );
        for (data, cw) in datas
            .chunks_exact(self.data_bytes)
            .zip(codewords.chunks_exact_mut(cw_len))
        {
            self.encode_into(data, cw);
        }
    }

    /// Bitsliced TSD syndrome screen over a batch of codewords packed
    /// back-to-back: pushes one bitmask per 64-codeword block into
    /// `dirty` (cleared first), bit `l` set iff lane `l` has a non-zero
    /// syndrome. Exact — all three TSD syndromes are computed, as
    /// GF(2^16) bit-planes ([`bitslice::Planes16`]): per symbol column
    /// the whole 64-lane block costs three plane XORs and three α-plane
    /// rotations instead of 64 scalar Horner steps.
    ///
    /// # Panics
    ///
    /// Panics if `check_symbols != 3` or `codewords.len()` is not a
    /// multiple of `codeword_len()`.
    pub fn dirty_mask_bitsliced(&self, codewords: &[u8], dirty: &mut Vec<u64>) {
        assert_eq!(self.check_symbols, 3, "bitsliced screen is the TSD path");
        let cw_len = self.codeword_len();
        assert_eq!(
            codewords.len() % cw_len,
            0,
            "codewords not a multiple of codeword_len"
        );
        let nsyms = cw_len / 2;
        dirty.clear();
        for block in codewords.chunks(bitslice::LANES * cw_len) {
            let lanes = block.len() / cw_len;
            let mut s0: bitslice::Planes16 = [0; 16];
            let mut s1: bitslice::Planes16 = [0; 16];
            let mut s2: bitslice::Planes16 = [0; 16];
            let mut col = [0u16; bitslice::LANES];
            for j in 0..nsyms {
                for (l, c) in col[..lanes].iter_mut().enumerate() {
                    let base = l * cw_len + 2 * j;
                    *c = u16::from_be_bytes([block[base], block[base + 1]]);
                }
                let planes = bitslice::pack16(&col[..lanes]);
                bitslice::xor16(&mut s0, &planes);
                bitslice::mul_alpha16(&mut s1);
                bitslice::xor16(&mut s1, &planes);
                bitslice::mul_alpha16(&mut s2);
                bitslice::mul_alpha16(&mut s2);
                bitslice::xor16(&mut s2, &planes);
            }
            dirty.push(
                bitslice::nonzero16(&s0) | bitslice::nonzero16(&s1) | bitslice::nonzero16(&s2),
            );
        }
    }

    /// Checks `count` codewords packed back-to-back, pushing one
    /// [`CheckOutcome`] per codeword into `outcomes` (cleared first).
    /// Behaviourally identical to calling [`DetectionCode::check`] per
    /// word; for the TSD configuration the fault-free majority is
    /// screened out by [`Rs16Detect::dirty_mask_bitsliced`] and only
    /// flagged lanes take the scalar syndrome pass (for the exact
    /// syndrome weight).
    ///
    /// # Panics
    ///
    /// Panics if `codewords.len()` is not a multiple of
    /// `codeword_len()`.
    pub fn check_batch(&self, codewords: &[u8], outcomes: &mut Vec<CheckOutcome>) -> usize {
        let cw_len = self.codeword_len();
        assert_eq!(
            codewords.len() % cw_len,
            0,
            "codewords not a multiple of codeword_len"
        );
        let count = codewords.len() / cw_len;
        outcomes.clear();
        outcomes.reserve(count);
        if self.check_symbols != 3 {
            for cw in codewords.chunks_exact(cw_len) {
                outcomes.push(self.check(cw));
            }
            return count;
        }
        let mut dirty = Vec::new();
        self.dirty_mask_bitsliced(codewords, &mut dirty);
        for (b, block) in codewords.chunks(bitslice::LANES * cw_len).enumerate() {
            let mask = dirty[b];
            for (l, cw) in block.chunks_exact(cw_len).enumerate() {
                if mask & (1 << l) == 0 {
                    outcomes.push(CheckOutcome::NoError);
                } else {
                    outcomes.push(self.check(cw));
                }
            }
        }
        count
    }
}

impl DetectionCode for Rs16Detect {
    fn data_len(&self) -> usize {
        self.data_bytes
    }

    fn codeword_len(&self) -> usize {
        self.data_bytes + 2 * self.check_symbols
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut cw = vec![0u8; self.codeword_len()];
        self.encode_into(data, &mut cw);
        cw
    }

    fn encode_into(&self, data: &[u8], codeword: &mut [u8]) {
        assert_eq!(data.len(), self.data_bytes, "dataword length mismatch");
        assert_eq!(
            codeword.len(),
            self.codeword_len(),
            "codeword length mismatch"
        );
        codeword[..self.data_bytes].copy_from_slice(data);
        let parity_bytes = &mut codeword[self.data_bytes..];
        if self.check_symbols <= MAX_INLINE_CHECK_SYMBOLS {
            let mut rem = [0u16; MAX_INLINE_CHECK_SYMBOLS];
            let rem = &mut rem[..self.check_symbols];
            self.parity_into(data, rem);
            for (pair, p) in parity_bytes.chunks_exact_mut(2).zip(rem.iter()) {
                pair.copy_from_slice(&p.to_be_bytes());
            }
        } else {
            let mut rem = vec![0u16; self.check_symbols];
            self.parity_into(data, &mut rem);
            for (pair, p) in parity_bytes.chunks_exact_mut(2).zip(rem.iter()) {
                pair.copy_from_slice(&p.to_be_bytes());
            }
        }
    }

    fn check(&self, codeword: &[u8]) -> CheckOutcome {
        assert_eq!(
            codeword.len(),
            self.codeword_len(),
            "codeword length mismatch"
        );
        let weight = self.syndrome_weight(codeword);
        if weight == 0 {
            CheckOutcome::NoError
        } else {
            CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Vec<u8> {
        (0..64u8)
            .map(|i| i.wrapping_mul(73).wrapping_add(5))
            .collect()
    }

    #[test]
    fn clean_line_passes() {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&line());
        assert_eq!(cw.len(), 70);
        assert_eq!(tsd.check(&cw), CheckOutcome::NoError);
        assert_eq!(tsd.extract_data(&cw), line());
    }

    #[test]
    fn encode_into_matches_encode() {
        for check_symbols in [1usize, 2, 3, 4, 8, 9, 11] {
            let code = Rs16Detect::new(32, check_symbols);
            let data: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(9) ^ 0x5A).collect();
            let mut cw = vec![0xCCu8; code.codeword_len()]; // dirty buffer
            code.encode_into(&data, &mut cw);
            assert_eq!(cw, code.encode(&data), "check_symbols={check_symbols}");
            assert_eq!(code.check(&cw), CheckOutcome::NoError);
        }
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&line());
        for byte in 0..cw.len() {
            for bit in 0..8 {
                let mut bad = cw.clone();
                bad[byte] ^= 1 << bit;
                assert!(!tsd.check(&bad).is_good(), "byte {byte} bit {bit} escaped");
            }
        }
    }

    #[test]
    fn detects_three_symbol_errors_exhaustive_sample() {
        let tsd = Rs16Detect::tsd(16); // small payload keeps this cheap
        let data: Vec<u8> = (0..16).collect();
        let cw = tsd.encode(&data);
        let nsyms = cw.len() / 2;
        // All 3-symbol position combinations with a fixed error pattern.
        for a in 0..nsyms {
            for b in (a + 1)..nsyms {
                for c in (b + 1)..nsyms {
                    let mut bad = cw.clone();
                    bad[2 * a] ^= 0x13;
                    bad[2 * b + 1] ^= 0x77;
                    bad[2 * c] ^= 0xE1;
                    assert!(!tsd.check(&bad).is_good(), "positions {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn four_symbol_random_errors_rarely_but_possibly_escape() {
        // With 3 16-bit checks, escape probability is ~2^-48: none of
        // these 2000 random 4-symbol corruptions should pass.
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&line());
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let mut bad = cw.clone();
            let mut positions = std::collections::HashSet::new();
            while positions.len() < 4 {
                positions.insert((next() % (bad.len() as u64 / 2)) as usize);
            }
            for p in positions {
                let e = (next() & 0xFFFF) as u16;
                let e = if e == 0 { 1 } else { e };
                let cur = u16::from_be_bytes([bad[2 * p], bad[2 * p + 1]]) ^ e;
                bad[2 * p..2 * p + 2].copy_from_slice(&cur.to_be_bytes());
            }
            assert!(!tsd.check(&bad).is_good());
        }
    }

    #[test]
    fn wide_codes_beyond_inline_register_still_roundtrip() {
        // check_symbols > MAX_INLINE_CHECK_SYMBOLS exercises the heap
        // fallback registers.
        let code = Rs16Detect::new(64, MAX_INLINE_CHECK_SYMBOLS + 3);
        let cw = code.encode(&line());
        assert_eq!(code.check(&cw), CheckOutcome::NoError);
        let mut bad = cw.clone();
        bad[1] ^= 0x40;
        assert!(!code.check(&bad).is_good());
    }

    #[test]
    fn overhead_is_lower_than_chipkill_for_cache_line() {
        // 6 bytes over 64 = 9.4% < chipkill's 12.5% — this is the "extra
        // code space" argument of §III.
        let tsd = Rs16Detect::tsd(64);
        assert!(tsd.overhead() < 0.125);
        assert_eq!(tsd.detectable_symbols(), 3);
        assert_eq!(tsd.check_symbols(), 3);
    }

    #[test]
    #[should_panic(expected = "whole number of 16-bit symbols")]
    fn odd_payload_rejected() {
        Rs16Detect::tsd(63);
    }
}
