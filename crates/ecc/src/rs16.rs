//! Detection-only Reed–Solomon over GF(2^16) — the paper's TSD code.
//!
//! §IV of the paper equips Dvé with a *Triple Symbol Detect* (TSD) code,
//! "provided using 16-bit Reed–Solomon code as in Multi-ECC", using the
//! check-symbol budget freed by relinquishing local correction. With 3
//! check symbols over GF(2^16) the code has minimum distance 4 and
//! guarantees detection of any 3 symbol errors; random larger errors
//! escape with probability ≈ 2^-48.
//!
//! The codeword is byte-oriented at the API boundary (to match
//! [`DetectionCode`]): data bytes are packed into big-endian 16-bit
//! symbols, and the 3 parity symbols are appended as 6 bytes.

use crate::code::{CheckOutcome, DetectionCode};
use crate::gf::Gf16;

/// A detection-only RS code over GF(2^16) with a configurable number of
/// check symbols (3 for the paper's TSD).
///
/// # Example
///
/// ```
/// use dve_ecc::rs16::Rs16Detect;
/// use dve_ecc::code::{CheckOutcome, DetectionCode};
///
/// let tsd = Rs16Detect::tsd(64); // 64-byte cache line + 3×16-bit checks
/// let data = vec![0x5A; 64];
/// let mut cw = tsd.encode(&data);
/// cw[10] ^= 0x01;
/// cw[20] ^= 0x80;
/// cw[30] ^= 0xFF; // three independent symbol errors
/// assert!(matches!(cw.len(), 70));
/// assert!(!tsd.check(&cw).is_good());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rs16Detect {
    data_bytes: usize,
    check_symbols: usize,
}

impl Rs16Detect {
    /// Creates a detection code over `data_bytes` of data with
    /// `check_symbols` 16-bit check symbols.
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is zero or odd, if `check_symbols` is zero,
    /// or if the total symbol count exceeds the field bound (65535).
    pub fn new(data_bytes: usize, check_symbols: usize) -> Rs16Detect {
        assert!(
            data_bytes > 0 && data_bytes.is_multiple_of(2),
            "data must be a whole number of 16-bit symbols"
        );
        assert!(check_symbols > 0, "need at least one check symbol");
        assert!(
            data_bytes / 2 + check_symbols <= 65535,
            "codeword exceeds GF(2^16) length bound"
        );
        Rs16Detect {
            data_bytes,
            check_symbols,
        }
    }

    /// The paper's TSD configuration: 3 check symbols (triple symbol
    /// detect) over a `data_bytes` payload.
    pub fn tsd(data_bytes: usize) -> Rs16Detect {
        Rs16Detect::new(data_bytes, 3)
    }

    /// Number of 16-bit check symbols.
    pub fn check_symbols(&self) -> usize {
        self.check_symbols
    }

    /// Guaranteed symbol-error detection capability (= check symbols).
    pub fn detectable_symbols(&self) -> usize {
        self.check_symbols
    }

    fn to_symbols(&self, bytes: &[u8]) -> Vec<u16> {
        bytes
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect()
    }

    /// g(x) = Π (x − α^i), i in 0..check_symbols, highest degree first.
    fn generator(&self) -> Vec<u16> {
        let mut g = vec![1u16];
        for i in 0..self.check_symbols {
            let root = Gf16::alpha_pow(i as u32);
            let mut next = vec![0u16; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j] ^= c;
                next[j + 1] ^= Gf16::mul(c, root);
            }
            g = next;
        }
        g
    }

    fn parity(&self, data_syms: &[u16]) -> Vec<u16> {
        let g = self.generator();
        let nsym = self.check_symbols;
        let mut rem = vec![0u16; nsym];
        for &d in data_syms {
            let coef = d ^ rem[0];
            rem.rotate_left(1);
            rem[nsym - 1] = 0;
            if coef != 0 {
                for (i, r) in rem.iter_mut().enumerate() {
                    *r ^= Gf16::mul(g[i + 1], coef);
                }
            }
        }
        rem
    }

    fn syndrome_weight(&self, codeword: &[u8]) -> usize {
        let syms = self.to_symbols(codeword);
        let mut weight = 0;
        for i in 0..self.check_symbols {
            let x = Gf16::alpha_pow(i as u32);
            let mut acc = 0u16;
            for &c in &syms {
                acc = Gf16::add(Gf16::mul(acc, x), c);
            }
            if acc != 0 {
                weight += 1;
            }
        }
        weight
    }
}

impl DetectionCode for Rs16Detect {
    fn data_len(&self) -> usize {
        self.data_bytes
    }

    fn codeword_len(&self) -> usize {
        self.data_bytes + 2 * self.check_symbols
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.data_bytes, "dataword length mismatch");
        let syms = self.to_symbols(data);
        let parity = self.parity(&syms);
        let mut cw = Vec::with_capacity(self.codeword_len());
        cw.extend_from_slice(data);
        for p in parity {
            cw.extend_from_slice(&p.to_be_bytes());
        }
        cw
    }

    fn check(&self, codeword: &[u8]) -> CheckOutcome {
        assert_eq!(
            codeword.len(),
            self.codeword_len(),
            "codeword length mismatch"
        );
        let weight = self.syndrome_weight(codeword);
        if weight == 0 {
            CheckOutcome::NoError
        } else {
            CheckOutcome::DetectedUncorrectable {
                syndrome_weight: weight,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Vec<u8> {
        (0..64u8)
            .map(|i| i.wrapping_mul(73).wrapping_add(5))
            .collect()
    }

    #[test]
    fn clean_line_passes() {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&line());
        assert_eq!(cw.len(), 70);
        assert_eq!(tsd.check(&cw), CheckOutcome::NoError);
        assert_eq!(tsd.extract_data(&cw), line());
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&line());
        for byte in 0..cw.len() {
            for bit in 0..8 {
                let mut bad = cw.clone();
                bad[byte] ^= 1 << bit;
                assert!(!tsd.check(&bad).is_good(), "byte {byte} bit {bit} escaped");
            }
        }
    }

    #[test]
    fn detects_three_symbol_errors_exhaustive_sample() {
        let tsd = Rs16Detect::tsd(16); // small payload keeps this cheap
        let data: Vec<u8> = (0..16).collect();
        let cw = tsd.encode(&data);
        let nsyms = cw.len() / 2;
        // All 3-symbol position combinations with a fixed error pattern.
        for a in 0..nsyms {
            for b in (a + 1)..nsyms {
                for c in (b + 1)..nsyms {
                    let mut bad = cw.clone();
                    bad[2 * a] ^= 0x13;
                    bad[2 * b + 1] ^= 0x77;
                    bad[2 * c] ^= 0xE1;
                    assert!(!tsd.check(&bad).is_good(), "positions {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn four_symbol_random_errors_rarely_but_possibly_escape() {
        // With 3 16-bit checks, escape probability is ~2^-48: none of
        // these 2000 random 4-symbol corruptions should pass.
        let tsd = Rs16Detect::tsd(64);
        let cw = tsd.encode(&line());
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let mut bad = cw.clone();
            let mut positions = std::collections::HashSet::new();
            while positions.len() < 4 {
                positions.insert((next() % (bad.len() as u64 / 2)) as usize);
            }
            for p in positions {
                let e = (next() & 0xFFFF) as u16;
                let e = if e == 0 { 1 } else { e };
                let cur = u16::from_be_bytes([bad[2 * p], bad[2 * p + 1]]) ^ e;
                bad[2 * p..2 * p + 2].copy_from_slice(&cur.to_be_bytes());
            }
            assert!(!tsd.check(&bad).is_good());
        }
    }

    #[test]
    fn overhead_is_lower_than_chipkill_for_cache_line() {
        // 6 bytes over 64 = 9.4% < chipkill's 12.5% — this is the "extra
        // code space" argument of §III.
        let tsd = Rs16Detect::tsd(64);
        assert!(tsd.overhead() < 0.125);
        assert_eq!(tsd.detectable_symbols(), 3);
        assert_eq!(tsd.check_symbols(), 3);
    }

    #[test]
    #[should_panic(expected = "whole number of 16-bit symbols")]
    fn odd_payload_rejected() {
        Rs16Detect::tsd(63);
    }
}
