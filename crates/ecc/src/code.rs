//! Shared vocabulary for error-control codes.
//!
//! Dvé's central architectural move is that *detection* and *correction*
//! are different operations with different providers: every code in this
//! crate implements [`DetectionCode`]; only codes that can reconstruct
//! data locally (SEC-DED, Chipkill RS) also implement [`CorrectionCode`].
//! The memory-controller model consumes these traits, and when a
//! detect-only code flags a codeword, the Dvé recovery path reads the
//! replica instead.

use std::fmt;

/// Result of checking (and possibly repairing) a codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Codeword is consistent; no error observed.
    NoError,
    /// An error was detected and repaired in place by the local code.
    /// Dvé logs this as a CE (corrected error).
    Corrected {
        /// Number of symbols (or bits, for bit-oriented codes) repaired.
        symbols_fixed: usize,
    },
    /// An error was detected but exceeds the local code's correction
    /// capability. In a classic ECC system this is a DUE; under Dvé this
    /// triggers recovery from the replica.
    DetectedUncorrectable {
        /// Number of non-zero syndromes observed, a rough indication of
        /// the error magnitude.
        syndrome_weight: usize,
    },
}

impl CheckOutcome {
    /// Whether the data can be trusted after the check (possibly after an
    /// in-place repair).
    pub fn is_good(&self) -> bool {
        !matches!(self, CheckOutcome::DetectedUncorrectable { .. })
    }
}

impl fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckOutcome::NoError => write!(f, "no error"),
            CheckOutcome::Corrected { symbols_fixed } => {
                write!(f, "corrected ({symbols_fixed} symbol(s))")
            }
            CheckOutcome::DetectedUncorrectable { syndrome_weight } => {
                write!(
                    f,
                    "detected uncorrectable (syndrome weight {syndrome_weight})"
                )
            }
        }
    }
}

/// A code that can detect errors in a codeword.
///
/// Implementations are systematic: the first `data_len` bytes of the
/// codeword are the original data.
pub trait DetectionCode {
    /// Length of a dataword in bytes.
    fn data_len(&self) -> usize;

    /// Length of a codeword in bytes.
    fn codeword_len(&self) -> usize;

    /// Encodes `data` into a fresh codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_len()`.
    fn encode(&self, data: &[u8]) -> Vec<u8>;

    /// Encodes `data` into a caller-provided codeword buffer.
    ///
    /// The default implementation allocates via [`DetectionCode::encode`];
    /// hot-path codecs (`Rs`, `Rs16Detect`) override it with a fully
    /// in-place, allocation-free encoder so callers that own their
    /// buffers (the campaign trial executor, the perf harness) never
    /// touch the heap per codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_len()` or
    /// `codeword.len() != self.codeword_len()`.
    fn encode_into(&self, data: &[u8], codeword: &mut [u8]) {
        assert_eq!(
            codeword.len(),
            self.codeword_len(),
            "codeword length mismatch"
        );
        codeword.copy_from_slice(&self.encode(data));
    }

    /// Checks `codeword`, returning what was observed. Implementations of
    /// [`CorrectionCode`] may *not* modify the codeword here; use
    /// [`CorrectionCode::check_and_repair`] for in-place repair.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != self.codeword_len()`.
    fn check(&self, codeword: &[u8]) -> CheckOutcome;

    /// Extracts the data portion of a (presumed good) codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != self.codeword_len()`.
    fn extract_data(&self, codeword: &[u8]) -> Vec<u8> {
        assert_eq!(
            codeword.len(),
            self.codeword_len(),
            "codeword length mismatch"
        );
        codeword[..self.data_len()].to_vec()
    }

    /// Storage overhead of the code: `(codeword - data) / data`.
    fn overhead(&self) -> f64 {
        (self.codeword_len() - self.data_len()) as f64 / self.data_len() as f64
    }
}

/// A code that can additionally repair (some) errors in place.
pub trait CorrectionCode: DetectionCode {
    /// Checks `codeword` and repairs it in place when the error is within
    /// the correction capability.
    fn check_and_repair(&self, codeword: &mut [u8]) -> CheckOutcome;

    /// Maximum number of symbol errors this code guarantees to correct.
    fn correctable_symbols(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_goodness() {
        assert!(CheckOutcome::NoError.is_good());
        assert!(CheckOutcome::Corrected { symbols_fixed: 1 }.is_good());
        assert!(!CheckOutcome::DetectedUncorrectable { syndrome_weight: 2 }.is_good());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(CheckOutcome::NoError.to_string(), "no error");
        assert_eq!(
            CheckOutcome::Corrected { symbols_fixed: 2 }.to_string(),
            "corrected (2 symbol(s))"
        );
        assert!(CheckOutcome::DetectedUncorrectable { syndrome_weight: 3 }
            .to_string()
            .contains("uncorrectable"));
    }
}
