//! Finite (Galois) field arithmetic.
//!
//! Two fields are used by the codes in this crate:
//!
//! * [`Gf256`] — GF(2^8) with the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the field of 8-bit-symbol
//!   Reed–Solomon "Chipkill" codes.
//! * [`Gf16`] — GF(2^16) with the primitive polynomial
//!   `x^16 + x^12 + x^3 + x + 1` (0x1100B), the field of the paper's TSD
//!   code (16-bit symbols as in Multi-ECC).
//!
//! Both fields are **table-driven**: multiplication, division, inversion
//! and exponentiation go through one-time-initialised log/antilog tables
//! (512 B + 512 B for GF(2^8); 256 KiB + 128 KiB for GF(2^16)). The 384
//! KiB GF(2^16) cost is paid once per process and is irrelevant on a
//! simulation host, while turning every `Gf16::mul` from a 16-iteration
//! carry-less shift-and-add into two loads and an add — the single
//! biggest win for the TSD hot path that every campaign trial and scrub
//! read funnels through.
//!
//! The original bit-serial implementations are retained in [`reference`]
//! as oracles: they are never called on any hot path, but the property
//! tests (`crates/ecc/tests/proptests.rs`) check the tables against them
//! on random operand pairs, and the perf harness (`dve-bench --bin
//! perf`) reports the table-vs-reference speedup.
//!
//! # The `0^0 = 1` convention
//!
//! Both fields define `pow(0, 0) == 1`. This matches the empty-product
//! convention used everywhere polynomials are evaluated in this crate
//! (`x^0` contributes the constant coefficient even at `x = 0`) and is
//! asserted to agree across the two fields by an exhaustive edge-case
//! test. For any `n > 0`, `pow(0, n) == 0`.

use std::sync::OnceLock;

/// GF(2^8) primitive polynomial (with the x^8 term): 0x11D.
const GF256_POLY: u16 = 0x11D;

/// GF(2^16) primitive polynomial (with the x^16 term): 0x1100B.
const GF16_POLY: u32 = 0x1100B;

struct Tables {
    exp: [u8; 512],
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= GF256_POLY;
            }
        }
        // Duplicate so that exp[i + j] works without a mod for i+j < 510.
        let (head, tail) = exp.split_at_mut(255);
        tail[..255].copy_from_slice(head);
        tail[255] = head[0];
        tail[256] = head[1];
        Tables { exp, log }
    })
}

/// Log/antilog tables for GF(2^16).
///
/// `exp` is doubled (`exp[i] = α^(i mod 65535)` for `i < 131070`) so
/// that `exp[log a + log b]` and `exp[log a + 65535 - log b]` need no
/// modulo on the hot path.
struct Tables16 {
    exp: Box<[u16]>, // 131072 entries = 256 KiB
    log: Box<[u16]>, // 65536 entries = 128 KiB
}

fn tables16() -> &'static Tables16 {
    static TABLES: OnceLock<Tables16> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 131072].into_boxed_slice();
        let mut log = vec![0u16; 65536].into_boxed_slice();
        let mut x: u32 = 1;
        for i in 0..65535usize {
            exp[i] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x1_0000 != 0 {
                x ^= GF16_POLY;
            }
        }
        // Duplicate the cycle so indices up to 2·65535 − 1 stay in range.
        let (head, tail) = exp.split_at_mut(65535);
        tail[..65535].copy_from_slice(head);
        tail[65535] = head[0];
        tail[65536] = head[1];
        Tables16 { exp, log }
    })
}

/// Arithmetic in GF(2^8).
///
/// All operations are free functions on `u8` symbols, namespaced by this
/// zero-sized type for clarity at call sites (`Gf256::mul(a, b)`).
///
/// # Example
///
/// ```
/// use dve_ecc::gf::Gf256;
///
/// let a = 0x57;
/// let b = 0x83;
/// let p = Gf256::mul(a, b);
/// assert_eq!(Gf256::div(p, b), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf256;

impl Gf256 {
    /// Addition in GF(2^8) is XOR.
    #[inline]
    pub fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplication via log/antilog tables.
    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
    }

    /// Multiplication by the generator α (= `x`), branch-free shift and
    /// conditional reduction — faster than a table round-trip for the
    /// fixed-operand Horner steps in syndrome computation.
    #[inline]
    pub fn mul_alpha(a: u8) -> u8 {
        let wide = (a as u16) << 1;
        (wide ^ (GF256_POLY * ((wide >> 8) & 1))) as u8
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(2^8)");
        if a == 0 {
            return 0;
        }
        let t = tables();
        t.exp[t.log[a as usize] as usize + 255 - t.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(a: u8) -> u8 {
        Self::div(1, a)
    }

    /// `a` raised to the power `n`.
    ///
    /// Follows the crate-wide empty-product convention `0^0 = 1` (see the
    /// module docs); `0^n = 0` for `n > 0`. [`Gf16::pow`] uses the same
    /// convention, and an exhaustive cross-field test pins them together.
    #[inline]
    pub fn pow(a: u8, n: u32) -> u8 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        let t = tables();
        let l = t.log[a as usize] as u64 * n as u64 % 255;
        t.exp[l as usize]
    }

    /// The generator element α = 0x02 raised to power `n`.
    #[inline]
    pub fn alpha_pow(n: u32) -> u8 {
        tables().exp[(n % 255) as usize]
    }

    /// Discrete log base α of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(a: u8) -> u16 {
        assert!(a != 0, "log of zero in GF(2^8)");
        tables().log[a as usize]
    }

    /// Product of the two non-zero elements whose discrete logs are `la`
    /// and `lb` — a single antilog load once the logs are in hand.
    ///
    /// This is the primitive behind the precomputed-log LFSR encoders:
    /// the generator coefficients' logs are fixed at construction, so
    /// each feedback step costs one [`Gf256::log`] of the coefficient
    /// plus one `exp_sum` per register.
    ///
    /// # Panics
    ///
    /// Debug-asserts `la < 255 && lb < 255` (valid element logs).
    #[inline]
    pub fn exp_sum(la: u16, lb: u16) -> u8 {
        debug_assert!(la < 255 && lb < 255, "exp_sum args must be element logs");
        tables().exp[la as usize + lb as usize]
    }

    /// Multiplies every symbol of `dst` by the constant `c` in place.
    ///
    /// The log of `c` is hoisted out of the loop, so each element costs
    /// one load-add-load instead of a full `mul` call.
    #[inline]
    pub fn mul_slice_assign(dst: &mut [u8], c: u8) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        if c == 1 {
            return;
        }
        let t = tables();
        let lc = t.log[c as usize] as usize;
        for d in dst {
            if *d != 0 {
                *d = t.exp[t.log[*d as usize] as usize + lc];
            }
        }
    }

    /// Fused multiply-add over slices: `acc[i] ^= src[i] * c`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn fma_slice(acc: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(acc.len(), src.len(), "fma_slice length mismatch");
        if c == 0 {
            return;
        }
        let t = tables();
        let lc = t.log[c as usize] as usize;
        for (a, &s) in acc.iter_mut().zip(src) {
            if s != 0 {
                *a ^= t.exp[t.log[s as usize] as usize + lc];
            }
        }
    }
}

/// Arithmetic in GF(2^16) (16-bit symbols, used by the TSD code).
///
/// Table-driven since the decode-pipeline overhaul; the bit-serial
/// originals live in [`reference`].
///
/// # Example
///
/// ```
/// use dve_ecc::gf::Gf16;
///
/// let a = 0x1234;
/// let b = 0xABCD;
/// let p = Gf16::mul(a, b);
/// assert_eq!(Gf16::mul(p, Gf16::inv(b)), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf16;

impl Gf16 {
    /// Addition is XOR.
    #[inline]
    pub fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Multiplication via log/antilog tables (two loads and an add).
    #[inline]
    pub fn mul(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables16();
        t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
    }

    /// Multiplication by the generator α (= `x`), shift and conditional
    /// reduction without touching the tables.
    #[inline]
    pub fn mul_alpha(a: u16) -> u16 {
        let wide = (a as u32) << 1;
        (wide ^ (GF16_POLY * ((wide >> 16) & 1))) as u16
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero in GF(2^16)");
        if a == 0 {
            return 0;
        }
        let t = tables16();
        t.exp[t.log[a as usize] as usize + 65535 - t.log[b as usize] as usize]
    }

    /// `a^n` via the log table.
    ///
    /// Follows the crate-wide empty-product convention `0^0 = 1` (see the
    /// module docs); `0^n = 0` for `n > 0`. [`Gf256::pow`] uses the same
    /// convention, and an exhaustive cross-field test pins them together.
    #[inline]
    pub fn pow(a: u16, n: u32) -> u16 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        let t = tables16();
        let l = t.log[a as usize] as u64 * n as u64 % 65535;
        t.exp[l as usize]
    }

    /// Multiplicative inverse via the log table.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(a: u16) -> u16 {
        assert!(a != 0, "inverse of zero in GF(2^16)");
        let t = tables16();
        t.exp[65535 - t.log[a as usize] as usize]
    }

    /// The generator α = 0x0002 raised to power `n`.
    #[inline]
    pub fn alpha_pow(n: u32) -> u16 {
        tables16().exp[(n % 65535) as usize]
    }

    /// Discrete log base α of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(a: u16) -> u16 {
        assert!(a != 0, "log of zero in GF(2^16)");
        tables16().log[a as usize]
    }

    /// Product of the two non-zero elements whose discrete logs are `la`
    /// and `lb` — one antilog load. See [`Gf256::exp_sum`] for the LFSR
    /// use case.
    ///
    /// # Panics
    ///
    /// Debug-asserts `la < 65535 && lb < 65535` (valid element logs).
    #[inline]
    pub fn exp_sum(la: u16, lb: u16) -> u16 {
        debug_assert!(
            la < 65535 && lb < 65535,
            "exp_sum args must be element logs"
        );
        tables16().exp[la as usize + lb as usize]
    }

    /// Multiplies every symbol of `dst` by the constant `c` in place,
    /// with the log of `c` hoisted out of the loop.
    #[inline]
    pub fn mul_slice_assign(dst: &mut [u16], c: u16) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        if c == 1 {
            return;
        }
        let t = tables16();
        let lc = t.log[c as usize] as usize;
        for d in dst {
            if *d != 0 {
                *d = t.exp[t.log[*d as usize] as usize + lc];
            }
        }
    }

    /// Fused multiply-add over slices: `acc[i] ^= src[i] * c`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn fma_slice(acc: &mut [u16], src: &[u16], c: u16) {
        assert_eq!(acc.len(), src.len(), "fma_slice length mismatch");
        if c == 0 {
            return;
        }
        let t = tables16();
        let lc = t.log[c as usize] as usize;
        for (a, &s) in acc.iter_mut().zip(src) {
            if s != 0 {
                *a ^= t.exp[t.log[s as usize] as usize + lc];
            }
        }
    }
}

/// Bit-serial reference implementations — the oracles the tables are
/// validated against.
///
/// These are the pre-overhaul shift-and-add / Fermat-inverse paths. They
/// are deliberately kept out of every hot path (nothing in `rs`, `rs16`
/// or the campaign calls them); their only consumers are the property
/// tests in `crates/ecc/tests/proptests.rs` and the `dve-bench` perf
/// harness, which reports the table-vs-reference speedup.
pub mod reference {
    use super::{GF16_POLY, GF256_POLY};

    /// Carry-less shift-and-add multiplication in GF(2^8).
    pub fn gf256_mul(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let mut a = a as u16;
        let mut b = b as u16;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= GF256_POLY;
            }
        }
        acc as u8
    }

    /// Carry-less shift-and-add multiplication in GF(2^16).
    pub fn gf16_mul(a: u16, b: u16) -> u16 {
        let mut acc: u32 = 0;
        let mut a = a as u32;
        let mut b = b as u32;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & 0x1_0000 != 0 {
                a ^= GF16_POLY;
            }
        }
        acc as u16
    }

    /// `a^n` by square-and-multiply over [`gf16_mul`], with the same
    /// `0^0 = 1` convention as the table path.
    pub fn gf16_pow(mut a: u16, mut n: u32) -> u16 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        n %= 65535;
        let mut result: u16 = 1;
        while n > 0 {
            if n & 1 != 0 {
                result = gf16_mul(result, a);
            }
            a = gf16_mul(a, a);
            n >>= 1;
        }
        result
    }

    /// Multiplicative inverse via Fermat: `a^(2^16 - 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn gf16_inv(a: u16) -> u16 {
        assert!(a != 0, "inverse of zero in GF(2^16)");
        gf16_pow(a, 65534)
    }

    /// Reference batch kernel for GF(2^8): multiplies every lane of
    /// `lanes` by the constant `c` via [`gf256_mul`]. The bitsliced
    /// [`super::bitslice::mul_const8`] must agree lane-for-lane.
    pub fn gf256_mul_lanes(lanes: &[u8], c: u8) -> Vec<u8> {
        lanes.iter().map(|&a| gf256_mul(a, c)).collect()
    }

    /// Reference batch kernel for GF(2^16): multiplies every lane of
    /// `lanes` by the constant `c` via [`gf16_mul`]. The bitsliced
    /// [`super::bitslice::mul_const16`] must agree lane-for-lane.
    pub fn gf16_mul_lanes(lanes: &[u16], c: u16) -> Vec<u16> {
        lanes.iter().map(|&a| gf16_mul(a, c)).collect()
    }
}

/// Bitsliced GF kernels: 64 codeword lanes held as bit-planes.
///
/// A [`Planes8`] holds 64 GF(2^8) symbols transposed so that `planes[b]`
/// bit `l` is bit `b` of lane `l`'s symbol; [`Planes16`] is the same for
/// GF(2^16). In this orientation a multiply-by-α across all 64 lanes is
/// a plane rotation plus a handful of XORs (the reduction polynomial's
/// taps), with no table traffic and no per-lane branches — which is what
/// makes the batched syndrome screens in [`crate::rs`] and
/// [`crate::rs16`] cheap: the screen touches every lane of a 64-codeword
/// block for about the cost of two scalar decodes.
///
/// Packing is done with a word-level 8×8 bit transpose (three
/// shift-mask-xor rounds per 8 lanes) rather than a bit-at-a-time loop,
/// so the layout conversion does not eat the arithmetic win.
///
/// Everything here is validated lane-for-lane against the bit-serial
/// [`reference`] oracle by the property tests in
/// `crates/ecc/tests/proptests.rs`.
pub mod bitslice {
    use super::{GF16_POLY, GF256_POLY};

    /// Number of lanes (codewords) per bitsliced block.
    pub const LANES: usize = 64;

    /// 64 lanes of GF(2^8) symbols, one `u64` per bit position.
    pub type Planes8 = [u64; 8];

    /// 64 lanes of GF(2^16) symbols, one `u64` per bit position.
    pub type Planes16 = [u64; 16];

    /// 8×8 bit-matrix transpose of a `u64` viewed as 8 rows of 8 bits
    /// (row `i` = byte `i`, bit `j` of row `i` = bit `8i + j`).
    #[inline]
    fn transpose8x8(mut x: u64) -> u64 {
        // Three rounds of delta swaps: 1×1 blocks at distance 7 bits
        // off-diagonal within 2×2 tiles, then 2×2 within 4×4, then 4×4.
        let mut t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
        x ^= t ^ (t << 7);
        t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
        x ^= t ^ (t << 14);
        t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
        x ^= t ^ (t << 28);
        x
    }

    /// Packs up to [`LANES`] GF(2^8) symbols into bit-planes; missing
    /// lanes are zero.
    ///
    /// # Panics
    ///
    /// Panics if `symbols.len() > LANES`.
    pub fn pack8(symbols: &[u8]) -> Planes8 {
        assert!(symbols.len() <= LANES, "pack8: more than {LANES} lanes");
        let mut planes = [0u64; 8];
        for (g, chunk) in symbols.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            let t = transpose8x8(u64::from_le_bytes(w));
            // Byte `b` of `t` now holds bit `b` of each of the 8 lanes.
            for (b, plane) in planes.iter_mut().enumerate() {
                *plane |= ((t >> (8 * b)) & 0xFF) << (8 * g);
            }
        }
        planes
    }

    /// Inverse of [`pack8`]: writes lane symbols back out.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() > LANES`.
    pub fn unpack8(planes: &Planes8, out: &mut [u8]) {
        assert!(out.len() <= LANES, "unpack8: more than {LANES} lanes");
        for (g, chunk) in out.chunks_mut(8).enumerate() {
            let mut t = 0u64;
            for (b, plane) in planes.iter().enumerate() {
                t |= ((plane >> (8 * g)) & 0xFF) << (8 * b);
            }
            let w = transpose8x8(t).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// Packs up to [`LANES`] GF(2^16) symbols into bit-planes.
    ///
    /// # Panics
    ///
    /// Panics if `symbols.len() > LANES`.
    pub fn pack16(symbols: &[u16]) -> Planes16 {
        assert!(symbols.len() <= LANES, "pack16: more than {LANES} lanes");
        let mut lo = [0u8; LANES];
        let mut hi = [0u8; LANES];
        for (l, &s) in symbols.iter().enumerate() {
            lo[l] = s as u8;
            hi[l] = (s >> 8) as u8;
        }
        let lo_planes = pack8(&lo[..symbols.len()]);
        let hi_planes = pack8(&hi[..symbols.len()]);
        let mut planes = [0u64; 16];
        planes[..8].copy_from_slice(&lo_planes);
        planes[8..].copy_from_slice(&hi_planes);
        planes
    }

    /// Inverse of [`pack16`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() > LANES`.
    pub fn unpack16(planes: &Planes16, out: &mut [u16]) {
        assert!(out.len() <= LANES, "unpack16: more than {LANES} lanes");
        let mut lo_planes = [0u64; 8];
        let mut hi_planes = [0u64; 8];
        lo_planes.copy_from_slice(&planes[..8]);
        hi_planes.copy_from_slice(&planes[8..]);
        let mut lo = [0u8; LANES];
        let mut hi = [0u8; LANES];
        unpack8(&lo_planes, &mut lo[..out.len()]);
        unpack8(&hi_planes, &mut hi[..out.len()]);
        for (l, o) in out.iter_mut().enumerate() {
            *o = lo[l] as u16 | ((hi[l] as u16) << 8);
        }
    }

    /// Lane-wise XOR (GF addition) of `src` into `acc`.
    #[inline]
    pub fn xor8(acc: &mut Planes8, src: &Planes8) {
        for (a, s) in acc.iter_mut().zip(src) {
            *a ^= s;
        }
    }

    /// Lane-wise XOR (GF addition) of `src` into `acc`.
    #[inline]
    pub fn xor16(acc: &mut Planes16, src: &Planes16) {
        for (a, s) in acc.iter_mut().zip(src) {
            *a ^= s;
        }
    }

    /// Multiplies all 64 GF(2^8) lanes by α in place: shift every bit
    /// plane up one position and fold the overflow plane back into the
    /// taps of the reduction polynomial 0x11D (bits 0, 2, 3, 4).
    #[inline]
    pub fn mul_alpha8(p: &mut Planes8) {
        debug_assert_eq!(GF256_POLY, 0x11D);
        let carry = p[7];
        p.copy_within(0..7, 1);
        p[0] = carry;
        p[2] ^= carry;
        p[3] ^= carry;
        p[4] ^= carry;
    }

    /// Multiplies all 64 GF(2^16) lanes by α in place (reduction
    /// polynomial 0x1100B, taps at bits 0, 1, 3, 12).
    #[inline]
    pub fn mul_alpha16(p: &mut Planes16) {
        debug_assert_eq!(GF16_POLY, 0x1100B);
        let carry = p[15];
        p.copy_within(0..15, 1);
        p[0] = carry;
        p[1] ^= carry;
        p[3] ^= carry;
        p[12] ^= carry;
    }

    /// Multiplies all 64 GF(2^8) lanes by the constant `c`: shift-and-add
    /// over the bit planes (`c = Σ α^i` over its set bits).
    pub fn mul_const8(p: &Planes8, c: u8) -> Planes8 {
        let mut acc = [0u64; 8];
        let mut shifted = *p;
        for i in 0..8 {
            if (c >> i) & 1 != 0 {
                xor8(&mut acc, &shifted);
            }
            mul_alpha8(&mut shifted);
        }
        acc
    }

    /// Multiplies all 64 GF(2^16) lanes by the constant `c`.
    pub fn mul_const16(p: &Planes16, c: u16) -> Planes16 {
        let mut acc = [0u64; 16];
        let mut shifted = *p;
        for i in 0..16 {
            if (c >> i) & 1 != 0 {
                xor16(&mut acc, &shifted);
            }
            mul_alpha16(&mut shifted);
        }
        acc
    }

    /// Bitmask of lanes holding a non-zero symbol (OR of all planes).
    #[inline]
    pub fn nonzero8(p: &Planes8) -> u64 {
        p.iter().fold(0, |m, &plane| m | plane)
    }

    /// Bitmask of lanes holding a non-zero symbol.
    #[inline]
    pub fn nonzero16(p: &Planes16) -> u64 {
        p.iter().fold(0, |m, &plane| m | plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf256_known_products() {
        // 0x57 * 0x83 = 0xC1 under poly 0x11D (classic AES-adjacent example
        // recomputed for 0x11D).
        assert_eq!(Gf256::mul(0, 0xFF), 0);
        assert_eq!(Gf256::mul(1, 0xFF), 0xFF);
        assert_eq!(Gf256::mul(2, 0x80), 0x1D); // overflow triggers reduction
    }

    #[test]
    fn gf256_mul_div_roundtrip() {
        for a in 1..=255u8 {
            for b in [1u8, 2, 3, 29, 128, 255] {
                let p = Gf256::mul(a, b);
                assert_eq!(Gf256::div(p, b), a, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn gf256_inverse() {
        for a in 1..=255u8 {
            assert_eq!(Gf256::mul(a, Gf256::inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn gf256_alpha_generates_field() {
        let mut seen = [false; 256];
        for n in 0..255 {
            let v = Gf256::alpha_pow(n);
            assert!(!seen[v as usize], "alpha^{n} repeated");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn gf256_pow_and_log_agree() {
        for n in 0..255u32 {
            let v = Gf256::alpha_pow(n);
            assert_eq!(Gf256::log(v) as u32, n);
        }
        assert_eq!(Gf256::pow(3, 0), 1);
        assert_eq!(Gf256::pow(0, 5), 0);
        assert_eq!(Gf256::pow(0, 0), 1);
    }

    #[test]
    fn gf256_mul_alpha_matches_mul() {
        for a in 0..=255u8 {
            assert_eq!(Gf256::mul_alpha(a), Gf256::mul(a, 2), "a={a}");
        }
    }

    #[test]
    fn gf256_matches_reference_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf256::mul(a, b), reference::gf256_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn gf16_mul_identities() {
        assert_eq!(Gf16::mul(0, 0x1234), 0);
        assert_eq!(Gf16::mul(1, 0x1234), 0x1234);
        assert_eq!(Gf16::add(0xAAAA, 0xAAAA), 0);
    }

    #[test]
    fn gf16_inverse_roundtrip() {
        for a in [1u16, 2, 3, 0xFF, 0x100, 0x1234, 0xFFFF, 0x8000] {
            assert_eq!(Gf16::mul(a, Gf16::inv(a)), 1, "a={a:#x}");
            assert_eq!(Gf16::inv(a), reference::gf16_inv(a), "a={a:#x}");
        }
    }

    #[test]
    fn gf16_mul_commutative_associative_spot() {
        let (a, b, c) = (0x1357u16, 0x2468u16, 0x9ABCu16);
        assert_eq!(Gf16::mul(a, b), Gf16::mul(b, a));
        assert_eq!(Gf16::mul(Gf16::mul(a, b), c), Gf16::mul(a, Gf16::mul(b, c)));
        // Distributivity over addition.
        assert_eq!(
            Gf16::mul(a, Gf16::add(b, c)),
            Gf16::add(Gf16::mul(a, b), Gf16::mul(a, c))
        );
    }

    #[test]
    fn gf16_alpha_has_full_order_spotcheck() {
        // alpha^65535 == 1 and no small order divisors hit 1 early.
        assert_eq!(Gf16::pow(2, 65535), 1);
        for d in [3u32, 5, 17, 257, 641, 6700417 % 65535] {
            if 65535 % d == 0 {
                assert_ne!(Gf16::pow(2, 65535 / d), 1, "order divides 65535/{d}");
            }
        }
    }

    #[test]
    fn gf16_mul_alpha_matches_mul() {
        for a in [0u16, 1, 2, 0x7FFF, 0x8000, 0xFFFF, 0x1234, 0xABCD] {
            assert_eq!(Gf16::mul_alpha(a), Gf16::mul(a, 2), "a={a:#x}");
        }
    }

    #[test]
    fn gf16_div_log_pow_consistency_sample() {
        for a in [1u16, 2, 0x13, 0x800, 0x4321, 0xFFFE, 0xFFFF] {
            for b in [1u16, 3, 0x100, 0x9999, 0xFFFF] {
                let q = Gf16::div(a, b);
                assert_eq!(Gf16::mul(q, b), a, "a={a:#x} b={b:#x}");
            }
            assert_eq!(Gf16::alpha_pow(Gf16::log(a) as u32), a);
            assert_eq!(Gf16::pow(a, 1), a);
            assert_eq!(Gf16::pow(a, 65535), 1);
        }
    }

    /// The satellite edge-case contract: `pow(0, 0) == 1` in *both*
    /// fields, `pow(0, n) == 0` for all n > 0, `pow(a, 0) == 1` for all
    /// non-zero `a` — exhaustively over each field's elements.
    #[test]
    fn pow_zero_convention_agrees_across_fields() {
        // 0^0 = 1 (empty product) in both fields.
        assert_eq!(Gf256::pow(0, 0), 1);
        assert_eq!(Gf16::pow(0, 0), 1);
        assert_eq!(Gf16::pow(0, 0) as u8, Gf256::pow(0, 0));
        assert_eq!(reference::gf16_pow(0, 0), 1);
        // 0^n = 0 for n > 0, including group-order multiples.
        for n in [1u32, 2, 254, 255, 256, 65534, 65535, 65536, u32::MAX] {
            assert_eq!(Gf256::pow(0, n), 0, "GF(2^8) 0^{n}");
            assert_eq!(Gf16::pow(0, n), 0, "GF(2^16) 0^{n}");
            assert_eq!(reference::gf16_pow(0, n), 0, "reference 0^{n}");
        }
        // a^0 = 1 for every element of GF(2^8)...
        for a in 0..=255u8 {
            assert_eq!(Gf256::pow(a, 0), 1, "GF(2^8) {a}^0");
        }
        // ...and every element of GF(2^16).
        for a in 0..=65535u16 {
            assert_eq!(Gf16::pow(a, 0), 1, "GF(2^16) {a}^0");
        }
    }

    #[test]
    fn gf256_slice_kernels_match_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
            let mut dst = src.clone();
            Gf256::mul_slice_assign(&mut dst, c);
            for (i, (&d, &s)) in dst.iter().zip(&src).enumerate() {
                assert_eq!(d, Gf256::mul(s, c), "mul_slice i={i} c={c}");
            }
            let mut acc = src.clone();
            acc.reverse();
            let acc0 = acc.clone();
            Gf256::fma_slice(&mut acc, &src, c);
            for i in 0..src.len() {
                assert_eq!(acc[i], acc0[i] ^ Gf256::mul(src[i], c), "fma i={i} c={c}");
            }
        }
    }

    #[test]
    fn gf16_slice_kernels_match_scalar() {
        let src: Vec<u16> = (0..512u32).map(|i| (i * 257 % 65536) as u16).collect();
        for c in [0u16, 1, 2, 0x100B, 0x8000, 0xFFFF] {
            let mut dst = src.clone();
            Gf16::mul_slice_assign(&mut dst, c);
            for (i, (&d, &s)) in dst.iter().zip(&src).enumerate() {
                assert_eq!(d, Gf16::mul(s, c), "mul_slice i={i} c={c:#x}");
            }
            let mut acc = src.clone();
            acc.reverse();
            let acc0 = acc.clone();
            Gf16::fma_slice(&mut acc, &src, c);
            for i in 0..src.len() {
                assert_eq!(acc[i], acc0[i] ^ Gf16::mul(src[i], c), "fma i={i} c={c:#x}");
            }
        }
    }

    #[test]
    fn exp_sum_matches_mul_in_both_fields() {
        for a in 1..=255u8 {
            for b in [1u8, 2, 0x1D, 0x80, 0xFF] {
                assert_eq!(
                    Gf256::exp_sum(Gf256::log(a), Gf256::log(b)),
                    Gf256::mul(a, b),
                    "a={a} b={b}"
                );
            }
        }
        for a in [1u16, 2, 0x100B, 0x8000, 0xFFFF, 0x1234] {
            for b in [1u16, 3, 0x9999, 0xFFFF] {
                assert_eq!(
                    Gf16::exp_sum(Gf16::log(a), Gf16::log(b)),
                    Gf16::mul(a, b),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }

    fn lanes8(seed: u64) -> Vec<u8> {
        (0..64u64)
            .map(|i| (seed.wrapping_mul(i.wrapping_add(17)) >> 13) as u8)
            .collect()
    }

    fn lanes16(seed: u64) -> Vec<u16> {
        (0..64u64)
            .map(|i| (seed.wrapping_mul(i.wrapping_add(29)) >> 9) as u16)
            .collect()
    }

    #[test]
    fn bitslice_pack_unpack_roundtrip() {
        for seed in [1u64, 0xDEADBEEF, 0x1234_5678_9ABC_DEF0] {
            let l8 = lanes8(seed);
            for len in [0usize, 1, 7, 8, 9, 33, 63, 64] {
                let planes = bitslice::pack8(&l8[..len]);
                let mut out = vec![0u8; len];
                bitslice::unpack8(&planes, &mut out);
                assert_eq!(out, l8[..len], "u8 len={len} seed={seed:#x}");
            }
            let l16 = lanes16(seed);
            for len in [0usize, 1, 15, 16, 17, 63, 64] {
                let planes = bitslice::pack16(&l16[..len]);
                let mut out = vec![0u16; len];
                bitslice::unpack16(&planes, &mut out);
                assert_eq!(out, l16[..len], "u16 len={len} seed={seed:#x}");
            }
        }
    }

    #[test]
    fn bitslice_mul_alpha_matches_scalar_all_lanes() {
        let l8 = lanes8(0xABCD_EF01);
        let mut p8 = bitslice::pack8(&l8);
        bitslice::mul_alpha8(&mut p8);
        let mut out8 = [0u8; 64];
        bitslice::unpack8(&p8, &mut out8);
        for (l, (&o, &a)) in out8.iter().zip(&l8).enumerate() {
            assert_eq!(o, Gf256::mul_alpha(a), "lane {l}");
        }

        let l16 = lanes16(0xABCD_EF01);
        let mut p16 = bitslice::pack16(&l16);
        bitslice::mul_alpha16(&mut p16);
        let mut out16 = [0u16; 64];
        bitslice::unpack16(&p16, &mut out16);
        for (l, (&o, &a)) in out16.iter().zip(&l16).enumerate() {
            assert_eq!(o, Gf16::mul_alpha(a), "lane {l}");
        }
    }

    #[test]
    fn bitslice_mul_const_matches_reference_lanes() {
        let l8 = lanes8(0x5555_AAAA_0F0F_F0F0);
        let p8 = bitslice::pack8(&l8);
        for c in [0u8, 1, 2, 0x1D, 0x80, 0xFF, 0x57] {
            let prod = bitslice::mul_const8(&p8, c);
            let mut out = [0u8; 64];
            bitslice::unpack8(&prod, &mut out);
            assert_eq!(out.to_vec(), reference::gf256_mul_lanes(&l8, c), "c={c:#x}");
        }

        let l16 = lanes16(0x5555_AAAA_0F0F_F0F0);
        let p16 = bitslice::pack16(&l16);
        for c in [0u16, 1, 2, 0x100B, 0x8000, 0xFFFF, 0x1234] {
            let prod = bitslice::mul_const16(&p16, c);
            let mut out = [0u16; 64];
            bitslice::unpack16(&prod, &mut out);
            assert_eq!(out.to_vec(), reference::gf16_mul_lanes(&l16, c), "c={c:#x}");
        }
    }

    #[test]
    fn bitslice_nonzero_masks() {
        let mut l8 = [0u8; 64];
        l8[3] = 1;
        l8[63] = 0x80;
        let p8 = bitslice::pack8(&l8);
        assert_eq!(bitslice::nonzero8(&p8), (1u64 << 3) | (1u64 << 63));

        let mut l16 = [0u16; 64];
        l16[0] = 0x8000;
        l16[40] = 7;
        let p16 = bitslice::pack16(&l16);
        assert_eq!(bitslice::nonzero16(&p16), 1 | (1u64 << 40));
        assert_eq!(bitslice::nonzero16(&bitslice::pack16(&[0u16; 64])), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn gf256_div_by_zero_panics() {
        Gf256::div(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn gf16_div_by_zero_panics() {
        Gf16::div(1, 0);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn gf16_inv_zero_panics() {
        Gf16::inv(0);
    }

    #[test]
    #[should_panic(expected = "log of zero")]
    fn gf16_log_zero_panics() {
        Gf16::log(0);
    }
}
