//! Finite (Galois) field arithmetic.
//!
//! Two fields are used by the codes in this crate:
//!
//! * [`Gf256`] — GF(2^8) with the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the field of 8-bit-symbol
//!   Reed–Solomon "Chipkill" codes. Multiplication/division go through
//!   precomputed log/antilog tables.
//! * [`Gf16`] — GF(2^16) with the primitive polynomial
//!   `x^16 + x^12 + x^3 + x + 1` (0x1100B), the field of the paper's TSD
//!   code (16-bit symbols as in Multi-ECC). Tables would take 128 KiB+, so
//!   multiplication is carry-less shift-and-add with on-the-fly reduction.

use std::sync::OnceLock;

/// GF(2^8) primitive polynomial (without the x^8 term): 0x1D.
const GF256_POLY: u16 = 0x11D;

struct Tables {
    exp: [u8; 512],
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= GF256_POLY;
            }
        }
        // Duplicate so that exp[i + j] works without a mod for i+j < 510.
        let (head, tail) = exp.split_at_mut(255);
        tail[..255].copy_from_slice(head);
        tail[255] = head[0];
        tail[256] = head[1];
        Tables { exp, log }
    })
}

/// Arithmetic in GF(2^8).
///
/// All operations are free functions on `u8` symbols, namespaced by this
/// zero-sized type for clarity at call sites (`Gf256::mul(a, b)`).
///
/// # Example
///
/// ```
/// use dve_ecc::gf::Gf256;
///
/// let a = 0x57;
/// let b = 0x83;
/// let p = Gf256::mul(a, b);
/// assert_eq!(Gf256::div(p, b), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf256;

impl Gf256 {
    /// Addition in GF(2^8) is XOR.
    pub fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplication via log/antilog tables.
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(2^8)");
        if a == 0 {
            return 0;
        }
        let t = tables();
        let diff = t.log[a as usize] as i32 - t.log[b as usize] as i32;
        t.exp[diff.rem_euclid(255) as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(a: u8) -> u8 {
        Self::div(1, a)
    }

    /// `a` raised to the (possibly negative-wrapping) power `n`.
    pub fn pow(a: u8, n: u32) -> u8 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        let t = tables();
        let l = t.log[a as usize] as u64 * n as u64 % 255;
        t.exp[l as usize]
    }

    /// The generator element α = 0x02 raised to power `n`.
    pub fn alpha_pow(n: u32) -> u8 {
        tables().exp[(n % 255) as usize]
    }

    /// Discrete log base α of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    pub fn log(a: u8) -> u16 {
        assert!(a != 0, "log of zero in GF(2^8)");
        tables().log[a as usize]
    }
}

/// GF(2^16) primitive polynomial (without the x^16 term): 0x100B.
const GF16_POLY: u32 = 0x1100B;

/// Arithmetic in GF(2^16) (16-bit symbols, used by the TSD code).
///
/// # Example
///
/// ```
/// use dve_ecc::gf::Gf16;
///
/// let a = 0x1234;
/// let b = 0xABCD;
/// let p = Gf16::mul(a, b);
/// assert_eq!(Gf16::mul(p, Gf16::inv(b)), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf16;

impl Gf16 {
    /// Addition is XOR.
    pub fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Carry-less shift-and-add multiplication with polynomial reduction.
    pub fn mul(a: u16, b: u16) -> u16 {
        let mut acc: u32 = 0;
        let mut a = a as u32;
        let mut b = b as u32;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & 0x1_0000 != 0 {
                a ^= GF16_POLY;
            }
        }
        acc as u16
    }

    /// `a^n` by square-and-multiply.
    pub fn pow(mut a: u16, mut n: u32) -> u16 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        // The multiplicative group has order 2^16 - 1.
        n %= 65535;
        let mut result: u16 = 1;
        while n > 0 {
            if n & 1 != 0 {
                result = Self::mul(result, a);
            }
            a = Self::mul(a, a);
            n >>= 1;
        }
        result
    }

    /// Multiplicative inverse via Fermat: `a^(2^16 - 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(a: u16) -> u16 {
        assert!(a != 0, "inverse of zero in GF(2^16)");
        Self::pow(a, 65534)
    }

    /// The generator α = 0x0002 raised to power `n`.
    pub fn alpha_pow(n: u32) -> u16 {
        Self::pow(2, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf256_known_products() {
        // 0x57 * 0x83 = 0xC1 under poly 0x11D (classic AES-adjacent example
        // recomputed for 0x11D).
        assert_eq!(Gf256::mul(0, 0xFF), 0);
        assert_eq!(Gf256::mul(1, 0xFF), 0xFF);
        assert_eq!(Gf256::mul(2, 0x80), 0x1D); // overflow triggers reduction
    }

    #[test]
    fn gf256_mul_div_roundtrip() {
        for a in 1..=255u8 {
            for b in [1u8, 2, 3, 29, 128, 255] {
                let p = Gf256::mul(a, b);
                assert_eq!(Gf256::div(p, b), a, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn gf256_inverse() {
        for a in 1..=255u8 {
            assert_eq!(Gf256::mul(a, Gf256::inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn gf256_alpha_generates_field() {
        let mut seen = [false; 256];
        for n in 0..255 {
            let v = Gf256::alpha_pow(n);
            assert!(!seen[v as usize], "alpha^{n} repeated");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn gf256_pow_and_log_agree() {
        for n in 0..255u32 {
            let v = Gf256::alpha_pow(n);
            assert_eq!(Gf256::log(v) as u32, n);
        }
        assert_eq!(Gf256::pow(3, 0), 1);
        assert_eq!(Gf256::pow(0, 5), 0);
        assert_eq!(Gf256::pow(0, 0), 1);
    }

    #[test]
    fn gf16_mul_identities() {
        assert_eq!(Gf16::mul(0, 0x1234), 0);
        assert_eq!(Gf16::mul(1, 0x1234), 0x1234);
        assert_eq!(Gf16::add(0xAAAA, 0xAAAA), 0);
    }

    #[test]
    fn gf16_inverse_roundtrip() {
        for a in [1u16, 2, 3, 0xFF, 0x100, 0x1234, 0xFFFF, 0x8000] {
            assert_eq!(Gf16::mul(a, Gf16::inv(a)), 1, "a={a:#x}");
        }
    }

    #[test]
    fn gf16_mul_commutative_associative_spot() {
        let (a, b, c) = (0x1357u16, 0x2468u16, 0x9ABCu16);
        assert_eq!(Gf16::mul(a, b), Gf16::mul(b, a));
        assert_eq!(Gf16::mul(Gf16::mul(a, b), c), Gf16::mul(a, Gf16::mul(b, c)));
        // Distributivity over addition.
        assert_eq!(
            Gf16::mul(a, Gf16::add(b, c)),
            Gf16::add(Gf16::mul(a, b), Gf16::mul(a, c))
        );
    }

    #[test]
    fn gf16_alpha_has_full_order_spotcheck() {
        // alpha^65535 == 1 and no small order divisors hit 1 early.
        assert_eq!(Gf16::pow(2, 65535), 1);
        for d in [3u32, 5, 17, 257, 641, 6700417 % 65535] {
            if 65535 % d == 0 {
                assert_ne!(Gf16::pow(2, 65535 / d), 1, "order divides 65535/{d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn gf256_div_by_zero_panics() {
        Gf256::div(1, 0);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn gf16_inv_zero_panics() {
        Gf16::inv(0);
    }
}
