//! Property-based tests for the epoch batcher — the admission point
//! whose two invariants the whole service leans on:
//!
//! 1. epoch contents are a function of the admitted *set* of ops, not
//!    the arrival interleaving, and
//! 2. every submitted op is either admitted or shed, exactly.

use dve_service::batcher::{EpochBatcher, SubmittedOp};
use dve_sim::rng::SplitMix64;
use dve_workloads::op::MemReq;
use proptest::prelude::*;

/// Builds a per-client op population from a compact spec: client `c`
/// submits `counts[c]` ops with seqs `0..counts[c]`.
fn population(counts: &[u8]) -> Vec<SubmittedOp> {
    let mut ops = Vec::new();
    for (client, &n) in counts.iter().enumerate() {
        for seq in 0..n as u64 {
            ops.push(SubmittedOp {
                client: client as u64,
                seq,
                line: (client as u64) << 32 | seq,
                req: if (client + seq as usize).is_multiple_of(3) {
                    MemReq::Write
                } else {
                    MemReq::Read
                },
                priority: 0,
            });
        }
    }
    ops
}

/// Deterministic Fisher–Yates driven by `seed` — models one arrival
/// interleaving of the same op population.
fn shuffled(ops: &[SubmittedOp], seed: u64) -> Vec<SubmittedOp> {
    let mut v = ops.to_vec();
    let mut rng = SplitMix64::new(seed);
    for i in (1..v.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
    v
}

/// Feeds ops through a fresh batcher in arrival bursts of `burst`
/// ops, cutting at most one epoch between bursts (as the runner does),
/// then drains. Bursts larger than the spare capacity force sheds.
fn run_feed(
    ops: &[SubmittedOp],
    queue_cap: usize,
    epoch_ops: usize,
    burst: usize,
) -> (Vec<Vec<SubmittedOp>>, u64, u64, u64) {
    let mut b = EpochBatcher::new(queue_cap, epoch_ops);
    let mut epochs = Vec::new();
    for chunk in ops.chunks(burst.max(1)) {
        for &op in chunk {
            b.submit(op);
            assert!(b.accounted(), "accounting must hold after every submit");
        }
        if b.epoch_ready() {
            epochs.push(b.take_epoch());
        }
    }
    while b.pending_len() > 0 {
        epochs.push(b.take_epoch());
    }
    (epochs, b.submitted(), b.admitted(), b.shed())
}

proptest! {
    // With capacity for the whole population, the batcher canonicalizes
    // racy ingress: when every op has arrived before the cuts happen,
    // the epoch *partition* is identical across arrival interleavings —
    // and even with incremental cuts (where partition boundaries track
    // arrival timing) the completed *set* is exactly the population,
    // independent of interleaving.
    #[test]
    fn epochs_independent_of_arrival_interleaving(
        counts in proptest::collection::vec(0u8..12, 1..10),
        epoch_ops in 1usize..40,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
    ) {
        let ops = population(&counts);
        prop_assume!(!ops.is_empty());
        let cap = ops.len().max(epoch_ops);
        let burst = ops.len();
        let (ea, sub_a, adm_a, shed_a) = run_feed(&shuffled(&ops, seed_a), cap, epoch_ops, burst);
        let (eb, ..) = run_feed(&shuffled(&ops, seed_b), cap, epoch_ops, burst);
        prop_assert_eq!(ea, eb);
        prop_assert_eq!((sub_a, adm_a, shed_a), (ops.len() as u64, ops.len() as u64, 0));
        // Incremental cuts: the partition may differ, the set may not.
        let (inc, ..) = run_feed(&shuffled(&ops, seed_a ^ seed_b), cap, epoch_ops, 1);
        let mut done: Vec<SubmittedOp> = inc.into_iter().flatten().collect();
        done.sort_by_key(|o| (o.client, o.seq));
        let mut want = ops.clone();
        want.sort_by_key(|o| (o.client, o.seq));
        prop_assert_eq!(done, want);
    }

    // Under any capacity, admitted + shed == submitted exactly, no op
    // appears twice, and every admitted op appears in exactly one epoch.
    #[test]
    fn shed_accounting_is_exact_under_pressure(
        counts in proptest::collection::vec(0u8..20, 1..8),
        epoch_ops in 1usize..16,
        extra_cap in 0usize..16,
        burst in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let ops = population(&counts);
        prop_assume!(!ops.is_empty());
        let cap = epoch_ops + extra_cap;
        let (epochs, submitted, admitted, shed) =
            run_feed(&shuffled(&ops, seed), cap, epoch_ops, burst);
        prop_assert_eq!(submitted, ops.len() as u64);
        prop_assert_eq!(admitted + shed, submitted);
        let emitted: Vec<SubmittedOp> = epochs.iter().flatten().copied().collect();
        prop_assert_eq!(emitted.len() as u64, admitted);
        let mut keys: Vec<(u64, u64)> = emitted.iter().map(|o| (o.client, o.seq)).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
        for e in &epochs {
            prop_assert!(e.len() <= epoch_ops, "epoch size bound");
            prop_assert!(e.windows(2).all(|w| (w[0].client, w[0].seq) < (w[1].client, w[1].seq)),
                "canonical order inside each epoch");
        }
    }

    // A drained batcher is indistinguishable from a fresh one: feeding
    // a second population after fully draining the first yields the
    // same epochs the second population yields alone.
    #[test]
    fn drained_batcher_has_no_memory(
        counts_a in proptest::collection::vec(0u8..8, 1..6),
        counts_b in proptest::collection::vec(1u8..8, 1..6),
        epoch_ops in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let a = population(&counts_a);
        let b = population(&counts_b);
        let cap = (a.len() + b.len()).max(epoch_ops);
        let mut batcher = EpochBatcher::new(cap, epoch_ops);
        for &op in &shuffled(&a, seed) {
            batcher.submit(op);
        }
        while batcher.pending_len() > 0 {
            batcher.take_epoch();
        }
        let mut after: Vec<Vec<SubmittedOp>> = Vec::new();
        for &op in &shuffled(&b, seed ^ 1) {
            batcher.submit(op);
            if batcher.epoch_ready() {
                after.push(batcher.take_epoch());
            }
        }
        while batcher.pending_len() > 0 {
            after.push(batcher.take_epoch());
        }
        // Same arrival order as `after` — any difference would be
        // leftover state, not interleaving.
        let (fresh, ..) = run_feed(&shuffled(&b, seed ^ 1), cap, epoch_ops, 1);
        prop_assert_eq!(after, fresh);
    }

    // Priority-aware eviction keeps the accounting exact under random
    // priorities, never sheds an op while a strictly weaker one is
    // pending, and every submitted op is answered exactly once
    // (epoch slot or shed).
    #[test]
    fn priority_eviction_keeps_accounting_and_ordering(
        priorities in proptest::collection::vec(0u8..4, 1..64),
        queue_cap in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut b = EpochBatcher::new(queue_cap, queue_cap);
        let mut shed_keys: Vec<(u64, u64)> = Vec::new();
        let mut submitted_keys: Vec<(u64, u64)> = Vec::new();
        for (i, &priority) in priorities.iter().enumerate() {
            let op = SubmittedOp {
                client: rng.next_below(5),
                seq: i as u64,
                line: i as u64,
                req: MemReq::Read,
                priority,
            };
            submitted_keys.push((op.client, op.seq));
            match b.submit(op) {
                dve_service::SubmitOutcome::Admitted => {}
                dve_service::SubmitOutcome::Shed => shed_keys.push((op.client, op.seq)),
                dve_service::SubmitOutcome::AdmittedEvicting(victim) => {
                    prop_assert!(victim.priority < op.priority,
                        "eviction must strictly upgrade priority");
                    shed_keys.push((victim.client, victim.seq));
                }
            }
            prop_assert!(b.accounted());
        }
        prop_assert_eq!(b.submitted(), priorities.len() as u64);
        prop_assert_eq!(b.shed(), shed_keys.len() as u64);
        // The whole buffer drains in one epoch (cap == epoch size), and
        // its population matches the admission counter exactly.
        let survivors = b.take_epoch();
        prop_assert_eq!(survivors.len() as u64, b.admitted());
        prop_assert_eq!(b.pending_len(), 0);
        // Exactly-once answering: shed keys and admitted keys
        // partition the submitted population.
        let mut answered: Vec<(u64, u64)> = survivors
            .iter()
            .map(|o| (o.client, o.seq))
            .collect();
        answered.extend(&shed_keys);
        answered.sort_unstable();
        submitted_keys.sort_unstable();
        prop_assert_eq!(answered, submitted_keys);
    }
}
