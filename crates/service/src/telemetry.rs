//! Live service telemetry: lock-free counters for the hot path, a
//! mutex-guarded snapshot for the slow (per-epoch) path, and the
//! plaintext renderings served at `GET /metrics` and `GET /health`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use dve_sim::latency::{Component, LatencyBreakdown, LatencyHists};

/// Histogram / engine state published by the epoch runner after each
/// epoch. Scrapes read a coherent copy under the mutex; the op hot
/// path never touches it.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Cumulative per-op latency histograms since service start.
    pub hists: LatencyHists,
    /// Engine-side cumulative latency totals (the conservation
    /// reference: `hists` must sum to exactly this).
    pub engine_latency: LatencyBreakdown,
    /// Latest system clock (max per-core time), in core cycles.
    pub cycles: u64,
    /// Engine degraded-mode transitions (§V-E enter/leave events).
    pub degraded_transitions: u64,
    /// Recovery ledger self-consistency (see
    /// `dve::chaos::RecoveryLedger::consistent`).
    pub recovery_consistent: bool,
    /// Demand reads that took the §V-B2 recovery path.
    pub detected_reads: u64,
    /// Uncorrectable demand reads raised as machine checks.
    pub machine_checks: u64,
    /// Live replica-directory entries per node (index = node id).
    pub node_replica_entries: Vec<u64>,
    /// Per-directed-edge inter-node link occupancy.
    pub edge_occupancy: Vec<EdgeOccupancy>,
    /// Per-tenant accounting; empty when the service runs without a
    /// tenant mix.
    pub tenants: Vec<TenantTelemetry>,
}

/// One tenant's slice of the service accounting, published with each
/// snapshot when a tenant mix is configured.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantTelemetry {
    /// Tenant name (metrics label).
    pub name: String,
    /// Shed priority (higher survives overload longer).
    pub priority: u8,
    /// Contracted p99 latency budget, simulated cycles.
    pub slo_p99_cycles: u64,
    /// Completions delivered for this tenant's admitted ops.
    pub completed: u64,
    /// This tenant's ops refused or evicted at admission.
    pub shed: u64,
    /// Machine checks raised by this tenant's demand reads.
    pub machine_checks: u64,
    /// This tenant's demand reads that took the recovery detour.
    pub detected_reads: u64,
    /// Recovery-detour cycles absorbed by this tenant's ops.
    pub recovery_cycles: u64,
    /// Measured end-to-end latency quantiles (simulated cycles).
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
}

impl TenantTelemetry {
    /// Whether the measured p99 is within the contracted budget.
    pub fn slo_ok(&self) -> bool {
        self.p99 <= self.slo_p99_cycles
    }
}

/// Occupancy of one directed inter-node link edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeOccupancy {
    /// Source node id.
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Messages granted onto the edge.
    pub messages: u64,
    /// Cycles the edge spent busy serving transfers.
    pub busy_cycles: u64,
}

/// Shared between sessions, the epoch runner, and HTTP scrapes.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Ops offered by sessions (admitted + shed).
    pub submitted: AtomicU64,
    /// Ops accepted into the epoch queue.
    pub admitted: AtomicU64,
    /// Ops refused at admission (queue full).
    pub shed: AtomicU64,
    /// Admitted ops whose completion has been delivered.
    pub completed: AtomicU64,
    /// Epochs executed.
    pub epochs: AtomicU64,
    /// Live session count.
    pub sessions: AtomicU64,
    /// Service accepts work (false once draining).
    accepting: AtomicBool,
    snapshot: Mutex<TelemetrySnapshot>,
}

impl Telemetry {
    pub fn new() -> Telemetry {
        let t = Telemetry::default();
        t.accepting.store(true, Ordering::Release);
        t
    }

    /// Marks the service as draining; `/health` flips to `draining`.
    pub fn stop_accepting(&self) {
        self.accepting.store(false, Ordering::Release);
    }

    /// Whether the service is accepting new work.
    pub fn accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Publishes a fresh snapshot (epoch runner, once per epoch).
    pub fn publish(&self, snap: TelemetrySnapshot) {
        *self.snapshot.lock().unwrap() = snap;
    }

    /// A coherent copy of the last published snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.snapshot.lock().unwrap().clone()
    }

    /// The `/health` body: one line, `ok` while accepting (plus a
    /// conservation check against the last snapshot), `draining`
    /// during shutdown.
    pub fn render_health(&self) -> String {
        let snap = self.snapshot();
        let conserves = snap.hists.count() == 0 || snap.hists.conserves(&snap.engine_latency);
        let state = match (self.accepting(), conserves && snap.recovery_consistent) {
            (true, true) => "ok",
            (true, false) => "degraded-accounting",
            (false, _) => "draining",
        };
        format!(
            "{state} sessions={} completed={}\n",
            self.sessions.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
        )
    }

    /// The `/metrics` body: Prometheus-style plaintext. Counters come
    /// from the atomics (exact, racy-fresh); latency quantiles come
    /// from the last published snapshot (coherent, epoch-fresh).
    pub fn render_metrics(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, v: u64| {
            out.push_str(&format!("# TYPE dve_{name} counter\ndve_{name} {v}\n"));
        };
        counter("ops_submitted", self.submitted.load(Ordering::Relaxed));
        counter("ops_admitted", self.admitted.load(Ordering::Relaxed));
        counter("ops_shed", self.shed.load(Ordering::Relaxed));
        counter("ops_completed", self.completed.load(Ordering::Relaxed));
        counter("epochs", self.epochs.load(Ordering::Relaxed));
        counter("sessions", self.sessions.load(Ordering::Relaxed));
        counter("cycles", snap.cycles);
        counter("degraded_transitions", snap.degraded_transitions);
        counter("recovery_detected_reads", snap.detected_reads);
        counter("machine_checks", snap.machine_checks);

        if !snap.node_replica_entries.is_empty() {
            out.push_str("# TYPE dve_node_replica_entries gauge\n");
            for (node, v) in snap.node_replica_entries.iter().enumerate() {
                out.push_str(&format!(
                    "dve_node_replica_entries{{node=\"{node}\"}} {v}\n"
                ));
            }
        }
        if !snap.edge_occupancy.is_empty() {
            out.push_str("# TYPE dve_link_messages counter\n");
            for e in &snap.edge_occupancy {
                out.push_str(&format!(
                    "dve_link_messages{{from=\"{}\",to=\"{}\"}} {}\n",
                    e.from, e.to, e.messages
                ));
            }
            out.push_str("# TYPE dve_link_busy_cycles counter\n");
            for e in &snap.edge_occupancy {
                out.push_str(&format!(
                    "dve_link_busy_cycles{{from=\"{}\",to=\"{}\"}} {}\n",
                    e.from, e.to, e.busy_cycles
                ));
            }
        }

        if !snap.tenants.is_empty() {
            let mut tenant_counter = |name: &str, get: &dyn Fn(&TenantTelemetry) -> u64| {
                out.push_str(&format!("# TYPE dve_tenant_{name} counter\n"));
                for t in &snap.tenants {
                    out.push_str(&format!(
                        "dve_tenant_{name}{{tenant=\"{}\"}} {}\n",
                        t.name,
                        get(t)
                    ));
                }
            };
            tenant_counter("ops_completed", &|t| t.completed);
            tenant_counter("ops_shed", &|t| t.shed);
            tenant_counter("machine_checks", &|t| t.machine_checks);
            tenant_counter("detected_reads", &|t| t.detected_reads);
            tenant_counter("recovery_cycles", &|t| t.recovery_cycles);
            out.push_str("# TYPE dve_tenant_latency_cycles summary\n");
            for t in &snap.tenants {
                for (q, v) in [("0.5", t.p50), ("0.99", t.p99), ("0.999", t.p999)] {
                    out.push_str(&format!(
                        "dve_tenant_latency_cycles{{tenant=\"{}\",quantile=\"{q}\"}} {v}\n",
                        t.name
                    ));
                }
            }
            out.push_str("# TYPE dve_tenant_slo_budget_cycles gauge\n");
            for t in &snap.tenants {
                out.push_str(&format!(
                    "dve_tenant_slo_budget_cycles{{tenant=\"{}\"}} {}\n",
                    t.name, t.slo_p99_cycles
                ));
            }
            out.push_str("# TYPE dve_tenant_slo_ok gauge\n");
            for t in &snap.tenants {
                out.push_str(&format!(
                    "dve_tenant_slo_ok{{tenant=\"{}\"}} {}\n",
                    t.name,
                    t.slo_ok() as u8
                ));
            }
            // Sum conservation against the global counters: every
            // completed/shed op belongs to exactly one tenant, and
            // attributed detections/machine checks never exceed the
            // ledger totals (scrub-driven detections between ops are
            // deliberately unattributed).
            let sum =
                |get: &dyn Fn(&TenantTelemetry) -> u64| snap.tenants.iter().map(get).sum::<u64>();
            let tenant_conserves = sum(&|t| t.completed) == self.completed.load(Ordering::Relaxed)
                && sum(&|t| t.shed) == self.shed.load(Ordering::Relaxed)
                && sum(&|t| t.machine_checks) <= snap.machine_checks
                && sum(&|t| t.detected_reads) <= snap.detected_reads;
            out.push_str(&format!(
                "# TYPE dve_tenant_conserves gauge\ndve_tenant_conserves {}\n",
                tenant_conserves as u8
            ));
        }

        out.push_str("# TYPE dve_latency_cycles summary\n");
        let mut quantiles = |label: &str, (p50, p99, p999): (u64, u64, u64), sum: u128, n: u64| {
            for (q, v) in [("0.5", p50), ("0.99", p99), ("0.999", p999)] {
                out.push_str(&format!(
                    "dve_latency_cycles{{component=\"{label}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "dve_latency_cycles_sum{{component=\"{label}\"}} {sum}\n\
                 dve_latency_cycles_count{{component=\"{label}\"}} {n}\n"
            ));
        };
        quantiles(
            "total",
            snap.hists.total.tail(),
            snap.hists.total.sum(),
            snap.hists.total.count(),
        );
        for c in Component::ALL {
            let h = snap.hists.component(c);
            quantiles(c.label(), h.tail(), h.sum(), h.count());
        }

        let conserves = snap.hists.count() == 0 || snap.hists.conserves(&snap.engine_latency);
        out.push_str(&format!(
            "# TYPE dve_latency_conserves gauge\ndve_latency_conserves {}\n\
             # TYPE dve_recovery_consistent gauge\ndve_recovery_consistent {}\n",
            conserves as u8, snap.recovery_consistent as u8
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_tracks_accepting_state() {
        let t = Telemetry::new();
        let snap = TelemetrySnapshot {
            recovery_consistent: true,
            ..TelemetrySnapshot::default()
        };
        t.publish(snap);
        assert!(t.render_health().starts_with("ok"));
        t.stop_accepting();
        assert!(t.render_health().starts_with("draining"));
    }

    #[test]
    fn metrics_render_counters_and_quantiles() {
        let t = Telemetry::new();
        t.submitted.store(10, Ordering::Relaxed);
        t.completed.store(9, Ordering::Relaxed);
        let mut snap = TelemetrySnapshot {
            recovery_consistent: true,
            ..TelemetrySnapshot::default()
        };
        let mut b = LatencyBreakdown::default();
        b.add(Component::Mesh, 7);
        b.add(Component::BankService, 35);
        snap.hists.record(&b);
        snap.engine_latency = b;
        t.publish(snap);
        let m = t.render_metrics();
        assert!(m.contains("dve_ops_submitted 10"), "{m}");
        assert!(
            m.contains("component=\"total\",quantile=\"0.99\"} 42"),
            "{m}"
        );
        assert!(m.contains("dve_latency_conserves 1"), "{m}");
        // A mismatched engine aggregate must flip the conservation gauge.
        let mut bad = t.snapshot();
        bad.engine_latency.add(Component::Link, 1);
        t.publish(bad);
        assert!(t.render_metrics().contains("dve_latency_conserves 0"));
    }

    #[test]
    fn tenant_gauges_render_and_sum_conserve() {
        let t = Telemetry::new();
        t.completed.store(30, Ordering::Relaxed);
        t.shed.store(5, Ordering::Relaxed);
        let snap = TelemetrySnapshot {
            recovery_consistent: true,
            machine_checks: 2,
            detected_reads: 9,
            tenants: vec![
                TenantTelemetry {
                    name: "gold".to_string(),
                    priority: 2,
                    slo_p99_cycles: 100,
                    completed: 20,
                    machine_checks: 1,
                    detected_reads: 4,
                    recovery_cycles: 10,
                    p50: 10,
                    p99: 90,
                    p999: 95,
                    ..TenantTelemetry::default()
                },
                TenantTelemetry {
                    name: "bronze".to_string(),
                    slo_p99_cycles: 50,
                    completed: 10,
                    shed: 5,
                    machine_checks: 1,
                    detected_reads: 5,
                    p50: 10,
                    p99: 80,
                    p999: 95,
                    ..TenantTelemetry::default()
                },
            ],
            ..TelemetrySnapshot::default()
        };
        t.publish(snap);
        let m = t.render_metrics();
        assert!(
            m.contains("dve_tenant_ops_completed{tenant=\"gold\"} 20"),
            "{m}"
        );
        assert!(
            m.contains("dve_tenant_ops_shed{tenant=\"bronze\"} 5"),
            "{m}"
        );
        assert!(
            m.contains("dve_tenant_latency_cycles{tenant=\"gold\",quantile=\"0.99\"} 90"),
            "{m}"
        );
        assert!(m.contains("dve_tenant_slo_ok{tenant=\"gold\"} 1"), "{m}");
        assert!(m.contains("dve_tenant_slo_ok{tenant=\"bronze\"} 0"), "{m}");
        assert!(m.contains("dve_tenant_conserves 1"), "{m}");
        // Losing one tenant's completed op must break sum conservation.
        let mut bad = t.snapshot();
        bad.tenants[0].completed -= 1;
        t.publish(bad);
        assert!(t.render_metrics().contains("dve_tenant_conserves 0"));
    }
}
