//! Live service telemetry: lock-free counters for the hot path, a
//! mutex-guarded snapshot for the slow (per-epoch) path, and the
//! plaintext renderings served at `GET /metrics` and `GET /health`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use dve_sim::latency::{Component, LatencyBreakdown, LatencyHists};

/// Histogram / engine state published by the epoch runner after each
/// epoch. Scrapes read a coherent copy under the mutex; the op hot
/// path never touches it.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Cumulative per-op latency histograms since service start.
    pub hists: LatencyHists,
    /// Engine-side cumulative latency totals (the conservation
    /// reference: `hists` must sum to exactly this).
    pub engine_latency: LatencyBreakdown,
    /// Latest system clock (max per-core time), in core cycles.
    pub cycles: u64,
    /// Engine degraded-mode transitions (§V-E enter/leave events).
    pub degraded_transitions: u64,
    /// Recovery ledger self-consistency (see
    /// `dve::chaos::RecoveryLedger::consistent`).
    pub recovery_consistent: bool,
    /// Demand reads that took the §V-B2 recovery path.
    pub detected_reads: u64,
    /// Live replica-directory entries per node (index = node id).
    pub node_replica_entries: Vec<u64>,
    /// Per-directed-edge inter-node link occupancy.
    pub edge_occupancy: Vec<EdgeOccupancy>,
}

/// Occupancy of one directed inter-node link edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeOccupancy {
    /// Source node id.
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Messages granted onto the edge.
    pub messages: u64,
    /// Cycles the edge spent busy serving transfers.
    pub busy_cycles: u64,
}

/// Shared between sessions, the epoch runner, and HTTP scrapes.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Ops offered by sessions (admitted + shed).
    pub submitted: AtomicU64,
    /// Ops accepted into the epoch queue.
    pub admitted: AtomicU64,
    /// Ops refused at admission (queue full).
    pub shed: AtomicU64,
    /// Admitted ops whose completion has been delivered.
    pub completed: AtomicU64,
    /// Epochs executed.
    pub epochs: AtomicU64,
    /// Live session count.
    pub sessions: AtomicU64,
    /// Service accepts work (false once draining).
    accepting: AtomicBool,
    snapshot: Mutex<TelemetrySnapshot>,
}

impl Telemetry {
    pub fn new() -> Telemetry {
        let t = Telemetry::default();
        t.accepting.store(true, Ordering::Release);
        t
    }

    /// Marks the service as draining; `/health` flips to `draining`.
    pub fn stop_accepting(&self) {
        self.accepting.store(false, Ordering::Release);
    }

    /// Whether the service is accepting new work.
    pub fn accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Publishes a fresh snapshot (epoch runner, once per epoch).
    pub fn publish(&self, snap: TelemetrySnapshot) {
        *self.snapshot.lock().unwrap() = snap;
    }

    /// A coherent copy of the last published snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.snapshot.lock().unwrap().clone()
    }

    /// The `/health` body: one line, `ok` while accepting (plus a
    /// conservation check against the last snapshot), `draining`
    /// during shutdown.
    pub fn render_health(&self) -> String {
        let snap = self.snapshot();
        let conserves = snap.hists.count() == 0 || snap.hists.conserves(&snap.engine_latency);
        let state = match (self.accepting(), conserves && snap.recovery_consistent) {
            (true, true) => "ok",
            (true, false) => "degraded-accounting",
            (false, _) => "draining",
        };
        format!(
            "{state} sessions={} completed={}\n",
            self.sessions.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
        )
    }

    /// The `/metrics` body: Prometheus-style plaintext. Counters come
    /// from the atomics (exact, racy-fresh); latency quantiles come
    /// from the last published snapshot (coherent, epoch-fresh).
    pub fn render_metrics(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, v: u64| {
            out.push_str(&format!("# TYPE dve_{name} counter\ndve_{name} {v}\n"));
        };
        counter("ops_submitted", self.submitted.load(Ordering::Relaxed));
        counter("ops_admitted", self.admitted.load(Ordering::Relaxed));
        counter("ops_shed", self.shed.load(Ordering::Relaxed));
        counter("ops_completed", self.completed.load(Ordering::Relaxed));
        counter("epochs", self.epochs.load(Ordering::Relaxed));
        counter("sessions", self.sessions.load(Ordering::Relaxed));
        counter("cycles", snap.cycles);
        counter("degraded_transitions", snap.degraded_transitions);
        counter("recovery_detected_reads", snap.detected_reads);

        if !snap.node_replica_entries.is_empty() {
            out.push_str("# TYPE dve_node_replica_entries gauge\n");
            for (node, v) in snap.node_replica_entries.iter().enumerate() {
                out.push_str(&format!(
                    "dve_node_replica_entries{{node=\"{node}\"}} {v}\n"
                ));
            }
        }
        if !snap.edge_occupancy.is_empty() {
            out.push_str("# TYPE dve_link_messages counter\n");
            for e in &snap.edge_occupancy {
                out.push_str(&format!(
                    "dve_link_messages{{from=\"{}\",to=\"{}\"}} {}\n",
                    e.from, e.to, e.messages
                ));
            }
            out.push_str("# TYPE dve_link_busy_cycles counter\n");
            for e in &snap.edge_occupancy {
                out.push_str(&format!(
                    "dve_link_busy_cycles{{from=\"{}\",to=\"{}\"}} {}\n",
                    e.from, e.to, e.busy_cycles
                ));
            }
        }

        out.push_str("# TYPE dve_latency_cycles summary\n");
        let mut quantiles = |label: &str, (p50, p99, p999): (u64, u64, u64), sum: u128, n: u64| {
            for (q, v) in [("0.5", p50), ("0.99", p99), ("0.999", p999)] {
                out.push_str(&format!(
                    "dve_latency_cycles{{component=\"{label}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "dve_latency_cycles_sum{{component=\"{label}\"}} {sum}\n\
                 dve_latency_cycles_count{{component=\"{label}\"}} {n}\n"
            ));
        };
        quantiles(
            "total",
            snap.hists.total.tail(),
            snap.hists.total.sum(),
            snap.hists.total.count(),
        );
        for c in Component::ALL {
            let h = snap.hists.component(c);
            quantiles(c.label(), h.tail(), h.sum(), h.count());
        }

        let conserves = snap.hists.count() == 0 || snap.hists.conserves(&snap.engine_latency);
        out.push_str(&format!(
            "# TYPE dve_latency_conserves gauge\ndve_latency_conserves {}\n\
             # TYPE dve_recovery_consistent gauge\ndve_recovery_consistent {}\n",
            conserves as u8, snap.recovery_consistent as u8
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_tracks_accepting_state() {
        let t = Telemetry::new();
        let snap = TelemetrySnapshot {
            recovery_consistent: true,
            ..TelemetrySnapshot::default()
        };
        t.publish(snap);
        assert!(t.render_health().starts_with("ok"));
        t.stop_accepting();
        assert!(t.render_health().starts_with("draining"));
    }

    #[test]
    fn metrics_render_counters_and_quantiles() {
        let t = Telemetry::new();
        t.submitted.store(10, Ordering::Relaxed);
        t.completed.store(9, Ordering::Relaxed);
        let mut snap = TelemetrySnapshot {
            recovery_consistent: true,
            ..TelemetrySnapshot::default()
        };
        let mut b = LatencyBreakdown::default();
        b.add(Component::Mesh, 7);
        b.add(Component::BankService, 35);
        snap.hists.record(&b);
        snap.engine_latency = b;
        t.publish(snap);
        let m = t.render_metrics();
        assert!(m.contains("dve_ops_submitted 10"), "{m}");
        assert!(
            m.contains("component=\"total\",quantile=\"0.99\"} 42"),
            "{m}"
        );
        assert!(m.contains("dve_latency_conserves 1"), "{m}");
        // A mismatched engine aggregate must flip the conservation gauge.
        let mut bad = t.snapshot();
        bad.engine_latency.add(Component::Link, 1);
        t.publish(bad);
        assert!(t.render_metrics().contains("dve_latency_conserves 0"));
    }
}
