//! Closed-loop load generator: many concurrent sessions (in-process
//! and TCP) driving a running [`Service`], aggregating what the
//! *clients* observed — which the smoke harness then cross-checks
//! against what the service's own telemetry claims.

use std::time::Instant;

use dve_sim::rng::{derive_seed, SplitMix64};
use dve_sim::stats::LogHistogram;
use dve_workloads::op::MemReq;

use crate::proto::TcpClient;
use crate::service::{Completion, Service};

/// Stream id for loadgen session seeds in [`derive_seed`].
const LOADGEN_STREAM: u64 = 0x10AD;

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total concurrent sessions (threads).
    pub sessions: usize,
    /// How many of those run over TCP (the rest are in-process).
    pub tcp_sessions: usize,
    /// Ops each session submits over its lifetime.
    pub ops_per_session: u64,
    /// Ops per submit call (closed loop: next batch goes out when the
    /// previous one is fully answered).
    pub batch: usize,
    /// Fraction of ops that are reads.
    pub read_fraction: f64,
    /// Lines are drawn uniformly from `[0, line_span)`.
    pub line_span: u64,
    /// Master seed; per-session seeds derive from it.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            sessions: 120,
            tcp_sessions: 20,
            ops_per_session: 900,
            batch: 64,
            read_fraction: 0.7,
            line_span: 1 << 14,
            seed: 0x10AD_2026,
        }
    }
}

/// What the clients collectively observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Ops submitted across all sessions.
    pub submitted: u64,
    /// Completions received (must equal `submitted` — closed loop).
    pub completed: u64,
    /// Completions flagged shed.
    pub shed: u64,
    /// Client-observed end-to-end op latency (simulated cycles),
    /// non-shed ops only.
    pub hist: LogHistogram,
    /// Wall-clock duration of the whole run.
    pub wall: std::time::Duration,
}

impl LoadgenReport {
    /// Sustained wall-clock throughput in ops/second.
    pub fn ops_per_sec(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn session_ops(cfg: &LoadgenConfig, session: u64, from: u64, n: usize) -> Vec<(u64, u64, MemReq)> {
    let mut rng = SplitMix64::new(derive_seed(cfg.seed, LOADGEN_STREAM, session));
    // Fast-forward the stream so consecutive batches continue the same
    // deterministic op sequence (2 draws per op).
    for _ in 0..from * 2 {
        rng.next_u64();
    }
    (0..n as u64)
        .map(|i| {
            let line = rng.next_below(cfg.line_span.max(1));
            let req = if rng.chance(cfg.read_fraction) {
                MemReq::Read
            } else {
                MemReq::Write
            };
            (from + i, line, req)
        })
        .collect()
}

fn tally(comps: &[Completion], hist: &mut LogHistogram, shed: &mut u64) {
    for c in comps {
        if c.shed {
            *shed += 1;
        } else {
            hist.record(c.complete_at - c.issued_at);
        }
    }
}

/// Runs the configured load against `service` and blocks until every
/// session has been fully answered.
pub fn run_loadgen(service: &Service, cfg: &LoadgenConfig) -> LoadgenReport {
    let start = Instant::now();
    let addr = service.addr();
    let mut handles = Vec::with_capacity(cfg.sessions);
    for s in 0..cfg.sessions {
        let cfg = cfg.clone();
        let over_tcp = s < cfg.tcp_sessions;
        // In-process sessions get service-assigned ids; TCP clients
        // pick their own (small ints, below the in-process id base).
        let session = (!over_tcp).then(|| service.session());
        handles.push(std::thread::spawn(move || {
            let mut hist = LogHistogram::new();
            let mut shed = 0u64;
            let mut done = 0u64;
            let mut tcp =
                over_tcp.then(|| TcpClient::connect(addr, s as u64).expect("loadgen TCP connect"));
            while done < cfg.ops_per_session {
                let n = cfg.batch.min((cfg.ops_per_session - done) as usize);
                let ops = session_ops(&cfg, s as u64, done, n);
                let comps = match (&mut tcp, &session) {
                    (Some(client), _) => client.submit(&ops).expect("loadgen TCP submit"),
                    (None, Some(sess)) => sess.submit(&ops).expect("service alive"),
                    (None, None) => unreachable!(),
                };
                assert_eq!(comps.len(), n, "closed loop: every op answered");
                tally(&comps, &mut hist, &mut shed);
                done += n as u64;
            }
            (done, hist, shed)
        }));
    }

    let mut report = LoadgenReport {
        submitted: 0,
        completed: 0,
        shed: 0,
        hist: LogHistogram::new(),
        wall: Default::default(),
    };
    for h in handles {
        let (done, hist, shed) = h.join().expect("loadgen session panicked");
        report.submitted += done;
        report.completed += done;
        report.shed += shed;
        report.hist.merge(&hist);
    }
    report.wall = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_ops_are_deterministic_and_resume_exactly() {
        let cfg = LoadgenConfig::default();
        let whole = session_ops(&cfg, 3, 0, 100);
        let mut split = session_ops(&cfg, 3, 0, 37);
        split.extend(session_ops(&cfg, 3, 37, 63));
        assert_eq!(whole, split, "fast-forward reproduces the stream");
        assert_ne!(
            whole,
            session_ops(&cfg, 4, 0, 100),
            "per-session streams differ"
        );
        let reads = whole.iter().filter(|o| o.2 == MemReq::Read).count();
        assert!(
            reads > 50 && reads < 90,
            "roughly the configured mix: {reads}"
        );
    }

    #[test]
    fn loadgen_drives_a_small_service_end_to_end() {
        let service = crate::Service::start(
            &"epoch_ops=64 epoch_wait_ms=1 queue_cap=8192"
                .parse()
                .unwrap(),
        )
        .unwrap();
        let cfg = LoadgenConfig {
            sessions: 12,
            tcp_sessions: 3,
            ops_per_session: 200,
            batch: 50,
            ..LoadgenConfig::default()
        };
        let lg = run_loadgen(&service, &cfg);
        assert_eq!(lg.submitted, 2400);
        assert_eq!(lg.completed, 2400);
        let report = service.shutdown();
        assert_eq!(report.completed + report.shed, 2400);
        assert_eq!(
            lg.hist.count(),
            report.completed,
            "client view == service view"
        );
        assert!(report.conserves(), "{report:?}");
        let (p50, p99, p999) = lg.hist.tail();
        assert!(p50 <= p99 && p99 <= p999);
        assert!(lg.ops_per_sec() > 0.0);
    }
}
