//! The running service: session registration, the epoch runner that
//! owns the live [`System`], and the TCP front end.
//!
//! Thread layout:
//!
//! * **Runner** (one thread) — owns the `System` and the
//!   [`EpochBatcher`]. Drains the control channel, cuts an epoch when
//!   either `epoch_ops` are pending or `epoch_wait_ms` has elapsed
//!   since the first pending op, executes it via
//!   [`System::run_batch`], routes per-op completions back to
//!   sessions, publishes telemetry. All simulation state is confined
//!   here; no locks on the simulation.
//! * **Listener** (one thread) — non-blocking `accept` loop; spawns a
//!   connection thread per client.
//! * **Connection threads** — sniff HTTP (`GET /metrics`,
//!   `GET /health`) vs the binary frame protocol; binary connections
//!   register a session and relay ops/completions.
//!
//! Shutdown is a drain: the listener stops accepting, sessions'
//! remaining submissions are refused as shed (with completions, so
//! closed-loop clients never hang), the runner executes every already
//! admitted op, and [`Service::shutdown`] returns the final
//! [`ServiceReport`].
//!
//! [`System`]: dve::system::System
//! [`System::run_batch`]: dve::system::System::run_batch

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dve::chaos::{ChaosConfig, ChaosParams};
use dve::config::SystemConfig;
use dve::system::{ClientOp, System};
use dve_dram::controller::EccProfile;
use dve_sim::latency::{LatencyBreakdown, LatencyHists};
use dve_sim::stats::LogHistogram;
use dve_workloads::op::MemReq;
use dve_workloads::tenant::TenantMix;
use dve_workloads::{catalog, TraceGenerator};

use crate::batcher::{EpochBatcher, SubmitOutcome, SubmittedOp};
use crate::config::ServiceConfig;
use crate::proto;
use crate::telemetry::{EdgeOccupancy, Telemetry, TelemetrySnapshot, TenantTelemetry};

/// Per-op completion delivered to the submitting session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Session that submitted the op.
    pub client: u64,
    /// Echo of the client-chosen sequence number.
    pub seq: u64,
    /// The op was refused at admission (queue full or draining); the
    /// timing fields are zero and the op did not touch the system.
    pub shed: bool,
    /// Simulated issue time (core cycles).
    pub issued_at: u64,
    /// Simulated completion time.
    pub complete_at: u64,
    /// Per-layer latency attribution; sums to
    /// `complete_at - issued_at`.
    pub breakdown: LatencyBreakdown,
}

/// Messages into the runner thread.
enum Msg {
    Register {
        client: u64,
        tx: Sender<Vec<Completion>>,
    },
    Deregister {
        client: u64,
    },
    Ops(Vec<SubmittedOp>),
    /// Force §V-E degraded mode on/off on the live system.
    ForceDegraded(bool),
    /// Begin the drain; the runner finishes admitted work and exits.
    Shutdown,
}

/// Final accounting returned by [`Service::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Final simulated clock (core cycles).
    pub cycles: u64,
    /// Admission accounting; `submitted == admitted + shed` always.
    pub submitted: u64,
    pub admitted: u64,
    pub shed: u64,
    /// Completions delivered for admitted ops; equals `admitted` after
    /// a clean drain — the no-dropped-ops gate.
    pub completed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Cumulative per-op latency histograms (whole service lifetime).
    pub hists: LatencyHists,
    /// Engine-side aggregate the histograms must conserve against.
    pub engine_latency: LatencyBreakdown,
    /// §V-E degraded-mode transitions observed by the engine.
    pub degraded_transitions: u64,
    /// Recovery ledger self-consistency at shutdown.
    pub recovery_consistent: bool,
    /// Demand reads that took the §V-B2 recovery path.
    pub detected_reads: u64,
    /// Uncorrectable demand reads raised as machine checks.
    pub machine_checks: u64,
    /// Final per-tenant accounting; empty without a tenant mix.
    pub tenants: Vec<TenantTelemetry>,
}

impl ServiceReport {
    /// The service-level conservation gate: every admitted op
    /// completed, the admission ledger balances, the per-op
    /// histograms sum to the engine's own cycle totals, and (with a
    /// tenant mix) the per-tenant accounting sums back to the global
    /// counters.
    pub fn conserves(&self) -> bool {
        let sum = |get: fn(&TenantTelemetry) -> u64| self.tenants.iter().map(get).sum::<u64>();
        let tenants_ok = self.tenants.is_empty()
            || (sum(|t| t.completed) == self.completed
                && sum(|t| t.shed) == self.shed
                && sum(|t| t.machine_checks) <= self.machine_checks
                && sum(|t| t.detected_reads) <= self.detected_reads);
        self.submitted == self.admitted + self.shed
            && self.completed == self.admitted
            && (self.hists.count() == 0 || self.hists.conserves(&self.engine_latency))
            && tenants_ok
    }
}

/// An in-process session: submit ops, receive completions. Cheap to
/// create (two mpsc channels); thousands can run concurrently.
pub struct Session {
    client: u64,
    cores: usize,
    ctl: Sender<Msg>,
    rx: Receiver<Vec<Completion>>,
}

impl Session {
    /// The session's unique client id.
    pub fn client(&self) -> u64 {
        self.client
    }

    /// Core count of the underlying system (ops are sharded
    /// `client % cores`).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Submits `(seq, line, req)` ops and blocks until every one has a
    /// completion (shed ones included). Completions are returned in
    /// delivery order; match on `seq`. Returns `None` if the service
    /// went away mid-wait.
    pub fn submit(&self, ops: &[(u64, u64, MemReq)]) -> Option<Vec<Completion>> {
        let batch: Vec<SubmittedOp> = ops
            .iter()
            .map(|&(seq, line, req)| SubmittedOp {
                client: self.client,
                seq,
                line,
                req,
                // Stamped by the runner from the tenant mix; sessions
                // have no say in their own shed priority.
                priority: 0,
            })
            .collect();
        self.ctl.send(Msg::Ops(batch)).ok()?;
        let mut got = Vec::with_capacity(ops.len());
        while got.len() < ops.len() {
            got.extend(self.rx.recv().ok()?);
        }
        Some(got)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.ctl.send(Msg::Deregister {
            client: self.client,
        });
    }
}

/// Handle to a running service.
pub struct Service {
    ctl: Sender<Msg>,
    telemetry: Arc<Telemetry>,
    addr: SocketAddr,
    cores: usize,
    next_client: AtomicU64,
    shutdown: Arc<AtomicBool>,
    runner: Option<JoinHandle<ServiceReport>>,
    listener: Option<JoinHandle<()>>,
}

impl Service {
    /// Boots the service: builds the live [`System`](dve::system::System)
    /// for `cfg`, spawns the runner and the TCP listener, and returns
    /// once the listener is bound.
    pub fn start(cfg: &ServiceConfig) -> io::Result<Service> {
        let profile = catalog()
            .into_iter()
            .find(|p| p.name == cfg.workload)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("unknown workload {:?}", cfg.workload),
                )
            })?;

        let mut sys_cfg = SystemConfig::table_ii(cfg.scheme);
        // Shrink the core count to partition over the socket count
        // before applying the topology (nway:3 drops 16 → 15 cores).
        sys_cfg.engine.cores -= sys_cfg.engine.cores % cfg.topology.sockets();
        sys_cfg.set_topology(cfg.topology);
        sys_cfg.mshrs = cfg.mshrs;
        // Client lines are folded into the workload's address span so
        // they hit the same layout (and the same chaos fault sites) as
        // trace traffic would.
        let span = TraceGenerator::new(&profile, sys_cfg.engine.cores, cfg.seed).span_lines();
        if let Some(chaos_seed) = cfg.chaos_seed {
            sys_cfg.ecc = EccProfile::tsd();
            sys_cfg.chaos = Some(ChaosConfig::random(
                chaos_seed,
                &ChaosParams {
                    faults: 8,
                    horizon: 200_000,
                    transient_fraction: 0.5,
                    heal_after: Some(100_000),
                    channels_per_socket: sys_cfg.channels_per_socket(),
                    line_span: span,
                    nodes: sys_cfg.nodes(),
                },
            ));
        }
        let cores = sys_cfg.engine.cores;
        let system = System::new(sys_cfg, &profile, cfg.seed);

        let telemetry = Arc::new(Telemetry::new());
        telemetry.publish(TelemetrySnapshot {
            recovery_consistent: true,
            ..TelemetrySnapshot::default()
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (ctl_tx, ctl_rx) = channel();

        let runner = {
            let telemetry = Arc::clone(&telemetry);
            let epoch_ops = cfg.epoch_ops;
            let queue_cap = cfg.queue_cap;
            let wait = Duration::from_millis(cfg.epoch_wait_ms);
            let tenants = cfg.tenants.clone();
            std::thread::Builder::new()
                .name("dve-epoch-runner".to_string())
                .spawn(move || {
                    run_epochs(
                        system, span, queue_cap, epoch_ops, wait, tenants, ctl_rx, telemetry,
                    )
                })?
        };

        let tcp = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = tcp.local_addr()?;
        let listener = {
            let ctl = ctl_tx.clone();
            let telemetry = Arc::clone(&telemetry);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("dve-listener".to_string())
                .spawn(move || run_listener(tcp, cores, ctl, telemetry, shutdown))?
        };

        Ok(Service {
            ctl: ctl_tx,
            telemetry,
            addr,
            cores,
            next_client: AtomicU64::new(IN_PROC_CLIENT_BASE),
            shutdown,
            runner: Some(runner),
            listener: Some(listener),
        })
    }

    /// The bound TCP address (op protocol + `/metrics` + `/health`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared telemetry handle.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Opens an in-process session with a fresh client id.
    pub fn session(&self) -> Session {
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        self.telemetry.sessions.fetch_add(1, Ordering::Relaxed);
        // The runner can only be gone after shutdown(), which consumes
        // the Service — so this send cannot race a live handle.
        self.ctl
            .send(Msg::Register { client, tx })
            .expect("runner alive while service handle exists");
        Session {
            client,
            cores: self.cores,
            ctl: self.ctl.clone(),
            rx,
        }
    }

    /// Forces §V-E degraded mode on or off on the live system, as an
    /// operator "take one copy out of service" action.
    pub fn force_degraded(&self, on: bool) {
        let _ = self.ctl.send(Msg::ForceDegraded(on));
    }

    /// A clonable, `'static` handle for flipping degraded mode from
    /// another thread while the `Service` itself is borrowed (e.g. by
    /// a running load generator).
    pub fn degraded_control(&self) -> impl Fn(bool) + Send + 'static {
        let ctl = self.ctl.clone();
        move |on| {
            let _ = ctl.send(Msg::ForceDegraded(on));
        }
    }

    /// Graceful drain: stop accepting, execute every admitted op,
    /// tear down the listener, and return the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.telemetry.stop_accepting();
        self.shutdown.store(true, Ordering::Release);
        let _ = self.ctl.send(Msg::Shutdown);
        let report = self
            .runner
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("runner thread panicked");
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        report
    }
}

/// In-process client ids start here; TCP clients pick their own ids
/// below this (the loadgen uses small integers).
const IN_PROC_CLIENT_BASE: u64 = 1 << 32;

fn shed_completion(op: &SubmittedOp) -> Completion {
    Completion {
        client: op.client,
        seq: op.seq,
        shed: true,
        issued_at: 0,
        complete_at: 0,
        breakdown: LatencyBreakdown::default(),
    }
}

/// Runner-local per-tenant accounting. Lives entirely on the runner
/// thread (no locks); snapshots are published through the telemetry
/// mutex like every other epoch-fresh stat.
struct TenantAcct {
    mix: TenantMix,
    completed: Vec<u64>,
    shed: Vec<u64>,
    machine_checks: Vec<u64>,
    detected_reads: Vec<u64>,
    recovery_cycles: Vec<u64>,
    lat: Vec<LogHistogram>,
}

impl TenantAcct {
    fn new(mix: TenantMix) -> TenantAcct {
        let n = mix.tenants().len();
        TenantAcct {
            mix,
            completed: vec![0; n],
            shed: vec![0; n],
            machine_checks: vec![0; n],
            detected_reads: vec![0; n],
            recovery_cycles: vec![0; n],
            lat: vec![LogHistogram::default(); n],
        }
    }

    /// The shed priority the runner stamps on this client's ops.
    fn priority_for(&self, client: u64) -> u8 {
        self.mix.priority_of(self.mix.tenant_of_client(client))
    }

    /// Folds a client line into its tenant's address partition.
    fn fold(&self, client: u64, line: u64, span: u64) -> u64 {
        self.mix
            .fold_line(self.mix.tenant_of_client(client), line, span)
    }

    fn shed_one(&mut self, client: u64) {
        self.shed[self.mix.tenant_of_client(client)] += 1;
    }

    fn complete_one(&mut self, client: u64, latency: u64, b: &LatencyBreakdown) {
        let t = self.mix.tenant_of_client(client);
        self.completed[t] += 1;
        self.recovery_cycles[t] += b.recovery;
        self.lat[t].record(latency);
    }

    fn attribute_faults(&mut self, client: u64, detected_reads: u64, machine_checks: u64) {
        let t = self.mix.tenant_of_client(client);
        self.detected_reads[t] += detected_reads;
        self.machine_checks[t] += machine_checks;
    }

    fn snapshot(&self) -> Vec<TenantTelemetry> {
        self.mix
            .tenants()
            .iter()
            .enumerate()
            .map(|(t, profile)| {
                let (p50, p99, p999) = self.lat[t].tail();
                TenantTelemetry {
                    name: profile.name.clone(),
                    priority: profile.priority,
                    slo_p99_cycles: profile.slo_p99_cycles,
                    completed: self.completed[t],
                    shed: self.shed[t],
                    machine_checks: self.machine_checks[t],
                    detected_reads: self.detected_reads[t],
                    recovery_cycles: self.recovery_cycles[t],
                    p50,
                    p99,
                    p999,
                }
            })
            .collect()
    }
}

/// The epoch runner: the only thread that touches the `System`.
#[allow(clippy::too_many_arguments)]
fn run_epochs(
    mut system: System,
    line_span: u64,
    queue_cap: usize,
    epoch_ops: usize,
    wait: Duration,
    tenants: Option<TenantMix>,
    rx: Receiver<Msg>,
    telemetry: Arc<Telemetry>,
) -> ServiceReport {
    let cores = system.cores() as u64;
    let mut batcher = EpochBatcher::new(queue_cap, epoch_ops);
    let mut routes: HashMap<u64, Sender<Vec<Completion>>> = HashMap::new();
    let mut first_pending: Option<Instant> = None;
    let mut draining = false;
    let mut completed: u64 = 0;
    let mut acct = tenants.map(TenantAcct::new);

    let handle = |msg: Msg,
                  batcher: &mut EpochBatcher,
                  routes: &mut HashMap<u64, Sender<Vec<Completion>>>,
                  system: &mut System,
                  first_pending: &mut Option<Instant>,
                  draining: &mut bool,
                  acct: &mut Option<TenantAcct>| {
        match msg {
            Msg::Register { client, tx } => {
                routes.insert(client, tx);
            }
            Msg::Deregister { client } => {
                routes.remove(&client);
                telemetry.sessions.fetch_sub(1, Ordering::Relaxed);
            }
            Msg::ForceDegraded(on) => system.set_forced_degraded(on),
            Msg::Shutdown => *draining = true,
            Msg::Ops(ops) => {
                let mut shed: Vec<Completion> = Vec::new();
                for mut op in ops {
                    telemetry.submitted.fetch_add(1, Ordering::Relaxed);
                    if let Some(a) = acct.as_ref() {
                        op.priority = a.priority_for(op.client);
                    }
                    // While draining, refuse new work outright (but
                    // still answer it) so the drain terminates.
                    let outcome = if *draining {
                        SubmitOutcome::Shed
                    } else {
                        batcher.submit(op)
                    };
                    match outcome {
                        SubmitOutcome::Admitted => {
                            telemetry.admitted.fetch_add(1, Ordering::Relaxed);
                            if first_pending.is_none() {
                                *first_pending = Some(Instant::now());
                            }
                        }
                        SubmitOutcome::Shed => {
                            telemetry.shed.fetch_add(1, Ordering::Relaxed);
                            if let Some(a) = acct.as_mut() {
                                a.shed_one(op.client);
                            }
                            shed.push(shed_completion(&op));
                        }
                        SubmitOutcome::AdmittedEvicting(victim) => {
                            // The incoming op took the victim's
                            // admitted slot: net admitted unchanged,
                            // one more shed, and the victim's client
                            // still gets an answer.
                            telemetry.shed.fetch_add(1, Ordering::Relaxed);
                            if let Some(a) = acct.as_mut() {
                                a.shed_one(victim.client);
                            }
                            shed.push(shed_completion(&victim));
                            if first_pending.is_none() {
                                *first_pending = Some(Instant::now());
                            }
                        }
                    }
                }
                for (client, comps) in group_by_client(shed) {
                    if let Some(tx) = routes.get(&client) {
                        let _ = tx.send(comps);
                    }
                }
            }
        }
    };

    loop {
        // Drain whatever is queued without blocking.
        while let Ok(msg) = rx.try_recv() {
            handle(
                msg,
                &mut batcher,
                &mut routes,
                &mut system,
                &mut first_pending,
                &mut draining,
                &mut acct,
            );
        }

        let deadline_hit = first_pending.is_some_and(|t| t.elapsed() >= wait);
        if batcher.epoch_ready() || (batcher.pending_len() > 0 && (deadline_hit || draining)) {
            let epoch = batcher.take_epoch();
            let client_ops: Vec<ClientOp> = epoch
                .iter()
                .map(|op| ClientOp {
                    core: (op.client % cores) as usize,
                    // With a tenant mix, each tenant folds into its
                    // own disjoint stripe of the span; otherwise the
                    // whole span is shared.
                    line: match &acct {
                        Some(a) => a.fold(op.client, op.line, line_span.max(1)),
                        None => op.line % line_span.max(1),
                    },
                    req: op.req,
                })
                .collect();
            let outcomes = system.run_batch(&client_ops);
            debug_assert_eq!(outcomes.len(), epoch.len());
            let done: Vec<Completion> = epoch
                .iter()
                .zip(outcomes)
                .map(|(op, out)| {
                    if let Some(a) = acct.as_mut() {
                        a.complete_one(op.client, out.complete_at - out.issued_at, &out.breakdown);
                        a.attribute_faults(op.client, out.detected_reads, out.machine_checks);
                    }
                    Completion {
                        client: op.client,
                        seq: op.seq,
                        shed: false,
                        issued_at: out.issued_at,
                        complete_at: out.complete_at,
                        breakdown: out.breakdown,
                    }
                })
                .collect();
            completed += done.len() as u64;
            telemetry
                .completed
                .fetch_add(done.len() as u64, Ordering::Relaxed);
            telemetry.epochs.fetch_add(1, Ordering::Relaxed);
            for (client, comps) in group_by_client(done) {
                if let Some(tx) = routes.get(&client) {
                    let _ = tx.send(comps);
                }
            }
            first_pending = (batcher.pending_len() > 0).then(Instant::now);
            publish_snapshot(&system, &telemetry, acct.as_ref());
            continue;
        }

        if draining && batcher.pending_len() == 0 {
            break;
        }

        // Idle: block until the next message (or a deadline tick).
        let timeout = if first_pending.is_some() {
            wait.min(Duration::from_millis(1))
                .max(Duration::from_micros(100))
        } else {
            Duration::from_millis(20)
        };
        match rx.recv_timeout(timeout) {
            Ok(msg) => handle(
                msg,
                &mut batcher,
                &mut routes,
                &mut system,
                &mut first_pending,
                &mut draining,
                &mut acct,
            ),
            Err(RecvTimeoutError::Timeout) => {}
            // Every Service/Session handle is gone; drain and exit.
            Err(RecvTimeoutError::Disconnected) => draining = true,
        }
    }

    publish_snapshot(&system, &telemetry, acct.as_ref());
    let engine = system.engine_stats();
    let ledger = system.recovery_ledger();
    // Drain-time sheds bypass the batcher, so the report reads the
    // telemetry counters (the batcher's ledger is a strict subset and
    // its own `accounted()` invariant still holds).
    ServiceReport {
        cycles: system.now(),
        submitted: telemetry.submitted.load(Ordering::Relaxed),
        admitted: telemetry.admitted.load(Ordering::Relaxed),
        shed: telemetry.shed.load(Ordering::Relaxed),
        completed,
        epochs: batcher.epochs(),
        hists: system.latency_hists().clone(),
        engine_latency: engine.latency_breakdown,
        degraded_transitions: engine.degraded_transitions,
        recovery_consistent: ledger.consistent(),
        detected_reads: ledger.detected_reads,
        machine_checks: ledger.machine_checks,
        tenants: acct.as_ref().map(TenantAcct::snapshot).unwrap_or_default(),
    }
}

fn publish_snapshot(system: &System, telemetry: &Telemetry, acct: Option<&TenantAcct>) {
    let engine = system.engine_stats();
    let ledger = system.recovery_ledger();
    let link = system.fabric().link_table();
    let nodes = system.config().nodes();
    let edge_occupancy = (0..nodes)
        .flat_map(|from| (0..nodes).map(move |to| (from, to)))
        .filter(|&(from, to)| from != to)
        .map(|(from, to)| {
            let s = link.edge_stats(from, to);
            EdgeOccupancy {
                from,
                to,
                messages: s.grants,
                busy_cycles: s.busy_cycles,
            }
        })
        .collect();
    telemetry.publish(TelemetrySnapshot {
        hists: system.latency_hists().clone(),
        engine_latency: engine.latency_breakdown,
        cycles: system.now(),
        degraded_transitions: engine.degraded_transitions,
        recovery_consistent: ledger.consistent(),
        detected_reads: ledger.detected_reads,
        machine_checks: ledger.machine_checks,
        node_replica_entries: system.node_replica_entries(),
        edge_occupancy,
        tenants: acct.map(TenantAcct::snapshot).unwrap_or_default(),
    });
}

fn group_by_client(comps: Vec<Completion>) -> HashMap<u64, Vec<Completion>> {
    let mut by_client: HashMap<u64, Vec<Completion>> = HashMap::new();
    for c in comps {
        by_client.entry(c.client).or_default().push(c);
    }
    by_client
}

/// Accept loop. Non-blocking so shutdown can interrupt it.
fn run_listener(
    tcp: TcpListener,
    cores: usize,
    ctl: Sender<Msg>,
    telemetry: Arc<Telemetry>,
    shutdown: Arc<AtomicBool>,
) {
    tcp.set_nonblocking(true).expect("set_nonblocking");
    while !shutdown.load(Ordering::Acquire) {
        match tcp.accept() {
            Ok((stream, _)) => {
                let ctl = ctl.clone();
                let telemetry = Arc::clone(&telemetry);
                let shutdown = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("dve-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, cores, ctl, telemetry, shutdown);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// One connection: HTTP scrape or binary op session.
fn serve_connection(
    mut stream: TcpStream,
    cores: usize,
    ctl: Sender<Msg>,
    telemetry: Arc<Telemetry>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut head = [0u8; 4];
    stream.read_exact(&mut head)?;
    if &head == b"GET " {
        return serve_http(stream, &telemetry);
    }

    // Binary session. `head` is the length prefix of the HELLO frame.
    let len = u32::from_le_bytes(head);
    if len == 0 || len > proto::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad first frame",
        ));
    }
    let mut hello = vec![0u8; len as usize];
    stream.read_exact(&mut hello)?;
    if hello.first() != Some(&proto::TAG_HELLO) || hello.len() != 9 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected HELLO"));
    }
    let client = u64::from_le_bytes(hello[1..9].try_into().unwrap());

    let (tx, rx) = channel();
    telemetry.sessions.fetch_add(1, Ordering::Relaxed);
    if ctl.send(Msg::Register { client, tx }).is_err() {
        return Ok(()); // runner already gone
    }
    proto::write_frame(&mut stream, &proto::encode_hello_ok(client, cores as u32))?;

    // A bounded read timeout lets the thread notice shutdown while
    // parked on an idle connection.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let result = serve_session(&mut stream, client, &ctl, &rx, &shutdown);
    let _ = ctl.send(Msg::Deregister { client });
    result
}

fn serve_session(
    stream: &mut TcpStream,
    client: u64,
    ctl: &Sender<Msg>,
    rx: &Receiver<Vec<Completion>>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    loop {
        let body = match proto::read_frame(stream) {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            // Peer closed between requests: normal end of session.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        if body.first() != Some(&proto::TAG_OPS) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "expected OPS"));
        }
        let ops = proto::decode_ops(&body, client)?;
        let expect = ops.len();
        if ctl.send(Msg::Ops(ops)).is_err() {
            return Ok(());
        }
        let mut got = Vec::with_capacity(expect);
        while got.len() < expect {
            match rx.recv_timeout(Duration::from_secs(30)) {
                Ok(comps) => got.extend(comps),
                Err(_) => return Err(io::Error::new(io::ErrorKind::TimedOut, "completions lost")),
            }
        }
        proto::write_frame(stream, &proto::encode_batch(&got))?;
    }
}

/// Minimal HTTP/1.0 for `GET /metrics` and `GET /health`. The "GET "
/// prefix has already been consumed.
fn serve_http(mut stream: TcpStream, telemetry: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut req = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !req.ends_with(b"\r\n\r\n") && req.len() < 4096 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => req.push(byte[0]),
            Err(_) => break,
        }
    }
    let path = std::str::from_utf8(&req)
        .ok()
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or("");
    let (status, body) = match path {
        "/metrics" => ("200 OK", telemetry.render_metrics()),
        "/health" => ("200 OK", telemetry.render_health()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let rsp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(rsp.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_sim::rng::SplitMix64;
    use dve_workloads::op::MemReq;

    fn small_cfg() -> ServiceConfig {
        // Tiny epochs + a short deadline keep the tests fast.
        "epoch_ops=64 epoch_wait_ms=1 queue_cap=4096 mshrs=2"
            .parse()
            .unwrap()
    }

    fn gen_ops(seed: u64, n: u64) -> Vec<(u64, u64, MemReq)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|seq| {
                let line = rng.next_below(1 << 14);
                let req = if rng.chance(0.7) {
                    MemReq::Read
                } else {
                    MemReq::Write
                };
                (seq, line, req)
            })
            .collect()
    }

    #[test]
    fn in_process_sessions_complete_every_op() {
        let service = Service::start(&small_cfg()).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let session = service.session();
            handles.push(std::thread::spawn(move || {
                let ops = gen_ops(0xA0 + t, 200);
                let comps = session.submit(&ops).expect("service alive");
                assert_eq!(comps.len(), ops.len());
                let mut seqs: Vec<u64> = comps.iter().map(|c| c.seq).collect();
                seqs.sort_unstable();
                assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
                for c in &comps {
                    assert!(!c.shed, "queue_cap ample; nothing sheds");
                    assert_eq!(
                        c.breakdown.total(),
                        c.complete_at - c.issued_at,
                        "per-op conservation on the wire"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = service.shutdown();
        assert_eq!(report.submitted, 1600);
        assert_eq!(report.completed, report.admitted);
        assert!(report.conserves(), "{report:?}");
        assert!(report.cycles > 0);
    }

    #[test]
    fn tcp_sessions_and_http_scrapes_share_the_listener() {
        let service = Service::start(&small_cfg()).unwrap();
        let addr = service.addr();

        let mut client = proto::TcpClient::connect(addr, 3).unwrap();
        assert_eq!(client.cores, 16);
        let ops = gen_ops(0x7C9, 100);
        let comps = client.submit(&ops).unwrap();
        assert_eq!(comps.len(), 100);
        assert!(comps.iter().all(|c| !c.shed));

        // HTTP on the same port.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut rsp = String::new();
        s.read_to_string(&mut rsp).unwrap();
        assert!(rsp.starts_with("HTTP/1.0 200 OK"), "{rsp}");
        assert!(rsp.contains("dve_ops_completed 100"), "{rsp}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /health HTTP/1.0\r\n\r\n").unwrap();
        let mut rsp = String::new();
        s.read_to_string(&mut rsp).unwrap();
        assert!(rsp.contains("ok"), "{rsp}");

        let report = service.shutdown();
        assert!(report.conserves(), "{report:?}");
    }

    #[test]
    fn overload_sheds_exactly_and_answers_every_op() {
        let cfg: ServiceConfig = "epoch_ops=32 epoch_wait_ms=50 queue_cap=32"
            .parse()
            .unwrap();
        let service = Service::start(&cfg).unwrap();
        let session = service.session();
        // One giant burst against a 32-op queue: most of it sheds, but
        // every op gets an answer.
        let ops = gen_ops(7, 1000);
        let comps = session.submit(&ops).unwrap();
        assert_eq!(comps.len(), 1000);
        let shed = comps.iter().filter(|c| c.shed).count();
        assert!(shed > 0, "burst must overflow the 32-op queue");
        drop(session);
        let report = service.shutdown();
        assert_eq!(report.submitted, 1000);
        assert_eq!(report.shed, shed as u64);
        assert!(report.conserves(), "{report:?}");
    }

    #[test]
    fn nway_topology_surfaces_per_node_and_per_edge_metrics() {
        let cfg: ServiceConfig = "topology=nway:4 epoch_ops=64 epoch_wait_ms=1 scheme=dve-deny"
            .parse()
            .unwrap();
        let service = Service::start(&cfg).unwrap();
        let session = service.session();
        assert!(session.submit(&gen_ops(5, 400)).is_some());
        drop(session);

        let mut s = TcpStream::connect(service.addr()).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut rsp = String::new();
        s.read_to_string(&mut rsp).unwrap();
        // Four nodes' replica gauges, and all 12 directed edges.
        for node in 0..4 {
            assert!(
                rsp.contains(&format!("dve_node_replica_entries{{node=\"{node}\"}}")),
                "{rsp}"
            );
        }
        for (from, to) in (0..4).flat_map(|a| (0..4).map(move |b| (a, b))) {
            if from == to {
                continue;
            }
            assert!(
                rsp.contains(&format!("dve_link_messages{{from=\"{from}\",to=\"{to}\"}}")),
                "{rsp}"
            );
        }
        // Replicated traffic must put messages on some edge.
        assert!(rsp.contains("dve_link_busy_cycles"), "{rsp}");
        let report = service.shutdown();
        assert!(report.conserves(), "{report:?}");
    }

    #[test]
    fn tenant_mix_accounts_sheds_and_renders_per_tenant_metrics() {
        let cfg: ServiceConfig = "epoch_ops=32 epoch_wait_ms=50 queue_cap=32 \
             tenants=gold:2:10000000,silver:1:10000000,bronze:0:10000000"
            .parse()
            .unwrap();
        let service = Service::start(&cfg).unwrap();
        // In-proc client ids start at 1<<32 ≡ 1 (mod 3): the first
        // session lands on the middle tenant, silver.
        let session = service.session();
        let ops = gen_ops(7, 800);
        let comps = session.submit(&ops).unwrap();
        assert_eq!(comps.len(), 800);
        let shed = comps.iter().filter(|c| c.shed).count() as u64;
        assert!(shed > 0, "burst must overflow the 32-op queue");

        // The runner publishes the tenant snapshot at the next epoch
        // boundary; wait (bounded) for it to quiesce.
        let telemetry = service.telemetry();
        let deadline = Instant::now() + Duration::from_secs(5);
        let metrics = loop {
            let m = telemetry.render_metrics();
            if m.contains("dve_tenant_conserves 1") || Instant::now() > deadline {
                break m;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        for tenant in ["gold", "silver", "bronze"] {
            for gauge in ["ops_completed", "ops_shed", "machine_checks", "slo_ok"] {
                assert!(
                    metrics.contains(&format!("dve_tenant_{gauge}{{tenant=\"{tenant}\"}}")),
                    "missing dve_tenant_{gauge} for {tenant}: {metrics}"
                );
            }
        }
        assert!(metrics.contains("dve_tenant_conserves 1"), "{metrics}");

        drop(session);
        let report = service.shutdown();
        assert!(report.conserves(), "{report:?}");
        let silver = report.tenants.iter().find(|t| t.name == "silver").unwrap();
        assert_eq!(silver.shed, shed, "every shed belongs to silver");
        assert_eq!(silver.completed, report.completed);
        assert!(silver.p99 > 0, "completed ops have measured latency");
        for t in report.tenants.iter().filter(|t| t.name != "silver") {
            assert_eq!((t.completed, t.shed), (0, 0), "{t:?} saw no traffic");
        }
    }

    #[test]
    fn forced_degradation_flips_live_and_chaos_runs_stay_consistent() {
        let cfg: ServiceConfig = "epoch_ops=64 epoch_wait_ms=1 chaos_seed=11 scheme=dve-deny"
            .parse()
            .unwrap();
        let service = Service::start(&cfg).unwrap();
        let session = service.session();
        assert!(session.submit(&gen_ops(1, 300)).is_some());
        service.force_degraded(true);
        assert!(session.submit(&gen_ops(2, 300)).is_some());
        service.force_degraded(false);
        assert!(session.submit(&gen_ops(3, 300)).is_some());
        drop(session);
        let report = service.shutdown();
        assert!(
            report.degraded_transitions >= 2,
            "on+off must both reach the engine: {report:?}"
        );
        assert!(report.recovery_consistent);
        assert!(report.conserves(), "{report:?}");
    }
}
