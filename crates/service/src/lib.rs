//! `dve-service` — the always-on replication service.
//!
//! Everything below PR 5 is a library plus batch harnesses: build a
//! [`dve::system::System`], run it to completion, read the result. The
//! paper's premise, though, is *on-demand* reliability — Dvé turns
//! coherent replication on and off while the machine serves traffic —
//! and that claim is only testable against a long-running front end.
//! This crate is that front end:
//!
//! ```text
//! clients ──┬─ in-process sessions (mpsc) ──┐
//!           └─ TCP sessions (length-prefixed │    ┌────────────┐
//!              frames over localhost)  ──────┼──▶ │ EpochBatcher│──▶ epoch
//!                                            │    │ (bounded,   │    runner
//!              GET /metrics · GET /health ───┘    │  shed+count)│    (live
//!                                                 └────────────┘    System)
//! ```
//!
//! * **Sessions** submit `(seq, line, read|write)` operations and
//!   receive per-op completions carrying the engine's
//!   [`LatencyBreakdown`](dve_sim::latency::LatencyBreakdown) stamps.
//! * **The batcher** is the admission point: a bounded ingress queue
//!   that sheds (and exactly counts) what it cannot hold, and cuts
//!   fixed-size / fixed-deadline epochs in a canonical `(client, seq)`
//!   order so the epoch contents do not depend on arrival
//!   interleaving.
//! * **The epoch runner** owns the live timed [`System`] and drives
//!   each epoch through [`System::run_batch`]: client traffic pays for
//!   coherence contention, bank conflicts, link occupancy, chaos
//!   detours and §V-E degraded operation exactly like trace traffic.
//! * **Telemetry** aggregates per-component
//!   [`LatencyHists`](dve_sim::latency::LatencyHists) and serves
//!   plaintext `/metrics` + `/health` over the same TCP listener the
//!   op protocol uses.
//!
//! The build environment is offline, so the whole stack is std-only:
//! `std::net::TcpListener`, `std::sync::mpsc`, threads.
//!
//! [`System`]: dve::system::System
//! [`System::run_batch`]: dve::system::System::run_batch

pub mod batcher;
pub mod config;
pub mod loadgen;
pub mod proto;
pub mod service;
pub mod telemetry;

pub use batcher::{EpochBatcher, SubmitOutcome, SubmittedOp};
pub use config::ServiceConfig;
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use service::{Completion, Service, ServiceReport, Session};
pub use telemetry::{Telemetry, TenantTelemetry};
