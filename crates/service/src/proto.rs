//! The TCP wire protocol: little-endian, length-prefixed frames.
//!
//! ```text
//! frame    := len:u32le body
//! body     := tag:u8 payload
//! HELLO    (0x01) := client_id:u64            → HELLO_OK (0x81) := client_id:u64 cores:u32
//! OPS      (0x02) := count:u32 { seq:u64 line:u64 kind:u8 }*
//!        → BATCH    (0x82) := count:u32 { seq:u64 shed:u8 issued:u64 complete:u64 comp[6]:u64 }*
//! ```
//!
//! One request, one response; a client pipelines by sending larger
//! OPS batches, not by overlapping frames. The same listener also
//! answers plain `GET /metrics` and `GET /health`: the connection
//! handler sniffs the first 4 bytes, and `"GET "` read as a
//! little-endian u32 is 0x2054_4547 — far above [`MAX_FRAME`] — so an
//! HTTP request can never be mistaken for a binary frame.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use dve_sim::latency::{Component, LatencyBreakdown};
use dve_workloads::op::MemReq;

use crate::batcher::SubmittedOp;
use crate::service::Completion;

/// Upper bound on a frame body; protects both sides from a corrupt
/// length prefix. Generous: the largest legal OPS frame (u32 count)
/// at this bound still carries ~980k ops.
pub const MAX_FRAME: u32 = 1 << 24;

pub const TAG_HELLO: u8 = 0x01;
pub const TAG_OPS: u8 = 0x02;
pub const TAG_HELLO_OK: u8 = 0x81;
pub const TAG_BATCH: u8 = 0x82;

/// Reads one length-prefixed frame body.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    assert!(!body.is_empty() && body.len() <= MAX_FRAME as usize);
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn take<const N: usize>(buf: &[u8], at: &mut usize) -> io::Result<[u8; N]> {
    let end = *at + N;
    let slice = buf
        .get(*at..end)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated frame"))?;
    *at = end;
    Ok(slice.try_into().unwrap())
}

fn take_u64(buf: &[u8], at: &mut usize) -> io::Result<u64> {
    Ok(u64::from_le_bytes(take::<8>(buf, at)?))
}

/// Encodes a HELLO request.
pub fn encode_hello(client: u64) -> Vec<u8> {
    let mut b = vec![TAG_HELLO];
    b.extend_from_slice(&client.to_le_bytes());
    b
}

/// Encodes a HELLO_OK response.
pub fn encode_hello_ok(client: u64, cores: u32) -> Vec<u8> {
    let mut b = vec![TAG_HELLO_OK];
    b.extend_from_slice(&client.to_le_bytes());
    b.extend_from_slice(&cores.to_le_bytes());
    b
}

/// Encodes an OPS request. `client` is not on the wire — the server
/// stamps ops with the session's registered id, so a session cannot
/// submit on another session's behalf.
pub fn encode_ops(ops: &[(u64, u64, MemReq)]) -> Vec<u8> {
    let mut b = Vec::with_capacity(1 + 4 + ops.len() * 17);
    b.push(TAG_OPS);
    b.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for &(seq, line, req) in ops {
        b.extend_from_slice(&seq.to_le_bytes());
        b.extend_from_slice(&line.to_le_bytes());
        b.push(match req {
            MemReq::Read => 0,
            MemReq::Write => 1,
        });
    }
    b
}

/// Decodes an OPS request body (after the tag byte has been checked),
/// stamping each op with the session's `client` id.
pub fn decode_ops(body: &[u8], client: u64) -> io::Result<Vec<SubmittedOp>> {
    let mut at = 1;
    let count = u32::from_le_bytes(take::<4>(body, &mut at)?);
    let mut ops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let seq = take_u64(body, &mut at)?;
        let line = take_u64(body, &mut at)?;
        let req = match take::<1>(body, &mut at)?[0] {
            0 => MemReq::Read,
            1 => MemReq::Write,
            k => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad op kind {k}"),
                ))
            }
        };
        ops.push(SubmittedOp {
            client,
            seq,
            line,
            req,
            // Tenant priority is service policy, not client input: the
            // runner stamps it from the tenant mix at admission.
            priority: 0,
        });
    }
    Ok(ops)
}

/// Encodes a BATCH response.
pub fn encode_batch(completions: &[Completion]) -> Vec<u8> {
    let mut b = Vec::with_capacity(1 + 4 + completions.len() * 73);
    b.push(TAG_BATCH);
    b.extend_from_slice(&(completions.len() as u32).to_le_bytes());
    for c in completions {
        b.extend_from_slice(&c.seq.to_le_bytes());
        b.push(c.shed as u8);
        b.extend_from_slice(&c.issued_at.to_le_bytes());
        b.extend_from_slice(&c.complete_at.to_le_bytes());
        for comp in Component::ALL {
            b.extend_from_slice(&c.breakdown.get(comp).to_le_bytes());
        }
    }
    b
}

/// Decodes a BATCH response body (tag already checked).
pub fn decode_batch(body: &[u8], client: u64) -> io::Result<Vec<Completion>> {
    let mut at = 1;
    let count = u32::from_le_bytes(take::<4>(body, &mut at)?);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let seq = take_u64(body, &mut at)?;
        let shed = take::<1>(body, &mut at)?[0] != 0;
        let issued_at = take_u64(body, &mut at)?;
        let complete_at = take_u64(body, &mut at)?;
        let mut breakdown = LatencyBreakdown::default();
        for comp in Component::ALL {
            breakdown.add(comp, take_u64(body, &mut at)?);
        }
        out.push(Completion {
            client,
            seq,
            shed,
            issued_at,
            complete_at,
            breakdown,
        });
    }
    Ok(out)
}

/// Client side of the binary protocol — used by the TCP load
/// generator and tests.
pub struct TcpClient {
    stream: TcpStream,
    client: u64,
    /// System core count reported by HELLO_OK.
    pub cores: u32,
}

impl TcpClient {
    /// Connects and performs the HELLO handshake.
    pub fn connect(addr: std::net::SocketAddr, client: u64) -> io::Result<TcpClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &encode_hello(client))?;
        let rsp = read_frame(&mut stream)?;
        let mut at = 1;
        if rsp.first() != Some(&TAG_HELLO_OK) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad HELLO_OK"));
        }
        let echoed = take_u64(&rsp, &mut at)?;
        let cores = u32::from_le_bytes(take::<4>(&rsp, &mut at)?);
        if echoed != client {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "id mismatch"));
        }
        Ok(TcpClient {
            stream,
            client,
            cores,
        })
    }

    /// Submits one batch of `(seq, line, req)` ops and blocks for the
    /// matching completions.
    pub fn submit(&mut self, ops: &[(u64, u64, MemReq)]) -> io::Result<Vec<Completion>> {
        write_frame(&mut self.stream, &encode_ops(ops))?;
        let rsp = read_frame(&mut self.stream)?;
        if rsp.first() != Some(&TAG_BATCH) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad BATCH"));
        }
        decode_batch(&rsp, self.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip() {
        let ops = vec![
            (0u64, 17u64, MemReq::Read),
            (1, 9000, MemReq::Write),
            (u64::MAX, u64::MAX, MemReq::Read),
        ];
        let body = encode_ops(&ops);
        assert_eq!(body[0], TAG_OPS);
        let decoded = decode_ops(&body, 7).unwrap();
        assert_eq!(decoded.len(), 3);
        for (d, (seq, line, req)) in decoded.iter().zip(&ops) {
            assert_eq!((d.client, d.seq, d.line, d.req), (7, *seq, *line, *req));
        }
    }

    #[test]
    fn batch_round_trip_preserves_breakdown() {
        let mut breakdown = LatencyBreakdown::default();
        breakdown.add(Component::Link, 50);
        breakdown.add(Component::Recovery, 3);
        let completions = vec![
            Completion {
                client: 7,
                seq: 12,
                shed: false,
                issued_at: 100,
                complete_at: 400,
                breakdown,
            },
            Completion {
                client: 7,
                seq: 13,
                shed: true,
                issued_at: 0,
                complete_at: 0,
                breakdown: LatencyBreakdown::default(),
            },
        ];
        let body = encode_batch(&completions);
        assert_eq!(decode_batch(&body, 7).unwrap(), completions);
    }

    #[test]
    fn frames_round_trip_and_reject_bad_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        let body = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(body, vec![1, 2, 3]);
        // Oversized length prefix is refused without allocating.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // "GET " sniffed as a length is out of range too (HTTP guard).
        assert!(u32::from_le_bytes(*b"GET ") > MAX_FRAME);
    }

    #[test]
    fn truncated_bodies_error_cleanly() {
        let ops = vec![(1u64, 2u64, MemReq::Write)];
        let body = encode_ops(&ops);
        assert!(decode_ops(&body[..body.len() - 1], 1).is_err());
    }
}
