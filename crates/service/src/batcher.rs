//! Epoch batching with bounded admission.
//!
//! The batcher is the single admission point between the concurrent
//! session front end and the deterministic epoch runner. Two
//! properties are load-bearing and proptested
//! (`tests/proptests.rs`):
//!
//! 1. **Canonical epochs.** An epoch's contents are a pure function of
//!    the *set* of admitted ops, not of their arrival interleaving:
//!    pending ops are ordered by `(client, seq)` before an epoch is
//!    cut. Two runs that admit the same ops in any thread schedule
//!    execute identical epochs — which keeps the live service
//!    replayable even though its ingress is racy.
//! 2. **Exact shed accounting.** The pending buffer is bounded by
//!    `queue_cap`; a submit against a full buffer either refuses the
//!    incoming op or — when the incoming op outranks pending work —
//!    evicts one lowest-priority pending op in its favor. Both paths
//!    are counted, so `admitted + shed == submitted` holds at every
//!    instant. Nothing is silently dropped.
//!
//! Priority-aware shedding makes overload a *tenant* policy: the
//! service runner stamps each op with its tenant's priority, so when
//! the buffer saturates, low-priority tenants absorb the shed first
//! and high-priority tenants keep their SLO.

use dve_workloads::op::MemReq;

/// One client operation as submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmittedOp {
    /// Session id (assigned at registration; unique per session).
    pub client: u64,
    /// Client-chosen sequence number; echoed in the completion so the
    /// client can match responses, and used (with `client`) for the
    /// canonical epoch order. Sessions should use distinct seqs.
    pub seq: u64,
    /// Global line address to access.
    pub line: u64,
    /// Read or write.
    pub req: MemReq,
    /// Shed priority (higher survives overload longer). Stamped by the
    /// service runner from the tenant mix; sessions submit 0.
    pub priority: u8,
}

/// What [`EpochBatcher::submit`] did with an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted into the pending buffer.
    Admitted,
    /// Refused: the buffer is full and nothing pending ranks below the
    /// incoming op.
    Shed,
    /// Admitted by evicting the returned lower-priority pending op,
    /// which is now shed (the caller owes its client a shed
    /// completion).
    AdmittedEvicting(SubmittedOp),
}

impl SubmitOutcome {
    /// Whether the submitted op itself entered the buffer.
    pub fn admitted(&self) -> bool {
        !matches!(self, SubmitOutcome::Shed)
    }
}

/// Bounded ingress buffer that cuts fixed-size epochs in canonical
/// order. Single-threaded by design — the epoch runner owns it and
/// drains session channels into it.
#[derive(Debug)]
pub struct EpochBatcher {
    pending: Vec<SubmittedOp>,
    queue_cap: usize,
    epoch_ops: usize,
    submitted: u64,
    admitted: u64,
    shed: u64,
    epochs: u64,
}

impl EpochBatcher {
    /// `queue_cap` bounds the pending buffer; `epoch_ops` is the epoch
    /// size. Requires `queue_cap >= epoch_ops >= 1` so a full epoch
    /// can always form.
    pub fn new(queue_cap: usize, epoch_ops: usize) -> EpochBatcher {
        assert!(epoch_ops >= 1 && queue_cap >= epoch_ops);
        EpochBatcher {
            pending: Vec::with_capacity(queue_cap.min(1 << 16)),
            queue_cap,
            epoch_ops,
            submitted: 0,
            admitted: 0,
            shed: 0,
            epochs: 0,
        }
    }

    /// Offers one op. With free capacity the op is admitted. At
    /// capacity, the op is shed — unless some pending op has strictly
    /// lower priority, in which case the lowest-priority pending op
    /// (latest in `(client, seq)` order among equals, so earlier work
    /// survives) is evicted in the incoming op's favor and returned
    /// for a shed completion. Every path keeps
    /// `admitted + shed == submitted` exact.
    pub fn submit(&mut self, op: SubmittedOp) -> SubmitOutcome {
        self.submitted += 1;
        if self.pending.len() < self.queue_cap {
            self.admitted += 1;
            self.pending.push(op);
            return SubmitOutcome::Admitted;
        }
        // Full: find the weakest pending op. The scan key is
        // arrival-order independent, so eviction choices are as
        // canonical as the epochs themselves.
        let victim = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.priority, std::cmp::Reverse((p.client, p.seq))))
            .map(|(i, p)| (i, p.priority));
        match victim {
            Some((i, vp)) if vp < op.priority => {
                let evicted = self.pending.swap_remove(i);
                self.pending.push(op);
                // The evicted op moves from admitted to shed; the
                // incoming op is admitted: net admitted unchanged.
                self.shed += 1;
                SubmitOutcome::AdmittedEvicting(evicted)
            }
            _ => {
                self.shed += 1;
                SubmitOutcome::Shed
            }
        }
    }

    /// Whether a full epoch's worth of ops is pending.
    pub fn epoch_ready(&self) -> bool {
        self.pending.len() >= self.epoch_ops
    }

    /// Number of ops currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cuts the next epoch: sorts pending ops into the canonical
    /// `(client, seq)` order and drains up to `epoch_ops` of them.
    /// Returns an empty vec when nothing is pending.
    pub fn take_epoch(&mut self) -> Vec<SubmittedOp> {
        // Sorting the whole buffer (not just the drained prefix) keeps
        // the leftover suffix canonical too, so the *next* epoch is
        // also interleaving-independent. The sort is stable but the
        // key is total for well-behaved clients (distinct seqs), so
        // ties cannot reorder observable results.
        self.pending.sort_by_key(|op| (op.client, op.seq));
        let n = self.pending.len().min(self.epoch_ops);
        if n > 0 {
            self.epochs += 1;
        }
        self.pending.drain(..n).collect()
    }

    /// Total ops offered via [`EpochBatcher::submit`].
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Ops accepted into the pending buffer.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Ops refused because the buffer was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Epochs cut so far (empty cuts are not counted).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The accounting invariant: every submitted op was either
    /// admitted or shed. Checked by tests after every operation; a
    /// violation would mean ops can vanish at admission.
    pub fn accounted(&self) -> bool {
        self.admitted + self.shed == self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(client: u64, seq: u64) -> SubmittedOp {
        SubmittedOp {
            client,
            seq,
            line: client * 1000 + seq,
            req: MemReq::Read,
            priority: 0,
        }
    }

    fn prio(client: u64, seq: u64, priority: u8) -> SubmittedOp {
        SubmittedOp {
            priority,
            ..op(client, seq)
        }
    }

    #[test]
    fn epochs_are_canonical_regardless_of_arrival_order() {
        let mut a = EpochBatcher::new(64, 4);
        let mut b = EpochBatcher::new(64, 4);
        let ops = [op(2, 0), op(1, 1), op(1, 0), op(2, 1), op(1, 2)];
        for o in ops {
            assert!(a.submit(o).admitted());
        }
        for o in ops.iter().rev() {
            assert!(b.submit(*o).admitted());
        }
        let ea = a.take_epoch();
        assert_eq!(ea, b.take_epoch());
        assert_eq!(ea, vec![op(1, 0), op(1, 1), op(1, 2), op(2, 0)]);
        // The leftover suffix drains canonically too.
        assert_eq!(a.take_epoch(), vec![op(2, 1)]);
        assert_eq!(a.take_epoch(), Vec::new());
        assert_eq!(a.epochs(), 2, "empty cut not counted");
    }

    #[test]
    fn sheds_exactly_past_capacity() {
        let mut b = EpochBatcher::new(3, 2);
        let mut refused = 0;
        for seq in 0..10 {
            if !b.submit(op(1, seq)).admitted() {
                refused += 1;
            }
            assert!(b.accounted());
        }
        assert_eq!(b.admitted(), 3);
        assert_eq!(b.shed(), 7);
        assert_eq!(refused, 7);
        // Draining an epoch frees capacity again.
        assert_eq!(b.take_epoch().len(), 2);
        assert!(b.submit(op(1, 10)).admitted());
        assert!(b.accounted());
    }

    #[test]
    fn high_priority_evicts_the_weakest_pending_op() {
        let mut b = EpochBatcher::new(2, 2);
        assert_eq!(b.submit(prio(1, 0, 0)), SubmitOutcome::Admitted);
        assert_eq!(b.submit(prio(2, 0, 1)), SubmitOutcome::Admitted);
        // Full. An equal-priority op is shed (no eviction among peers).
        assert_eq!(b.submit(prio(3, 0, 0)), SubmitOutcome::Shed);
        // A gold op evicts the priority-0 op, not the priority-1 one.
        let out = b.submit(prio(4, 0, 2));
        assert_eq!(out, SubmitOutcome::AdmittedEvicting(prio(1, 0, 0)));
        assert!(b.accounted());
        assert_eq!(b.shed(), 2, "evicted op is counted shed");
        // The epoch holds exactly the survivors, in canonical order.
        assert_eq!(b.take_epoch(), vec![prio(2, 0, 1), prio(4, 0, 2)]);
    }

    #[test]
    fn eviction_prefers_latest_among_equal_priority() {
        let mut b = EpochBatcher::new(2, 2);
        assert!(b.submit(prio(1, 5, 0)).admitted());
        assert!(b.submit(prio(1, 9, 0)).admitted());
        // Among equal priorities the latest (client, seq) is evicted,
        // so earlier-queued work survives.
        assert_eq!(
            b.submit(prio(2, 0, 1)),
            SubmitOutcome::AdmittedEvicting(prio(1, 9, 0))
        );
        assert!(b.accounted());
    }
}
