//! Service configuration and its plain-text `key=value` form.
//!
//! The service is launched from scripts and CI, so its configuration
//! is a flat, whitespace-separated `key=value` string (e.g.
//! `"scheme=dve-deny epoch_ops=4096 chaos_seed=7"`) rather than a
//! builder chain. [`ServiceConfig::from_str`] and
//! [`ServiceConfig::fmt`](std::fmt::Display) are exact inverses, so a
//! config can be logged, copied out of a report, and replayed.

use dve::config::{Scheme, TopologySpec};
use dve_workloads::tenant::TenantMix;

/// Everything needed to boot a [`Service`](crate::Service).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Memory-system scheme the live system runs under.
    pub scheme: Scheme,
    /// Replication topology (`mirror2`, `nway:<n>`, `twotier`) the
    /// live system is built on.
    pub topology: TopologySpec,
    /// Workload name from the catalog — chooses the sharing layout and
    /// footprint the live system is configured for (client ops address
    /// lines inside that footprint).
    pub workload: String,
    /// Master seed for the system build (placement, workload layout).
    pub seed: u64,
    /// MSHR ways per core; >1 lets the epoch runner overlap misses.
    pub mshrs: usize,
    /// Epoch is cut as soon as this many ops are pending…
    pub epoch_ops: usize,
    /// …or this many milliseconds after the first pending op arrived,
    /// whichever comes first (bounded latency under trickle load).
    pub epoch_wait_ms: u64,
    /// Admission bound: ops held while waiting for an epoch slot.
    /// Arrivals beyond this are shed (and exactly counted), never
    /// silently dropped.
    pub queue_cap: usize,
    /// TCP port for the op/telemetry listener; 0 picks an ephemeral
    /// port (the bound address is reported by [`Service::addr`]).
    ///
    /// [`Service::addr`]: crate::Service::addr
    pub port: u16,
    /// `Some(seed)` arms the chaos layer (random fault schedule,
    /// detect-only ECC so recovery detours actually fire); `None`
    /// runs fault-free.
    pub chaos_seed: Option<u64>,
    /// Multi-tenant mix (`tenants=gold:2:60000,bronze:0:200000` —
    /// `name:priority:p99_budget` triples). `Some` turns on per-tenant
    /// accounting and priority-aware shedding; `None` treats all
    /// clients as one anonymous tenant.
    pub tenants: Option<TenantMix>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            scheme: Scheme::DveDeny,
            topology: TopologySpec::Mirror2,
            workload: "backprop".to_string(),
            seed: 42,
            mshrs: 4,
            epoch_ops: 4096,
            epoch_wait_ms: 5,
            queue_cap: 65_536,
            port: 0,
            chaos_seed: None,
            tenants: None,
        }
    }
}

impl std::fmt::Display for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheme={} topology={} workload={} seed={} mshrs={} epoch_ops={} \
             epoch_wait_ms={} queue_cap={} port={} chaos_seed={} tenants={}",
            self.scheme,
            self.topology,
            self.workload,
            self.seed,
            self.mshrs,
            self.epoch_ops,
            self.epoch_wait_ms,
            self.queue_cap,
            self.port,
            match self.chaos_seed {
                None => "none".to_string(),
                Some(s) => s.to_string(),
            },
            match &self.tenants {
                None => "none".to_string(),
                Some(mix) => mix.to_string(),
            }
        )
    }
}

impl std::str::FromStr for ServiceConfig {
    type Err = String;

    /// Parses whitespace-separated `key=value` tokens on top of the
    /// defaults. Unknown keys and malformed values are errors (a typo
    /// must not silently fall back to a default); a repeated key takes
    /// its last value, so callers can append overrides to a base
    /// string.
    fn from_str(s: &str) -> Result<ServiceConfig, String> {
        fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad value {v:?} for {key}"))
        }

        let mut cfg = ServiceConfig::default();
        for tok in s.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            match key {
                "scheme" => cfg.scheme = val.parse()?,
                "topology" => cfg.topology = val.parse()?,
                "workload" => cfg.workload = val.to_string(),
                "seed" => cfg.seed = num(key, val)?,
                "mshrs" => cfg.mshrs = num(key, val)?,
                "epoch_ops" => cfg.epoch_ops = num(key, val)?,
                "epoch_wait_ms" => cfg.epoch_wait_ms = num(key, val)?,
                "queue_cap" => cfg.queue_cap = num(key, val)?,
                "port" => cfg.port = num(key, val)?,
                "chaos_seed" => {
                    cfg.chaos_seed = if val == "none" {
                        None
                    } else {
                        Some(num(key, val)?)
                    }
                }
                "tenants" => {
                    cfg.tenants = if val == "none" {
                        None
                    } else {
                        Some(val.parse::<TenantMix>()?)
                    }
                }
                _ => return Err(format!("unknown service config key {key:?}")),
            }
        }
        if cfg.mshrs == 0 {
            return Err("mshrs must be >= 1".to_string());
        }
        if cfg.epoch_ops == 0 {
            return Err("epoch_ops must be >= 1".to_string());
        }
        if cfg.queue_cap < cfg.epoch_ops {
            return Err(format!(
                "queue_cap {} must be >= epoch_ops {}",
                cfg.queue_cap, cfg.epoch_ops
            ));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_from_str_round_trips() {
        let cases = [
            ServiceConfig::default(),
            ServiceConfig {
                scheme: Scheme::DveAllow,
                topology: TopologySpec::Nway(4),
                workload: "kmeans".to_string(),
                seed: 7,
                mshrs: 1,
                epoch_ops: 128,
                epoch_wait_ms: 0,
                queue_cap: 128,
                port: 4242,
                chaos_seed: Some(0xC0FFEE),
                tenants: None,
            },
            ServiceConfig {
                topology: TopologySpec::TwoTier,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                tenants: Some(TenantMix::standard()),
                ..ServiceConfig::default()
            },
        ];
        for cfg in cases {
            let text = cfg.to_string();
            assert_eq!(text.parse::<ServiceConfig>(), Ok(cfg.clone()), "{text}");
        }
    }

    #[test]
    fn empty_string_is_defaults_and_last_key_wins() {
        assert_eq!("".parse::<ServiceConfig>(), Ok(ServiceConfig::default()));
        let cfg: ServiceConfig = "seed=1 seed=2".parse().unwrap();
        assert_eq!(cfg.seed, 2);
    }

    #[test]
    fn rejects_bad_input() {
        for bad in [
            "frobnicate=1",
            "seed",
            "seed=abc",
            "scheme=dve-maybe",
            "topology=nway:1",
            "topology=ring",
            "mshrs=0",
            "epoch_ops=0",
            "epoch_ops=64 queue_cap=32",
            "tenants=gold:2",
            "tenants=gold:2:0",
            "tenants=gold:2:100,gold:0:200",
        ] {
            assert!(bad.parse::<ServiceConfig>().is_err(), "{bad:?}");
        }
        // chaos_seed admits the explicit "none".
        let cfg: ServiceConfig = "chaos_seed=none".parse().unwrap();
        assert_eq!(cfg.chaos_seed, None);
        // tenants admits the explicit "none" and a real mix.
        let cfg: ServiceConfig = "tenants=none".parse().unwrap();
        assert_eq!(cfg.tenants, None);
        let cfg: ServiceConfig = "tenants=gold:2:60000,bronze:0:200000".parse().unwrap();
        assert_eq!(cfg.tenants.unwrap().tenants().len(), 2);
    }

    #[test]
    fn topology_key_reaches_the_spec() {
        let cfg: ServiceConfig = "topology=nway:3".parse().unwrap();
        assert_eq!(cfg.topology, TopologySpec::Nway(3));
        let cfg: ServiceConfig = "topology=twotier".parse().unwrap();
        assert_eq!(cfg.topology, TopologySpec::TwoTier);
    }
}
