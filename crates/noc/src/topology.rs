//! N-node system topology and replica placement.
//!
//! The paper's system is hard-wired to two sockets: every layer above
//! the link can say "the other socket" and be done. Generalizing to N
//! nodes (and to a disaggregated far-memory tier, following the
//! two-tier replication-based protection scheme of Volos & Sazeides,
//! arXiv 2502.17138) needs two first-class concepts:
//!
//! * [`Topology`] — the node set (compute [`NodeKind::Socket`]s and
//!   [`NodeKind::FarMemory`] pools) and the per-edge link parameters
//!   (latency, serialization bandwidth) of the point-to-point fabric
//!   connecting them.
//! * [`PlacementMap`] — the pure-arithmetic placement function: which
//!   node is *home* for a line, and which node holds its *replica*.
//!   The two-socket mirror is one policy among several; the others are
//!   round-robin N-way striping and the two-tier local-compressed +
//!   remote-full scheme.
//!
//! Golden preservation: [`PlacementPolicy::Mirror2`] on a two-socket
//! topology reproduces the original hard-wired arithmetic exactly —
//! `home = (line / page_lines) % 2` and `replica = 1 - home` — so
//! every pinned cycle-exact golden is reachable from the generic
//! layer. (Round-robin at N = 2 degenerates to the same function; the
//! mirror policy exists so the golden anchor is explicit, not an
//! accident of modular arithmetic.)

use dve_sim::time::{Cycles, Frequency, Nanos};

/// A node identifier: index into the topology's node table. Sockets
/// come first (`0..sockets`), far-memory nodes after.
pub type NodeId = usize;

/// What hardware a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A compute socket: cores, caches, a directory slice, and local
    /// DRAM. Only sockets can be *home* for a line.
    Socket,
    /// A disaggregated memory pool (CXL-class): DRAM and a controller,
    /// no cores. Holds full replicas in the two-tier scheme.
    FarMemory,
}

/// Per-edge link parameters (one direction of a point-to-point link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeParams {
    /// One-way propagation latency.
    pub latency: Nanos,
    /// Serialization bandwidth in bytes per core cycle.
    pub bytes_per_cycle: u64,
}

impl EdgeParams {
    /// The paper's Table II link: 50 ns, 16 B/cycle.
    pub fn qpi() -> EdgeParams {
        EdgeParams {
            latency: Nanos(50),
            bytes_per_cycle: 16,
        }
    }

    /// A CXL-class far-memory hop: longer wire, narrower serialization
    /// (the far tier trades latency for capacity).
    pub fn far_tier() -> EdgeParams {
        EdgeParams {
            latency: Nanos(90),
            bytes_per_cycle: 8,
        }
    }
}

/// The node set and per-edge link parameters of an N-node system.
///
/// Edges exist between every ordered pair of distinct nodes (the
/// fabric is a full mesh of point-to-point links); each edge carries
/// its own latency/bandwidth, defaulting to [`Topology::default_edge`]
/// unless overridden per edge.
///
/// # Example
///
/// ```
/// use dve_noc::topology::{EdgeParams, NodeKind, Topology};
///
/// let t = Topology::symmetric(4, EdgeParams::qpi());
/// assert_eq!(t.nodes(), 4);
/// assert_eq!(t.sockets(), 4);
/// assert_eq!(t.kind(3), NodeKind::Socket);
///
/// let tt = Topology::two_tier(EdgeParams::qpi(), EdgeParams::far_tier());
/// assert_eq!(tt.nodes(), 3);
/// assert_eq!(tt.sockets(), 2);
/// assert_eq!(tt.kind(2), NodeKind::FarMemory);
/// assert!(tt.edge(0, 2).latency > tt.edge(0, 1).latency);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    default_edge: EdgeParams,
    /// Sparse per-edge overrides, keyed by ordered `(from, to)`.
    overrides: Vec<((NodeId, NodeId), EdgeParams)>,
}

impl Topology {
    /// `sockets` identical compute sockets, full mesh of identical
    /// links.
    ///
    /// # Panics
    ///
    /// Panics if `sockets < 2` (replication needs a second node).
    pub fn symmetric(sockets: usize, edge: EdgeParams) -> Topology {
        assert!(sockets >= 2, "replication needs at least two sockets");
        Topology {
            kinds: vec![NodeKind::Socket; sockets],
            default_edge: edge,
            overrides: Vec::new(),
        }
    }

    /// The paper's two-socket system.
    pub fn mirror2(edge: EdgeParams) -> Topology {
        Topology::symmetric(2, edge)
    }

    /// Two sockets plus one far-memory pool; every edge touching the
    /// far node uses `far_edge`.
    pub fn two_tier(socket_edge: EdgeParams, far_edge: EdgeParams) -> Topology {
        let mut t = Topology {
            kinds: vec![NodeKind::Socket, NodeKind::Socket, NodeKind::FarMemory],
            default_edge: socket_edge,
            overrides: Vec::new(),
        };
        let far = 2;
        for s in 0..2 {
            t.set_edge(s, far, far_edge);
            t.set_edge(far, s, far_edge);
        }
        t
    }

    /// Total node count (sockets + far-memory pools).
    pub fn nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of compute sockets (always the node-id prefix `0..sockets`).
    pub fn sockets(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == NodeKind::Socket)
            .count()
    }

    /// The kind of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node]
    }

    /// Whether `node` is a compute socket.
    pub fn is_socket(&self, node: NodeId) -> bool {
        self.kind(node) == NodeKind::Socket
    }

    /// Overrides the parameters of the ordered edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are out of range or equal.
    pub fn set_edge(&mut self, from: NodeId, to: NodeId, edge: EdgeParams) {
        assert!(from < self.nodes() && to < self.nodes() && from != to);
        if let Some(slot) = self
            .overrides
            .iter_mut()
            .find(|((f, t), _)| (*f, *t) == (from, to))
        {
            slot.1 = edge;
        } else {
            self.overrides.push(((from, to), edge));
        }
    }

    /// The parameters of the ordered edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are out of range or equal.
    pub fn edge(&self, from: NodeId, to: NodeId) -> EdgeParams {
        assert!(
            from < self.nodes() && to < self.nodes() && from != to,
            "edge endpoints must be distinct nodes in range"
        );
        self.overrides
            .iter()
            .find(|((f, t), _)| (*f, *t) == (from, to))
            .map(|&(_, e)| e)
            .unwrap_or(self.default_edge)
    }

    /// All ordered edges `(from, to)` with `from != to`, in
    /// deterministic `(from, to)` lexicographic order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.nodes();
        let mut out = Vec::with_capacity(n * (n - 1));
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    out.push((from, to));
                }
            }
        }
        out
    }

    /// The conservative-lookahead horizon for a domain-sharded parallel
    /// simulation: the minimum one-way edge latency (no cross-node
    /// effect can become visible sooner).
    pub fn lookahead(&self, clock: Frequency) -> Cycles {
        self.edges()
            .into_iter()
            .map(|(f, t)| clock.cycles_for(self.edge(f, t).latency))
            .min()
            .expect("a topology always has at least one edge")
    }
}

/// Which placement function maps a line's home to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// The paper's two-socket mirror: `replica = 1 - home`. The
    /// golden-preserving default; only valid on two-socket topologies.
    Mirror2,
    /// Round-robin N-way: pages striped across the *other* sockets,
    /// `replica = (home + 1 + page % (sockets-1)) % sockets`. At
    /// N = 2 this degenerates to the mirror.
    RoundRobin,
    /// Two-tier (Volos & Sazeides): the coherent full replica lives on
    /// a far-memory node; the home node additionally keeps a local
    /// compressed copy for fast recovery (capacity-accounted, not
    /// timed — see DESIGN.md §15 for the fidelity remainder).
    TwoTier {
        /// The far-memory node holding full replicas.
        far: NodeId,
    },
}

/// The pure-arithmetic placement map every layer shares: line → home
/// node, line → replica node. Cheap to copy into the engine, the
/// fabric, and the conformance shadow so they provably agree.
///
/// # Example
///
/// ```
/// use dve_noc::topology::{PlacementMap, PlacementPolicy};
///
/// // The paper's layout: 2 sockets, 64-line pages.
/// let m = PlacementMap::new(2, 64, PlacementPolicy::Mirror2);
/// assert_eq!(m.home_of(0), 0);
/// assert_eq!(m.home_of(64), 1);
/// assert_eq!(m.replica_node(0), 1);
/// assert_eq!(m.replica_node(64), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementMap {
    sockets: usize,
    page_lines: u64,
    policy: PlacementPolicy,
}

impl PlacementMap {
    /// Builds a placement map.
    ///
    /// # Panics
    ///
    /// Panics if `sockets < 2`, `page_lines == 0`, if `Mirror2` is used
    /// with more than two sockets, or if a `TwoTier` far node collides
    /// with the socket range.
    pub fn new(sockets: usize, page_lines: u64, policy: PlacementPolicy) -> PlacementMap {
        assert!(sockets >= 2, "placement needs at least two sockets");
        assert!(page_lines > 0, "page_lines must be non-zero");
        match policy {
            PlacementPolicy::Mirror2 => {
                assert_eq!(sockets, 2, "the mirror policy is two-socket by definition");
            }
            PlacementPolicy::RoundRobin => {}
            PlacementPolicy::TwoTier { far } => {
                assert!(far >= sockets, "the far node must lie outside the sockets");
            }
        }
        PlacementMap {
            sockets,
            page_lines,
            policy,
        }
    }

    /// Number of compute sockets (home candidates).
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Lines per page (the placement granule).
    pub fn page_lines(&self) -> u64 {
        self.page_lines
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Total nodes the placement can name (sockets, plus the far node
    /// for two-tier).
    pub fn nodes(&self) -> usize {
        match self.policy {
            PlacementPolicy::TwoTier { far } => (far + 1).max(self.sockets),
            _ => self.sockets,
        }
    }

    /// The page a line belongs to.
    pub fn page_of(&self, line: u64) -> u64 {
        line / self.page_lines
    }

    /// The home socket of a line: pages interleave round-robin across
    /// sockets (the two-socket case is the paper's parity rule).
    pub fn home_of(&self, line: u64) -> NodeId {
        (self.page_of(line) % self.sockets as u64) as usize
    }

    /// The node holding the coherent replica of `line`.
    pub fn replica_node(&self, line: u64) -> NodeId {
        let home = self.home_of(line);
        match self.policy {
            PlacementPolicy::Mirror2 => 1 - home,
            PlacementPolicy::RoundRobin => {
                let others = self.sockets as u64 - 1;
                (home + 1 + (self.page_of(line) % others) as usize) % self.sockets
            }
            PlacementPolicy::TwoTier { far } => far,
        }
    }

    /// The node holding an auxiliary (recovery-only) local compressed
    /// copy, if the policy keeps one.
    pub fn local_copy_node(&self, line: u64) -> Option<NodeId> {
        match self.policy {
            PlacementPolicy::TwoTier { .. } => Some(self.home_of(line)),
            _ => None,
        }
    }

    /// Whether a core on `node` can be served by the coherent replica
    /// of `line` (it is co-located with the replica and is not the
    /// home).
    pub fn serves_replica_locally(&self, node: NodeId, line: u64) -> bool {
        node != self.home_of(line) && node == self.replica_node(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror2_matches_the_hardwired_arithmetic() {
        let m = PlacementMap::new(2, 64, PlacementPolicy::Mirror2);
        for line in 0..1024u64 {
            let home = ((line / 64) % 2) as usize;
            assert_eq!(m.home_of(line), home);
            assert_eq!(m.replica_node(line), 1 - home, "line {line}");
            assert!(m.serves_replica_locally(1 - home, line));
            assert!(!m.serves_replica_locally(home, line));
        }
        assert_eq!(m.local_copy_node(0), None);
    }

    #[test]
    fn round_robin_at_two_sockets_degenerates_to_the_mirror() {
        let mirror = PlacementMap::new(2, 64, PlacementPolicy::Mirror2);
        let rr = PlacementMap::new(2, 64, PlacementPolicy::RoundRobin);
        for line in 0..4096u64 {
            assert_eq!(mirror.home_of(line), rr.home_of(line));
            assert_eq!(mirror.replica_node(line), rr.replica_node(line));
        }
    }

    #[test]
    fn round_robin_never_places_replica_at_home_and_covers_all_peers() {
        for sockets in 2..=6usize {
            let m = PlacementMap::new(sockets, 8, PlacementPolicy::RoundRobin);
            let mut seen = vec![std::collections::HashSet::new(); sockets];
            for line in 0..(8 * 64 * sockets as u64) {
                let home = m.home_of(line);
                let rep = m.replica_node(line);
                assert_ne!(home, rep, "sockets {sockets} line {line}");
                assert!(rep < sockets, "replica stays on a socket");
                seen[home].insert(rep);
            }
            for (home, peers) in seen.iter().enumerate() {
                assert_eq!(
                    peers.len(),
                    sockets - 1,
                    "home {home} stripes replicas over every other socket"
                );
            }
        }
    }

    #[test]
    fn two_tier_replicates_to_the_far_node_with_a_local_copy() {
        let m = PlacementMap::new(2, 64, PlacementPolicy::TwoTier { far: 2 });
        assert_eq!(m.nodes(), 3);
        for line in 0..512u64 {
            assert_eq!(m.replica_node(line), 2);
            assert_eq!(m.local_copy_node(line), Some(m.home_of(line)));
            // No core lives on the far node, so nothing is served
            // replica-locally.
            for node in 0..2 {
                assert!(!m.serves_replica_locally(node, line));
            }
        }
    }

    #[test]
    fn topology_edges_and_overrides() {
        let mut t = Topology::symmetric(3, EdgeParams::qpi());
        assert_eq!(t.edges().len(), 6);
        let slow = EdgeParams {
            latency: Nanos(60),
            bytes_per_cycle: 16,
        };
        t.set_edge(0, 2, slow);
        assert_eq!(t.edge(0, 2), slow);
        assert_eq!(t.edge(2, 0), EdgeParams::qpi(), "overrides are directional");
        // Re-override replaces in place.
        t.set_edge(0, 2, EdgeParams::qpi());
        assert_eq!(t.edge(0, 2), EdgeParams::qpi());
    }

    #[test]
    fn lookahead_is_the_minimum_edge_latency() {
        let clock = Frequency::ghz(3.0);
        let t = Topology::two_tier(EdgeParams::qpi(), EdgeParams::far_tier());
        // Socket-socket edges are 50 ns = 150 cycles; far edges are
        // slower, so the lookahead is the socket edge.
        assert_eq!(t.lookahead(clock), clock.cycles_for(Nanos(50)));
    }

    #[test]
    #[should_panic(expected = "two-socket by definition")]
    fn mirror_rejects_more_sockets() {
        PlacementMap::new(4, 64, PlacementPolicy::Mirror2);
    }

    #[test]
    #[should_panic(expected = "outside the sockets")]
    fn two_tier_far_node_must_not_be_a_socket() {
        PlacementMap::new(2, 64, PlacementPolicy::TwoTier { far: 1 });
    }
}
