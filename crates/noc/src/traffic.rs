//! Coherence message classes and traffic accounting.
//!
//! Fig. 8 of the paper reports inter-socket traffic *normalized to
//! baseline NUMA*; the correlation between traffic reduction and speedup
//! is its key performance-analysis result. [`TrafficStats`] tallies
//! messages and bytes by [`MessageClass`] so the harness can reproduce
//! that figure.

use std::fmt;

/// Classes of coherence traffic crossing the inter-socket link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// GETS/GETX request (control, 8 B).
    Request,
    /// Data response carrying a cache line (72 B: 64 B + header).
    DataResponse,
    /// Invalidation or downgrade (control, 8 B).
    Invalidation,
    /// Acknowledgement (control, 8 B).
    Ack,
    /// Dirty writeback carrying a line (72 B).
    Writeback,
    /// Replica-directory maintenance (deny-permission pushes, drain
    /// notifications; control, 8 B).
    ReplicaMaintenance,
}

impl MessageClass {
    /// Wire size of one message of this class, in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MessageClass::DataResponse | MessageClass::Writeback => 72,
            _ => 8,
        }
    }

    /// All classes, for iteration in reports.
    pub const ALL: [MessageClass; 6] = [
        MessageClass::Request,
        MessageClass::DataResponse,
        MessageClass::Invalidation,
        MessageClass::Ack,
        MessageClass::Writeback,
        MessageClass::ReplicaMaintenance,
    ];

    fn index(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::DataResponse => 1,
            MessageClass::Invalidation => 2,
            MessageClass::Ack => 3,
            MessageClass::Writeback => 4,
            MessageClass::ReplicaMaintenance => 5,
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Request => "request",
            MessageClass::DataResponse => "data-response",
            MessageClass::Invalidation => "invalidation",
            MessageClass::Ack => "ack",
            MessageClass::Writeback => "writeback",
            MessageClass::ReplicaMaintenance => "replica-maintenance",
        };
        f.write_str(s)
    }
}

/// Per-class message/byte tallies.
///
/// # Example
///
/// ```
/// use dve_noc::traffic::{MessageClass, TrafficStats};
///
/// let mut t = TrafficStats::new();
/// t.record(MessageClass::Request);
/// t.record(MessageClass::DataResponse);
/// assert_eq!(t.total_messages(), 2);
/// assert_eq!(t.total_bytes(), 8 + 72);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    messages: [u64; 6],
    bytes: [u64; 6],
}

impl TrafficStats {
    /// Creates zeroed stats.
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Records one message of `class`.
    pub fn record(&mut self, class: MessageClass) {
        let i = class.index();
        self.messages[i] += 1;
        self.bytes[i] += class.bytes();
    }

    /// Messages of a given class.
    pub fn messages(&self, class: MessageClass) -> u64 {
        self.messages[class.index()]
    }

    /// Bytes of a given class.
    pub fn bytes(&self, class: MessageClass) -> u64 {
        self.bytes[class.index()]
    }

    /// All messages.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// All bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Componentwise difference `self - other` (saturating), used to
    /// isolate the measured region of a run from its warm-up.
    pub fn saturating_sub(&self, other: &TrafficStats) -> TrafficStats {
        let mut out = TrafficStats::new();
        for i in 0..6 {
            out.messages[i] = self.messages[i].saturating_sub(other.messages[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(other.bytes[i]);
        }
        out
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..6 {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
        }
    }

    /// This tally's bytes as a fraction of `baseline`'s (Fig. 8's
    /// normalization). Returns 1.0 when the baseline saw no traffic.
    pub fn normalized_to(&self, baseline: &TrafficStats) -> f64 {
        if baseline.total_bytes() == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / baseline.total_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_reflect_payloads() {
        assert_eq!(MessageClass::Request.bytes(), 8);
        assert_eq!(MessageClass::DataResponse.bytes(), 72);
        assert_eq!(MessageClass::Writeback.bytes(), 72);
    }

    #[test]
    fn per_class_accounting() {
        let mut t = TrafficStats::new();
        t.record(MessageClass::Request);
        t.record(MessageClass::Request);
        t.record(MessageClass::Writeback);
        assert_eq!(t.messages(MessageClass::Request), 2);
        assert_eq!(t.bytes(MessageClass::Request), 16);
        assert_eq!(t.messages(MessageClass::Writeback), 1);
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.total_bytes(), 88);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = TrafficStats::new();
        a.record(MessageClass::Ack);
        let mut b = TrafficStats::new();
        b.record(MessageClass::Ack);
        b.record(MessageClass::Invalidation);
        a.merge(&b);
        assert_eq!(a.messages(MessageClass::Ack), 2);
        assert_eq!(a.messages(MessageClass::Invalidation), 1);
    }

    #[test]
    fn normalization() {
        let mut base = TrafficStats::new();
        base.record(MessageClass::DataResponse);
        base.record(MessageClass::DataResponse);
        let mut mine = TrafficStats::new();
        mine.record(MessageClass::DataResponse);
        assert!((mine.normalized_to(&base) - 0.5).abs() < 1e-12);
        let empty = TrafficStats::new();
        assert_eq!(mine.normalized_to(&empty), 1.0);
    }

    #[test]
    fn all_classes_enumerated_once() {
        let mut seen = std::collections::HashSet::new();
        for c in MessageClass::ALL {
            assert!(seen.insert(c.index()));
            assert!(!c.to_string().is_empty());
        }
        assert_eq!(seen.len(), 6);
    }
}
