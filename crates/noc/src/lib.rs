//! # dve-noc — on-chip mesh and inter-socket interconnect
//!
//! Models the two interconnect levels of the paper's Table II system:
//!
//! * [`mesh`] — the intra-socket 2×4 mesh with table-based static
//!   shortest-path (SSSP) routing at 1 cycle per hop.
//! * [`link`] — the inter-socket point-to-point QPI/UPI-like link with a
//!   fixed 50 ns (configurable 30–60 ns, Fig. 10) per-hop latency, plus
//!   serialization/occupancy so bandwidth contention is visible.
//! * [`traffic`] — message-class accounting; Fig. 8's headline metric is
//!   the *inter-socket traffic* reduction Dvé achieves by serving reads
//!   from the local replica.
//! * [`topology`] — the N-node generalization: node kinds
//!   (compute sockets vs disaggregated far memory), per-edge link
//!   parameters, and the replica [`PlacementMap`] every layer shares
//!   (mirror-2, round-robin N-way, two-tier). [`link::LinkTable`]
//!   instantiates one pipelined port per ordered edge with per-edge
//!   outage windows.
//!
//! # Example
//!
//! ```
//! use dve_noc::mesh::Mesh;
//!
//! let mesh = Mesh::new(4, 2); // the paper's 2×4 mesh
//! assert_eq!(mesh.hops(0, 7), 4); // corner to corner: 3 + 1
//! assert_eq!(mesh.latency_cycles(0, 7), 4); // 1 cycle per hop
//! ```

pub mod link;
pub mod mesh;
pub mod topology;
pub mod traffic;

pub use link::{InterSocketLink, LinkTable};
pub use mesh::Mesh;
pub use topology::{NodeId, NodeKind, PlacementMap, PlacementPolicy, Topology};
pub use traffic::{MessageClass, TrafficStats};
