//! The inter-socket point-to-point link (QPI/UPI-like).
//!
//! §VI: "We use an inter-socket latency of 50ns per hop", with a
//! sensitivity sweep from 30 ns (Fig. 10, NUMA-optimized) to 60 ns
//! (CCIX/OpenCAPI/Gen-Z-class long-range links). The link also models
//! serialization bandwidth so heavy coherence traffic is charged for
//! wire time.
//!
//! Occupancy and traffic accounting sit on a pair of
//! [`dve_sim::resource::Resource`] ports — one per direction — instead
//! of the hand-rolled counters this module used to keep. The ports are
//! *pipelined*: at the traffic levels any of the paper's workloads
//! generate (worst case ≈ 1.5 GB/s against a 48 GB/s-per-direction
//! QPI-class link, <3% utilization) a queueing model would add nothing
//! but noise, so messages never queue; the ports still record grants,
//! occupancy and (trivially zero) queue cycles uniformly with every
//! other timed substrate.

use dve_sim::resource::{Resource, ResourceStats};
use dve_sim::time::{Cycles, Frequency, Nanos};

/// Outcome of a send attempted under outage windows
/// ([`InterSocketLink::transfer_resilient`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSendOutcome {
    /// The message got onto the wire (possibly after retries); carries
    /// the arrival time at the far socket and the retry count.
    Delivered {
        /// Arrival time at the destination socket.
        arrival: Cycles,
        /// Number of retries before the send succeeded (0 = first try).
        retries: u32,
    },
    /// Every attempt of the bounded exponential-backoff schedule fell
    /// inside an outage window; the caller must fall back to
    /// local-copy-only service.
    Failed {
        /// Number of retries burned (always `max_retries`).
        retries: u32,
    },
}

/// A full-duplex point-to-point link between two sockets.
///
/// Each message pays the propagation latency plus a serialization delay
/// of `bytes / bytes_per_cycle` cycles, charged through a pipelined
/// [`Resource`] port per direction.
///
/// # Example
///
/// ```
/// use dve_noc::link::InterSocketLink;
/// use dve_sim::time::{Cycles, Frequency, Nanos};
///
/// let mut link = InterSocketLink::new(Nanos(50), Frequency::ghz(3.0), 16);
/// let done = link.transfer(0, 1, Cycles(0), 64);
/// assert_eq!(done.raw(), 150 + 4); // 50 ns propagation + 64B/16Bpc
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InterSocketLink {
    latency: Cycles,
    bytes_per_cycle: u64,
    /// Directional occupancy ports; index = source socket.
    ports: [Resource; 2],
    bytes: [u64; 2],
    /// Sorted, non-overlapping half-open outage windows `[start, end)`
    /// in cycles. Sends whose attempt time falls inside a window are
    /// retried with bounded exponential backoff.
    outages: Vec<(u64, u64)>,
    /// Backoff base: retry `k` is attempted at `now + base * (2^k - 1)`.
    retry_base: u64,
    /// Maximum number of retries before a send is declared failed.
    max_retries: u32,
    /// Total retries across all resilient sends.
    retries: u64,
    /// Sends that exhausted the retry budget.
    failed_sends: u64,
}

impl InterSocketLink {
    /// Creates a link with propagation latency `latency` (converted at
    /// `clock`) and serialization bandwidth `bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: Nanos, clock: Frequency, bytes_per_cycle: u64) -> InterSocketLink {
        assert!(bytes_per_cycle > 0, "bandwidth must be non-zero");
        InterSocketLink {
            latency: clock.cycles_for(latency),
            bytes_per_cycle,
            ports: [Resource::pipelined(), Resource::pipelined()],
            bytes: [0; 2],
            outages: Vec::new(),
            retry_base: 64,
            max_retries: 6,
            retries: 0,
            failed_sends: 0,
        }
    }

    /// The paper's default: 50 ns at 3 GHz, 16 B/cycle.
    pub fn default_qpi() -> InterSocketLink {
        Self::new(Nanos(50), Frequency::ghz(3.0), 16)
    }

    /// One-way propagation latency in cycles.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// The conservative-lookahead horizon this link induces for a
    /// domain-sharded parallel simulation (`dve_sim::pdes`): no
    /// cross-socket effect can become visible in less than the one-way
    /// propagation latency, so per-socket domains may safely advance
    /// this many cycles between synchronization barriers.
    pub fn lookahead(&self) -> Cycles {
        self.latency
    }

    fn dir(from: usize, to: usize) -> usize {
        assert!(
            from < 2 && to < 2 && from != to,
            "link endpoints are sockets 0 and 1"
        );
        from // direction index equals the source socket
    }

    fn service(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes_per_cycle) + self.latency.raw()
    }

    /// Sends `bytes` from socket `from` to socket `to` at time `now`;
    /// returns the arrival time (after serialization and propagation)
    /// and records the message on the directional port.
    pub fn transfer(&mut self, from: usize, to: usize, now: Cycles, bytes: u64) -> Cycles {
        let d = Self::dir(from, to);
        let service = self.service(bytes);
        let grant = self.ports[d].acquire(now.raw(), service);
        self.bytes[d] += bytes;
        debug_assert_eq!(grant.queued, 0, "pipelined link must never queue");
        Cycles(grant.complete_at)
    }

    /// Arrival time a message *would* observe, without sending it or
    /// recording traffic (for speculative-access latency estimates).
    pub fn probe(&self, from: usize, to: usize, now: Cycles, bytes: u64) -> Cycles {
        let d = Self::dir(from, to);
        Cycles(
            self.ports[d]
                .probe(now.raw(), self.service(bytes))
                .complete_at,
        )
    }

    /// Installs outage windows (sorted, non-overlapping, half-open
    /// `[start, end)` in cycles) and the bounded exponential-backoff
    /// retry policy used by [`transfer_resilient`].
    ///
    /// Retry `k` (k = 1..=`max_retries`) is attempted at
    /// `now + retry_base * (2^k - 1)`; the first attempt time that
    /// falls outside every window wins. If all attempts land inside
    /// windows the send fails and the caller must serve from the local
    /// copy only.
    ///
    /// [`transfer_resilient`]: InterSocketLink::transfer_resilient
    ///
    /// # Panics
    ///
    /// Panics if the windows are empty-width, unsorted or overlapping,
    /// or if `retry_base` is zero.
    pub fn set_outages(&mut self, windows: Vec<(u64, u64)>, retry_base: u64, max_retries: u32) {
        assert!(retry_base > 0, "retry backoff base must be non-zero");
        let mut prev_end = 0u64;
        for &(s, e) in &windows {
            assert!(s < e, "outage window [{s}, {e}) is empty or inverted");
            assert!(
                s >= prev_end,
                "outage windows must be sorted and non-overlapping"
            );
            prev_end = e;
        }
        self.outages = windows;
        self.retry_base = retry_base;
        self.max_retries = max_retries;
    }

    /// If `now` falls inside an outage window, returns that window's
    /// end (the first cycle service resumes).
    pub fn outage_until(&self, now: Cycles) -> Option<Cycles> {
        let t = now.raw();
        self.outages
            .iter()
            .find(|&&(s, e)| t >= s && t < e)
            .map(|&(_, e)| Cycles(e))
    }

    /// The end of the last configured outage window, if any.
    pub fn last_outage_end(&self) -> Option<Cycles> {
        self.outages.last().map(|&(_, e)| Cycles(e))
    }

    fn in_outage(&self, t: u64) -> bool {
        self.outages.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// The backoff schedule: attempt `k`'s start time, or `None` once
    /// the retry budget is exhausted. The first attempt (`k == 0`) is
    /// at `now` itself.
    fn attempt_time(&self, now: u64, k: u32) -> Option<u64> {
        if k > self.max_retries {
            return None;
        }
        // base * (2^k - 1): 0, base, 3*base, 7*base, ...
        let factor = (1u64 << k.min(63)) - 1;
        Some(now + self.retry_base.saturating_mul(factor))
    }

    /// First attempt start time outside every outage window, with the
    /// retry count it took; `None` when the budget is exhausted.
    fn resilient_start(&self, now: u64) -> Option<(u64, u32)> {
        for k in 0..=self.max_retries {
            let t = self.attempt_time(now, k)?;
            if !self.in_outage(t) {
                return Some((t, k));
            }
        }
        None
    }

    /// Sends `bytes` from `from` to `to` at `now` under the configured
    /// outage windows: the message is retried with bounded exponential
    /// backoff until an attempt falls outside every window, then pays
    /// the normal serialization + propagation cost from that attempt
    /// time. With no outage windows configured this is exactly
    /// [`transfer`] (same arrival, same port accounting).
    ///
    /// [`transfer`]: InterSocketLink::transfer
    pub fn transfer_resilient(
        &mut self,
        from: usize,
        to: usize,
        now: Cycles,
        bytes: u64,
    ) -> LinkSendOutcome {
        match self.resilient_start(now.raw()) {
            Some((start, retries)) => {
                self.retries += u64::from(retries);
                let arrival = self.transfer(from, to, Cycles(start), bytes);
                LinkSendOutcome::Delivered { arrival, retries }
            }
            None => {
                self.failed_sends += 1;
                LinkSendOutcome::Failed {
                    retries: self.max_retries,
                }
            }
        }
    }

    /// The arrival a resilient send *would* observe, without sending
    /// or recording anything (mirror of [`probe`] for the outage path).
    ///
    /// [`probe`]: InterSocketLink::probe
    pub fn probe_resilient(
        &self,
        from: usize,
        to: usize,
        now: Cycles,
        bytes: u64,
    ) -> LinkSendOutcome {
        match self.resilient_start(now.raw()) {
            Some((start, retries)) => LinkSendOutcome::Delivered {
                arrival: self.probe(from, to, Cycles(start), bytes),
                retries,
            },
            None => LinkSendOutcome::Failed {
                retries: self.max_retries,
            },
        }
    }

    /// Total retries across all resilient sends.
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// Resilient sends that exhausted the retry budget.
    pub fn failed_sends(&self) -> u64 {
        self.failed_sends
    }

    /// Port statistics for one direction (`dir` = source socket).
    pub fn port_stats(&self, dir: usize) -> ResourceStats {
        self.ports[dir].stats()
    }

    /// Total messages sent in both directions.
    pub fn total_messages(&self) -> u64 {
        self.ports[0].stats().grants + self.ports[1].stats().grants
    }

    /// Total bytes sent in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes[0] + self.bytes[1]
    }

    /// Resets the traffic counters (not the occupancy or the outage
    /// configuration).
    pub fn reset_counters(&mut self) {
        self.ports[0].reset_stats();
        self.ports[1].reset_stats();
        self.bytes = [0; 2];
        self.retries = 0;
        self.failed_sends = 0;
    }
}

/// A full mesh of point-to-point links over an N-node
/// [`Topology`](crate::topology::Topology): the per-edge
/// generalization of [`InterSocketLink`].
///
/// Every ordered pair of distinct nodes gets its own pipelined
/// [`Resource`] port, byte counter, and outage-window list, so edges
/// fail and congest independently. On a two-node topology with the
/// paper's link parameters this is cycle-identical to
/// [`InterSocketLink`]: the same service formula
/// (`bytes/bytes_per_cycle + latency`) against the same pipelined port
/// arithmetic, one port per direction.
///
/// Outage windows come in two layers: *global* windows (the original
/// [`ChaosConfig`]-style whole-fabric outage, consulted by the
/// system's degraded-mode logic) apply to every edge, and *per-edge*
/// windows apply to one direction of one link only. A send retries
/// with the same bounded exponential backoff as the two-socket link.
///
/// [`ChaosConfig`]-style: InterSocketLink::set_outages
///
/// # Example
///
/// ```
/// use dve_noc::link::{InterSocketLink, LinkTable};
/// use dve_noc::topology::{EdgeParams, Topology};
/// use dve_sim::time::{Cycles, Frequency};
///
/// let t = Topology::symmetric(2, EdgeParams::qpi());
/// let mut table = LinkTable::new(&t, Frequency::ghz(3.0));
/// let mut pair = InterSocketLink::default_qpi();
/// assert_eq!(
///     table.transfer(0, 1, Cycles(0), 64),
///     pair.transfer(0, 1, Cycles(0), 64),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTable {
    nodes: usize,
    /// Edge index for ordered pair `(from, to)`, `from != to`:
    /// `from * (nodes - 1) + (to - (to > from))`.
    latency: Vec<Cycles>,
    bytes_per_cycle: Vec<u64>,
    ports: Vec<Resource>,
    bytes: Vec<u64>,
    /// Whole-fabric outage windows (sorted, non-overlapping).
    global_outages: Vec<(u64, u64)>,
    /// Additional per-edge outage windows.
    edge_outages: Vec<Vec<(u64, u64)>>,
    retry_base: u64,
    max_retries: u32,
    retries: u64,
    failed_sends: u64,
}

impl LinkTable {
    /// Builds the table from a topology's per-edge parameters,
    /// converting latencies at `clock`.
    pub fn new(topology: &crate::topology::Topology, clock: Frequency) -> LinkTable {
        let nodes = topology.nodes();
        let edges = nodes * (nodes - 1);
        let mut latency = Vec::with_capacity(edges);
        let mut bpc = Vec::with_capacity(edges);
        for (from, to) in topology.edges() {
            let e = topology.edge(from, to);
            assert!(e.bytes_per_cycle > 0, "bandwidth must be non-zero");
            latency.push(clock.cycles_for(e.latency));
            bpc.push(e.bytes_per_cycle);
        }
        LinkTable {
            nodes,
            latency,
            bytes_per_cycle: bpc,
            ports: vec![Resource::pipelined(); edges],
            bytes: vec![0; edges],
            global_outages: Vec::new(),
            edge_outages: vec![Vec::new(); edges],
            retry_base: 64,
            max_retries: 6,
            retries: 0,
            failed_sends: 0,
        }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn idx(&self, from: usize, to: usize) -> usize {
        assert!(
            from < self.nodes && to < self.nodes && from != to,
            "edge endpoints must be distinct nodes in range"
        );
        from * (self.nodes - 1) + to - usize::from(to > from)
    }

    /// One-way propagation latency of the edge `from → to`.
    pub fn latency(&self, from: usize, to: usize) -> Cycles {
        self.latency[self.idx(from, to)]
    }

    /// The conservative PDES lookahead: minimum edge latency.
    pub fn lookahead(&self) -> Cycles {
        *self.latency.iter().min().expect("table has edges")
    }

    fn service(&self, edge: usize, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes_per_cycle[edge]) + self.latency[edge].raw()
    }

    /// Sends `bytes` over the edge `from → to` at `now`; returns the
    /// arrival time and records the message on the edge's port.
    pub fn transfer(&mut self, from: usize, to: usize, now: Cycles, bytes: u64) -> Cycles {
        let e = self.idx(from, to);
        let service = self.service(e, bytes);
        let grant = self.ports[e].acquire(now.raw(), service);
        self.bytes[e] += bytes;
        debug_assert_eq!(grant.queued, 0, "pipelined link must never queue");
        Cycles(grant.complete_at)
    }

    /// Arrival a send *would* observe, without sending.
    pub fn probe(&self, from: usize, to: usize, now: Cycles, bytes: u64) -> Cycles {
        let e = self.idx(from, to);
        Cycles(
            self.ports[e]
                .probe(now.raw(), self.service(e, bytes))
                .complete_at,
        )
    }

    fn check_windows(windows: &[(u64, u64)]) {
        let mut prev_end = 0u64;
        for &(s, e) in windows {
            assert!(s < e, "outage window [{s}, {e}) is empty or inverted");
            assert!(
                s >= prev_end,
                "outage windows must be sorted and non-overlapping"
            );
            prev_end = e;
        }
    }

    /// Installs whole-fabric outage windows and the retry policy (the
    /// [`InterSocketLink::set_outages`] equivalent; applies to every
    /// edge).
    ///
    /// # Panics
    ///
    /// Panics on malformed windows or a zero `retry_base`.
    pub fn set_outages(&mut self, windows: Vec<(u64, u64)>, retry_base: u64, max_retries: u32) {
        assert!(retry_base > 0, "retry backoff base must be non-zero");
        Self::check_windows(&windows);
        self.global_outages = windows;
        self.retry_base = retry_base;
        self.max_retries = max_retries;
    }

    /// Installs outage windows on one ordered edge only — other edges
    /// keep delivering (the per-edge failure-independence the N-node
    /// recovery paths rely on).
    ///
    /// # Panics
    ///
    /// Panics on malformed windows or out-of-range endpoints.
    pub fn set_edge_outages(&mut self, from: usize, to: usize, windows: Vec<(u64, u64)>) {
        Self::check_windows(&windows);
        let e = self.idx(from, to);
        self.edge_outages[e] = windows;
    }

    /// If `now` falls inside a whole-fabric outage window, returns that
    /// window's end.
    pub fn outage_until(&self, now: Cycles) -> Option<Cycles> {
        let t = now.raw();
        self.global_outages
            .iter()
            .find(|&&(s, e)| t >= s && t < e)
            .map(|&(_, e)| Cycles(e))
    }

    /// The end of the last whole-fabric outage window, if any.
    pub fn last_outage_end(&self) -> Option<Cycles> {
        self.global_outages.last().map(|&(_, e)| Cycles(e))
    }

    fn in_outage(&self, edge: usize, t: u64) -> bool {
        let hit = |w: &[(u64, u64)]| w.iter().any(|&(s, e)| t >= s && t < e);
        hit(&self.global_outages) || hit(&self.edge_outages[edge])
    }

    fn attempt_time(&self, now: u64, k: u32) -> Option<u64> {
        if k > self.max_retries {
            return None;
        }
        let factor = (1u64 << k.min(63)) - 1;
        Some(now + self.retry_base.saturating_mul(factor))
    }

    fn resilient_start(&self, edge: usize, now: u64) -> Option<(u64, u32)> {
        for k in 0..=self.max_retries {
            let t = self.attempt_time(now, k)?;
            if !self.in_outage(edge, t) {
                return Some((t, k));
            }
        }
        None
    }

    /// Sends under the configured outage windows with bounded
    /// exponential backoff; the [`InterSocketLink::transfer_resilient`]
    /// equivalent, per edge.
    pub fn transfer_resilient(
        &mut self,
        from: usize,
        to: usize,
        now: Cycles,
        bytes: u64,
    ) -> LinkSendOutcome {
        let e = self.idx(from, to);
        match self.resilient_start(e, now.raw()) {
            Some((start, retries)) => {
                self.retries += u64::from(retries);
                let arrival = self.transfer(from, to, Cycles(start), bytes);
                LinkSendOutcome::Delivered { arrival, retries }
            }
            None => {
                self.failed_sends += 1;
                LinkSendOutcome::Failed {
                    retries: self.max_retries,
                }
            }
        }
    }

    /// The arrival a resilient send *would* observe, without sending.
    pub fn probe_resilient(
        &self,
        from: usize,
        to: usize,
        now: Cycles,
        bytes: u64,
    ) -> LinkSendOutcome {
        let e = self.idx(from, to);
        match self.resilient_start(e, now.raw()) {
            Some((start, retries)) => LinkSendOutcome::Delivered {
                arrival: self.probe(from, to, Cycles(start), bytes),
                retries,
            },
            None => LinkSendOutcome::Failed {
                retries: self.max_retries,
            },
        }
    }

    /// Total retries across all resilient sends.
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// Resilient sends that exhausted the retry budget.
    pub fn failed_sends(&self) -> u64 {
        self.failed_sends
    }

    /// Port statistics for the ordered edge `from → to`.
    pub fn edge_stats(&self, from: usize, to: usize) -> ResourceStats {
        self.ports[self.idx(from, to)].stats()
    }

    /// Bytes sent over the ordered edge `from → to`.
    pub fn edge_bytes(&self, from: usize, to: usize) -> u64 {
        self.bytes[self.idx(from, to)]
    }

    /// Total messages across all edges.
    pub fn total_messages(&self) -> u64 {
        self.ports.iter().map(|p| p.stats().grants).sum()
    }

    /// Total bytes across all edges.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Resets traffic counters (not occupancy or outage config).
    pub fn reset_counters(&mut self) {
        for p in &mut self.ports {
            p.reset_stats();
        }
        self.bytes.iter_mut().for_each(|b| *b = 0);
        self.retries = 0;
        self.failed_sends = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{EdgeParams, Topology};

    fn link() -> InterSocketLink {
        InterSocketLink::new(Nanos(50), Frequency::ghz(3.0), 16)
    }

    fn table(nodes: usize) -> LinkTable {
        LinkTable::new(
            &Topology::symmetric(nodes, EdgeParams::qpi()),
            Frequency::ghz(3.0),
        )
    }

    #[test]
    fn uncontended_latency() {
        let mut l = link();
        // 64-byte line: 4 cycles serialization + 150 cycles propagation.
        assert_eq!(l.transfer(0, 1, Cycles(0), 64), Cycles(154));
        // Small control message: 1 cycle + 150.
        assert_eq!(l.transfer(1, 0, Cycles(0), 8), Cycles(151));
    }

    #[test]
    fn pipelined_same_direction_messages_do_not_queue() {
        let mut l = link();
        let a = l.transfer(0, 1, Cycles(0), 64);
        let b = l.transfer(0, 1, Cycles(0), 64);
        assert_eq!(a, b, "pipelined link: identical send times arrive together");
        assert_eq!(l.port_stats(0).queue_cycles, 0);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let a = l.transfer(0, 1, Cycles(0), 64);
        let b = l.transfer(1, 0, Cycles(0), 64);
        assert_eq!(a, b, "full duplex: no cross-direction interference");
        assert_eq!(l.port_stats(0).grants, 1);
        assert_eq!(l.port_stats(1).grants, 1);
    }

    #[test]
    fn traffic_is_counted() {
        let mut l = link();
        l.transfer(0, 1, Cycles(0), 64);
        l.transfer(1, 0, Cycles(0), 8);
        assert_eq!(l.total_messages(), 2);
        assert_eq!(l.total_bytes(), 72);
        l.reset_counters();
        assert_eq!(l.total_messages(), 0);
    }

    #[test]
    fn probe_matches_transfer_without_side_effects() {
        let mut l = link();
        let predicted = l.probe(0, 1, Cycles(0), 64);
        let actual = l.transfer(0, 1, Cycles(0), 64);
        assert_eq!(predicted, actual);
        assert_eq!(l.total_messages(), 1, "probe did not count");
    }

    #[test]
    fn port_occupancy_is_tracked() {
        let mut l = link();
        l.transfer(0, 1, Cycles(0), 64); // 4 + 150 cycles of wire time
        let s = l.port_stats(0);
        assert_eq!(s.busy_cycles, 154);
        assert_eq!(s.grants, 1);
    }

    #[test]
    fn latency_sweep_matches_fig10_points() {
        for (ns, cycles) in [(30u64, 90u64), (50, 150), (60, 180)] {
            let l = InterSocketLink::new(Nanos(ns), Frequency::ghz(3.0), 16);
            assert_eq!(l.latency().raw(), cycles);
        }
    }

    #[test]
    #[should_panic(expected = "sockets 0 and 1")]
    fn self_transfer_rejected() {
        link().transfer(0, 0, Cycles(0), 64);
    }

    #[test]
    fn resilient_without_outages_matches_transfer() {
        let mut a = link();
        let mut b = link();
        let plain = a.transfer(0, 1, Cycles(10), 64);
        match b.transfer_resilient(0, 1, Cycles(10), 64) {
            LinkSendOutcome::Delivered { arrival, retries } => {
                assert_eq!(arrival, plain);
                assert_eq!(retries, 0);
            }
            LinkSendOutcome::Failed { .. } => panic!("no outage, must deliver"),
        }
        assert_eq!(a.port_stats(0).grants, b.port_stats(0).grants);
    }

    #[test]
    fn outage_forces_exponential_backoff() {
        let mut l = link();
        // Window [0, 250): attempts at 0, 100, 300 — third attempt
        // (retry 2, at 100*(2^2-1) = 300) clears the window.
        l.set_outages(vec![(0, 250)], 100, 6);
        match l.transfer_resilient(0, 1, Cycles(0), 64) {
            LinkSendOutcome::Delivered { arrival, retries } => {
                assert_eq!(retries, 2);
                // start 300 + 4 serialization + 150 propagation.
                assert_eq!(arrival, Cycles(300 + 4 + 150));
            }
            LinkSendOutcome::Failed { .. } => panic!("retry budget was sufficient"),
        }
        assert_eq!(l.retry_count(), 2);
        assert_eq!(l.failed_sends(), 0);
    }

    #[test]
    fn outage_exhausts_bounded_retry_budget() {
        let mut l = link();
        // Budget of 2 retries: attempts at 0, 10, 30 — all inside.
        l.set_outages(vec![(0, 1_000)], 10, 2);
        assert_eq!(
            l.transfer_resilient(0, 1, Cycles(0), 64),
            LinkSendOutcome::Failed { retries: 2 }
        );
        assert_eq!(l.failed_sends(), 1);
        assert_eq!(l.total_messages(), 0, "failed send never hits the wire");
    }

    #[test]
    fn probe_resilient_matches_transfer_resilient() {
        let mut l = link();
        l.set_outages(vec![(0, 250)], 100, 6);
        let predicted = l.probe_resilient(0, 1, Cycles(0), 64);
        let actual = l.transfer_resilient(0, 1, Cycles(0), 64);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn outage_until_reports_window_end() {
        let mut l = link();
        l.set_outages(vec![(100, 200), (500, 600)], 32, 4);
        assert_eq!(l.outage_until(Cycles(50)), None);
        assert_eq!(l.outage_until(Cycles(150)), Some(Cycles(200)));
        assert_eq!(l.outage_until(Cycles(200)), None, "half-open window");
        assert_eq!(l.outage_until(Cycles(599)), Some(Cycles(600)));
        assert_eq!(l.last_outage_end(), Some(Cycles(600)));
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn overlapping_outages_rejected() {
        link().set_outages(vec![(0, 100), (50, 200)], 32, 4);
    }

    #[test]
    fn table_on_two_nodes_is_cycle_identical_to_the_pair_link() {
        let mut pair = link();
        let mut tab = table(2);
        // A mixed traffic pattern in both directions, including
        // same-cycle pipelined sends.
        let msgs = [
            (0usize, 1usize, 0u64, 64u64),
            (0, 1, 0, 64),
            (1, 0, 10, 8),
            (0, 1, 200, 192),
            (1, 0, 200, 64),
        ];
        for &(f, t, at, bytes) in &msgs {
            assert_eq!(
                pair.transfer(f, t, Cycles(at), bytes),
                tab.transfer(f, t, Cycles(at), bytes),
                "send {f}->{t} at {at}"
            );
        }
        assert_eq!(pair.total_messages(), tab.total_messages());
        assert_eq!(pair.total_bytes(), tab.total_bytes());
        assert_eq!(
            pair.port_stats(0).busy_cycles,
            tab.edge_stats(0, 1).busy_cycles
        );
        // Resilient sends under the same global outage windows agree too.
        pair.set_outages(vec![(0, 250)], 100, 6);
        tab.set_outages(vec![(0, 250)], 100, 6);
        assert_eq!(
            pair.transfer_resilient(0, 1, Cycles(0), 64),
            tab.transfer_resilient(0, 1, Cycles(0), 64),
        );
        assert_eq!(pair.retry_count(), tab.retry_count());
    }

    #[test]
    fn table_edges_are_independent() {
        let mut t = table(4);
        let a = t.transfer(0, 1, Cycles(0), 64);
        let b = t.transfer(2, 3, Cycles(0), 64);
        assert_eq!(a, b, "disjoint edges do not interfere");
        assert_eq!(t.edge_stats(0, 1).grants, 1);
        assert_eq!(t.edge_stats(2, 3).grants, 1);
        assert_eq!(t.edge_stats(1, 0).grants, 0, "directions are distinct");
        assert_eq!(t.edge_bytes(0, 1), 64);
        assert_eq!(t.edge_bytes(3, 2), 0);
    }

    #[test]
    fn per_edge_outage_only_stalls_that_edge() {
        let mut t = table(3);
        t.set_outages(Vec::new(), 100, 6);
        t.set_edge_outages(0, 1, vec![(0, 250)]);
        // The edge under outage retries...
        match t.transfer_resilient(0, 1, Cycles(0), 64) {
            LinkSendOutcome::Delivered { retries, .. } => assert_eq!(retries, 2),
            LinkSendOutcome::Failed { .. } => panic!("budget was sufficient"),
        }
        // ...while the reverse direction and other edges deliver
        // immediately.
        for (f, to) in [(1usize, 0usize), (0, 2), (2, 1)] {
            match t.transfer_resilient(f, to, Cycles(0), 64) {
                LinkSendOutcome::Delivered { retries, arrival } => {
                    assert_eq!(retries, 0, "{f}->{to}");
                    assert_eq!(arrival, Cycles(154));
                }
                LinkSendOutcome::Failed { .. } => panic!("no outage on {f}->{to}"),
            }
        }
    }

    #[test]
    fn global_outage_stalls_every_edge() {
        let mut t = table(3);
        t.set_outages(vec![(0, 1_000)], 10, 2);
        for (f, to) in [(0usize, 1usize), (1, 2), (2, 0)] {
            assert_eq!(
                t.transfer_resilient(f, to, Cycles(0), 64),
                LinkSendOutcome::Failed { retries: 2 },
                "{f}->{to}"
            );
        }
        assert_eq!(t.failed_sends(), 3);
        assert_eq!(t.outage_until(Cycles(500)), Some(Cycles(1_000)));
        assert_eq!(t.last_outage_end(), Some(Cycles(1_000)));
    }

    #[test]
    fn heterogeneous_edges_charge_their_own_parameters() {
        let topo = Topology::two_tier(EdgeParams::qpi(), EdgeParams::far_tier());
        let mut t = LinkTable::new(&topo, Frequency::ghz(3.0));
        // Socket-socket: 150 + 64/16 = 154. Socket-far: 270 + 64/8 = 278.
        assert_eq!(t.transfer(0, 1, Cycles(0), 64), Cycles(154));
        assert_eq!(t.transfer(0, 2, Cycles(0), 64), Cycles(278));
        assert_eq!(t.latency(0, 2), Cycles(270));
        assert_eq!(t.lookahead(), Cycles(150), "lookahead is the fastest edge");
    }

    #[test]
    fn table_probe_matches_transfer() {
        let mut t = table(3);
        let predicted = t.probe(1, 2, Cycles(7), 100);
        assert_eq!(t.transfer(1, 2, Cycles(7), 100), predicted);
        assert_eq!(t.total_messages(), 1, "probe did not count");
        t.reset_counters();
        assert_eq!(t.total_messages(), 0);
        assert_eq!(t.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn table_self_edge_rejected() {
        table(3).transfer(1, 1, Cycles(0), 64);
    }
}
