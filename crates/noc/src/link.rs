//! The inter-socket point-to-point link (QPI/UPI-like).
//!
//! §VI: "We use an inter-socket latency of 50ns per hop", with a
//! sensitivity sweep from 30 ns (Fig. 10, NUMA-optimized) to 60 ns
//! (CCIX/OpenCAPI/Gen-Z-class long-range links). The link also models
//! serialization bandwidth so heavy coherence traffic is charged for
//! wire time.
//!
//! Occupancy and traffic accounting sit on a pair of
//! [`dve_sim::resource::Resource`] ports — one per direction — instead
//! of the hand-rolled counters this module used to keep. The ports are
//! *pipelined*: at the traffic levels any of the paper's workloads
//! generate (worst case ≈ 1.5 GB/s against a 48 GB/s-per-direction
//! QPI-class link, <3% utilization) a queueing model would add nothing
//! but noise, so messages never queue; the ports still record grants,
//! occupancy and (trivially zero) queue cycles uniformly with every
//! other timed substrate.

use dve_sim::resource::{Resource, ResourceStats};
use dve_sim::time::{Cycles, Frequency, Nanos};

/// A full-duplex point-to-point link between two sockets.
///
/// Each message pays the propagation latency plus a serialization delay
/// of `bytes / bytes_per_cycle` cycles, charged through a pipelined
/// [`Resource`] port per direction.
///
/// # Example
///
/// ```
/// use dve_noc::link::InterSocketLink;
/// use dve_sim::time::{Cycles, Frequency, Nanos};
///
/// let mut link = InterSocketLink::new(Nanos(50), Frequency::ghz(3.0), 16);
/// let done = link.transfer(0, 1, Cycles(0), 64);
/// assert_eq!(done.raw(), 150 + 4); // 50 ns propagation + 64B/16Bpc
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InterSocketLink {
    latency: Cycles,
    bytes_per_cycle: u64,
    /// Directional occupancy ports; index = source socket.
    ports: [Resource; 2],
    bytes: [u64; 2],
}

impl InterSocketLink {
    /// Creates a link with propagation latency `latency` (converted at
    /// `clock`) and serialization bandwidth `bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: Nanos, clock: Frequency, bytes_per_cycle: u64) -> InterSocketLink {
        assert!(bytes_per_cycle > 0, "bandwidth must be non-zero");
        InterSocketLink {
            latency: clock.cycles_for(latency),
            bytes_per_cycle,
            ports: [Resource::pipelined(), Resource::pipelined()],
            bytes: [0; 2],
        }
    }

    /// The paper's default: 50 ns at 3 GHz, 16 B/cycle.
    pub fn default_qpi() -> InterSocketLink {
        Self::new(Nanos(50), Frequency::ghz(3.0), 16)
    }

    /// One-way propagation latency in cycles.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    fn dir(from: usize, to: usize) -> usize {
        assert!(
            from < 2 && to < 2 && from != to,
            "link endpoints are sockets 0 and 1"
        );
        from // direction index equals the source socket
    }

    fn service(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes_per_cycle) + self.latency.raw()
    }

    /// Sends `bytes` from socket `from` to socket `to` at time `now`;
    /// returns the arrival time (after serialization and propagation)
    /// and records the message on the directional port.
    pub fn transfer(&mut self, from: usize, to: usize, now: Cycles, bytes: u64) -> Cycles {
        let d = Self::dir(from, to);
        let service = self.service(bytes);
        let grant = self.ports[d].acquire(now.raw(), service);
        self.bytes[d] += bytes;
        debug_assert_eq!(grant.queued, 0, "pipelined link must never queue");
        Cycles(grant.complete_at)
    }

    /// Arrival time a message *would* observe, without sending it or
    /// recording traffic (for speculative-access latency estimates).
    pub fn probe(&self, from: usize, to: usize, now: Cycles, bytes: u64) -> Cycles {
        let d = Self::dir(from, to);
        Cycles(
            self.ports[d]
                .probe(now.raw(), self.service(bytes))
                .complete_at,
        )
    }

    /// Port statistics for one direction (`dir` = source socket).
    pub fn port_stats(&self, dir: usize) -> ResourceStats {
        self.ports[dir].stats()
    }

    /// Total messages sent in both directions.
    pub fn total_messages(&self) -> u64 {
        self.ports[0].stats().grants + self.ports[1].stats().grants
    }

    /// Total bytes sent in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes[0] + self.bytes[1]
    }

    /// Resets the traffic counters (not the occupancy).
    pub fn reset_counters(&mut self) {
        self.ports[0].reset_stats();
        self.ports[1].reset_stats();
        self.bytes = [0; 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> InterSocketLink {
        InterSocketLink::new(Nanos(50), Frequency::ghz(3.0), 16)
    }

    #[test]
    fn uncontended_latency() {
        let mut l = link();
        // 64-byte line: 4 cycles serialization + 150 cycles propagation.
        assert_eq!(l.transfer(0, 1, Cycles(0), 64), Cycles(154));
        // Small control message: 1 cycle + 150.
        assert_eq!(l.transfer(1, 0, Cycles(0), 8), Cycles(151));
    }

    #[test]
    fn pipelined_same_direction_messages_do_not_queue() {
        let mut l = link();
        let a = l.transfer(0, 1, Cycles(0), 64);
        let b = l.transfer(0, 1, Cycles(0), 64);
        assert_eq!(a, b, "pipelined link: identical send times arrive together");
        assert_eq!(l.port_stats(0).queue_cycles, 0);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let a = l.transfer(0, 1, Cycles(0), 64);
        let b = l.transfer(1, 0, Cycles(0), 64);
        assert_eq!(a, b, "full duplex: no cross-direction interference");
        assert_eq!(l.port_stats(0).grants, 1);
        assert_eq!(l.port_stats(1).grants, 1);
    }

    #[test]
    fn traffic_is_counted() {
        let mut l = link();
        l.transfer(0, 1, Cycles(0), 64);
        l.transfer(1, 0, Cycles(0), 8);
        assert_eq!(l.total_messages(), 2);
        assert_eq!(l.total_bytes(), 72);
        l.reset_counters();
        assert_eq!(l.total_messages(), 0);
    }

    #[test]
    fn probe_matches_transfer_without_side_effects() {
        let mut l = link();
        let predicted = l.probe(0, 1, Cycles(0), 64);
        let actual = l.transfer(0, 1, Cycles(0), 64);
        assert_eq!(predicted, actual);
        assert_eq!(l.total_messages(), 1, "probe did not count");
    }

    #[test]
    fn port_occupancy_is_tracked() {
        let mut l = link();
        l.transfer(0, 1, Cycles(0), 64); // 4 + 150 cycles of wire time
        let s = l.port_stats(0);
        assert_eq!(s.busy_cycles, 154);
        assert_eq!(s.grants, 1);
    }

    #[test]
    fn latency_sweep_matches_fig10_points() {
        for (ns, cycles) in [(30u64, 90u64), (50, 150), (60, 180)] {
            let l = InterSocketLink::new(Nanos(ns), Frequency::ghz(3.0), 16);
            assert_eq!(l.latency().raw(), cycles);
        }
    }

    #[test]
    #[should_panic(expected = "sockets 0 and 1")]
    fn self_transfer_rejected() {
        link().transfer(0, 0, Cycles(0), 64);
    }
}
