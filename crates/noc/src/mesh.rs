//! Intra-socket mesh with table-based static shortest-path routing.
//!
//! Table II: "2×4 Mesh, SSSP routing, 1 cycle per hop". The routing
//! table is computed once by breadth-first search from every node (the
//! "table-based static routing ... with a shortest path route with
//! minimum number of link traversals" of §VI), then lookups are O(1).

/// A `width × height` 2D mesh of routers, nodes numbered row-major.
///
/// # Example
///
/// ```
/// use dve_noc::mesh::Mesh;
///
/// let m = Mesh::new(4, 2);
/// assert_eq!(m.nodes(), 8);
/// assert_eq!(m.hops(0, 3), 3);
/// let path = m.path(0, 5);
/// assert_eq!(*path.first().unwrap(), 0);
/// assert_eq!(*path.last().unwrap(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    hop_cycles: u64,
    /// dist[src][dst] in hops.
    dist: Vec<Vec<u32>>,
    /// next[src][dst]: neighbor of src on a shortest path to dst.
    next: Vec<Vec<u32>>,
}

impl Mesh {
    /// Builds a mesh and its static routing tables (1 cycle per hop).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Mesh {
        Self::with_hop_latency(width, height, 1)
    }

    /// Builds a mesh with a custom per-hop latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `hop_cycles` is zero.
    pub fn with_hop_latency(width: usize, height: usize, hop_cycles: u64) -> Mesh {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(hop_cycles > 0, "hop latency must be non-zero");
        let n = width * height;
        let mut dist = vec![vec![u32::MAX; n]; n];
        let mut next = vec![vec![u32::MAX; n]; n];
        let neighbors = |v: usize| -> Vec<usize> {
            let (x, y) = (v % width, v / width);
            let mut out = Vec::with_capacity(4);
            if x > 0 {
                out.push(v - 1);
            }
            if x + 1 < width {
                out.push(v + 1);
            }
            if y > 0 {
                out.push(v - width);
            }
            if y + 1 < height {
                out.push(v + width);
            }
            out
        };
        // BFS from every source; first-discovered parent gives a
        // deterministic shortest-path routing table.
        for src in 0..n {
            let mut queue = std::collections::VecDeque::new();
            dist[src][src] = 0;
            next[src][src] = src as u32;
            queue.push_back(src);
            let mut first_hop = vec![u32::MAX; n];
            first_hop[src] = src as u32;
            while let Some(v) = queue.pop_front() {
                for w in neighbors(v) {
                    if dist[src][w] == u32::MAX {
                        dist[src][w] = dist[src][v] + 1;
                        first_hop[w] = if v == src { w as u32 } else { first_hop[v] };
                        queue.push_back(w);
                    }
                }
            }
            next[src] = first_hop;
        }
        Mesh {
            width,
            height,
            hop_cycles,
            dist,
            next,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Hop count of the shortest route from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        self.dist[src][dst]
    }

    /// Route latency in cycles (`hops × hop_cycles`).
    pub fn latency_cycles(&self, src: usize, dst: usize) -> u64 {
        self.hops(src, dst) as u64 * self.hop_cycles
    }

    /// The full routed path from `src` to `dst`, inclusive of both ends,
    /// following the static routing table.
    pub fn path(&self, src: usize, dst: usize) -> Vec<usize> {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next[cur][dst] as usize;
            path.push(cur);
            debug_assert!(path.len() <= self.nodes(), "routing loop");
        }
        path
    }

    /// Average hop count over all ordered node pairs — a quick sanity
    /// metric for placement studies.
    pub fn mean_hops(&self) -> f64 {
        let n = self.nodes();
        let mut total = 0u64;
        for s in 0..n {
            for d in 0..n {
                total += self.dist[s][d] as u64;
            }
        }
        total as f64 / (n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_match_manhattan_distance() {
        let m = Mesh::new(4, 2);
        for s in 0..8 {
            for d in 0..8 {
                let (sx, sy) = (s % 4, s / 4);
                let (dx, dy) = (d % 4, d / 4);
                let manhattan =
                    (sx as i32 - dx as i32).unsigned_abs() + (sy as i32 - dy as i32).unsigned_abs();
                assert_eq!(m.hops(s, d), manhattan, "{s}->{d}");
            }
        }
    }

    #[test]
    fn path_is_shortest_and_contiguous() {
        let m = Mesh::new(4, 2);
        for s in 0..8 {
            for d in 0..8 {
                let p = m.path(s, d);
                assert_eq!(p.len() as u32, m.hops(s, d) + 1);
                for w in p.windows(2) {
                    assert_eq!(m.hops(w[0], w[1]), 1, "non-adjacent step");
                }
            }
        }
    }

    #[test]
    fn latency_scales_with_hop_cost() {
        let m = Mesh::with_hop_latency(4, 2, 3);
        assert_eq!(m.latency_cycles(0, 7), 4 * 3);
    }

    #[test]
    fn single_node_mesh() {
        let m = Mesh::new(1, 1);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.path(0, 0), vec![0]);
    }

    #[test]
    fn mean_hops_positive_for_real_mesh() {
        let m = Mesh::new(4, 2);
        assert!(m.mean_hops() > 1.0 && m.mean_hops() < 4.0);
    }

    #[test]
    fn deterministic_routing_tables() {
        let a = Mesh::new(4, 2);
        let b = Mesh::new(4, 2);
        for s in 0..8 {
            for d in 0..8 {
                assert_eq!(a.path(s, d), b.path(s, d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node() {
        Mesh::new(2, 2).hops(0, 9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        Mesh::new(0, 2);
    }
}
