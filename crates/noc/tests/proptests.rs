//! Property-based tests for the interconnect models.

use dve_noc::link::InterSocketLink;
use dve_noc::mesh::Mesh;
use dve_noc::traffic::{MessageClass, TrafficStats};
use dve_sim::time::{Cycles, Frequency, Nanos};
use proptest::prelude::*;

proptest! {
    // Mesh shortest paths satisfy the metric axioms and match the
    // analytic Manhattan distance on a grid.
    #[test]
    fn mesh_distances_are_a_metric(w in 1usize..6, h in 1usize..6) {
        let m = Mesh::new(w, h);
        let n = m.nodes();
        for a in 0..n {
            prop_assert_eq!(m.hops(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(m.hops(a, b), m.hops(b, a));
                let manhattan = ((a % w) as i64 - (b % w) as i64).unsigned_abs() as u32
                    + ((a / w) as i64 - (b / w) as i64).unsigned_abs() as u32;
                prop_assert_eq!(m.hops(a, b), manhattan);
                for c in 0..n {
                    prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
                }
            }
        }
    }

    // Routed paths have exactly hop+1 nodes and every step is adjacent.
    #[test]
    fn mesh_paths_are_valid(w in 1usize..6, h in 1usize..6, src in 0usize..36, dst in 0usize..36) {
        let m = Mesh::new(w, h);
        let (src, dst) = (src % m.nodes(), dst % m.nodes());
        let p = m.path(src, dst);
        prop_assert_eq!(p.len() as u32, m.hops(src, dst) + 1);
        for step in p.windows(2) {
            prop_assert_eq!(m.hops(step[0], step[1]), 1);
        }
    }

    // Link latency is linear in message size and respects the propagation
    // floor; traffic accounting is exact.
    #[test]
    fn link_latency_and_accounting(
        ns in 1u64..200,
        msgs in proptest::collection::vec((any::<bool>(), 1u64..512), 1..50),
    ) {
        let mut link = InterSocketLink::new(Nanos(ns), Frequency::ghz(3.0), 16);
        let floor = link.latency().raw();
        let mut total_bytes = 0;
        for (dir, bytes) in &msgs {
            let (from, to) = if *dir { (0, 1) } else { (1, 0) };
            let arrive = link.transfer(from, to, Cycles(1000), *bytes);
            prop_assert!(arrive.raw() >= 1000 + floor);
            prop_assert!(arrive.raw() <= 1000 + floor + bytes.div_ceil(16));
            total_bytes += bytes;
        }
        prop_assert_eq!(link.total_messages(), msgs.len() as u64);
        prop_assert_eq!(link.total_bytes(), total_bytes);
    }

    // Traffic stats: merge and saturating_sub are inverse-ish and totals
    // always equal the sum of class entries.
    #[test]
    fn traffic_algebra(counts in proptest::collection::vec(0u8..6, 0..100)) {
        let mut a = TrafficStats::new();
        for c in &counts {
            a.record(MessageClass::ALL[*c as usize]);
        }
        let mut doubled = a.clone();
        doubled.merge(&a);
        prop_assert_eq!(doubled.total_messages(), 2 * a.total_messages());
        let back = doubled.saturating_sub(&a);
        prop_assert_eq!(back.total_bytes(), a.total_bytes());
        let per_class: u64 = MessageClass::ALL.iter().map(|&c| a.messages(c)).sum();
        prop_assert_eq!(per_class, a.total_messages());
    }
}
