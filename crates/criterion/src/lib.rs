//! A self-contained, offline drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The build environment cannot fetch crates.io dependencies, so this
//! crate supplies `Criterion`, `black_box`, `criterion_group!` and
//! `criterion_main!` with compatible signatures. Measurement is
//! intentionally simple compared to the real crate, but robust enough
//! to track regressions: each `iter` call runs a warm-up pass and then
//! several independently timed batches, reporting the **median**
//! ns/iteration across batches (the median discards one-off scheduling
//! hiccups that would skew a single-batch mean).
//!
//! Beyond printing, every completed benchmark is recorded on the
//! [`Criterion`] instance as a [`Measurement`]; harnesses that want the
//! numbers programmatically (the `dve-bench` `perf` binary, which
//! writes `BENCH_*.json` files) drain them with
//! [`Criterion::take_measurements`].

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One finished benchmark: its (group-qualified) name and the median
/// nanoseconds per iteration over the timed batches.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark id; group benches are recorded as `"group/name"`.
    pub name: String,
    /// Median ns per iteration across the timed batches.
    pub median_ns_per_iter: f64,
}

/// Top-level benchmark driver handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
    /// Total timed-batch budget per benchmark; 0 means the default.
    measurement_nanos: u64,
    /// Suppress per-benchmark printing (for programmatic harnesses).
    quiet: bool,
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Sets the total time budget spent in timed batches per benchmark.
    /// Smaller budgets trade precision for speed (used by the CI
    /// perf-smoke run).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Criterion {
        self.measurement_nanos = (d.as_nanos() as u64).max(1);
        self
    }

    /// Disables per-benchmark stdout lines; results are still recorded
    /// and retrievable via [`Criterion::take_measurements`].
    pub fn quiet(&mut self, quiet: bool) -> &mut Criterion {
        self.quiet = quiet;
        self
    }

    /// Runs a standalone benchmark. Accepts anything string-like for the
    /// id, as the real crate does.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let m = run_one(
            name.as_ref(),
            self.effective_samples(),
            self.effective_nanos(),
            self.quiet,
            &mut f,
        );
        self.measurements.push(m);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if !self.quiet {
            println!("group: {name}");
        }
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
            sample_size: 0,
        }
    }

    /// Drains and returns every measurement recorded so far, in
    /// execution order.
    pub fn take_measurements(&mut self) -> Vec<Measurement> {
        std::mem::take(&mut self.measurements)
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            50
        } else {
            self.sample_size
        }
    }

    fn effective_nanos(&self) -> u64 {
        if self.measurement_nanos == 0 {
            10_000_000 // 10 ms of timed batches per benchmark
        } else {
            self.measurement_nanos
        }
    }
}

/// A group of related benchmarks (supports `sample_size` and `finish`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group. Recorded under the
    /// qualified name `"{group}/{name}"`.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.sample_size == 0 {
            self.parent.effective_samples()
        } else {
            self.sample_size
        };
        let qualified = format!("{}/{}", self.name, name.as_ref());
        let m = run_one(
            &qualified,
            samples,
            self.parent.effective_nanos(),
            self.parent.quiet,
            &mut f,
        );
        self.parent.measurements.push(m);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Number of independently timed batches whose median is reported.
const BATCHES: usize = 5;

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Total nanoseconds to spend across all timed batches.
    budget_nanos: u64,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times repeated calls of `routine`: a warm-up pass, then
    /// [`BATCHES`] equally sized timed batches. Records the median
    /// batch's ns/iteration, which is robust to a single batch being
    /// descheduled or absorbing a lazy-init cost.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until ~2ms or `samples` iterations.
        let warm_start = Instant::now();
        let mut warm_iters = 0usize;
        while warm_iters < self.samples && warm_start.elapsed() < Duration::from_millis(2) {
            black_box(routine());
            warm_iters += 1;
        }
        // Probe once to size the batches.
        let probe = Instant::now();
        black_box(routine());
        let per = probe.elapsed().as_nanos().max(1) as u64;
        let per_batch_budget = (self.budget_nanos / BATCHES as u64).max(1);
        let iters = ((per_batch_budget / per) as usize).clamp(1, 1_000_000);
        let mut batch_ns: [f64; BATCHES] = [0.0; BATCHES];
        for slot in &mut batch_ns {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            *slot = start.elapsed().as_nanos() as f64 / iters as f64;
        }
        batch_ns.sort_by(|a, b| a.total_cmp(b));
        self.last_ns_per_iter = batch_ns[BATCHES / 2];
    }
}

fn run_one<F>(name: &str, samples: usize, budget_nanos: u64, quiet: bool, f: &mut F) -> Measurement
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        budget_nanos,
        last_ns_per_iter: 0.0,
    };
    f(&mut b);
    if !quiet {
        println!("  {name:<40} {:>14.1} ns/iter (median)", b.last_ns_per_iter);
    }
    Measurement {
        name: name.to_string(),
        median_ns_per_iter: b.last_ns_per_iter,
    }
}

/// Groups benchmark target functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(2)).quiet(true);
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let ms = c.take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "spin");
        assert!(ms[0].median_ns_per_iter > 0.0);
    }

    #[test]
    fn groups_compose_and_qualify_names() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(2)).quiet(true);
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.finish();
        let ms = c.take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "g/noop");
    }

    #[test]
    fn take_measurements_drains() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(1)).quiet(true);
        c.bench_function("a", |b| b.iter(|| 1u64 + 1));
        assert_eq!(c.take_measurements().len(), 1);
        assert!(c.take_measurements().is_empty());
    }

    #[test]
    fn measurement_ordering_is_execution_order() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(1)).quiet(true);
        c.bench_function("first", |b| b.iter(|| 1u64 + 1));
        c.bench_function("second", |b| b.iter(|| 2u64 + 2));
        let names: Vec<_> = c.take_measurements().into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["first", "second"]);
    }
}
