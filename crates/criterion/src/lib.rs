//! A self-contained, offline drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The build environment cannot fetch crates.io dependencies, so this
//! crate supplies `Criterion`, `black_box`, `criterion_group!` and
//! `criterion_main!` with compatible signatures. Measurement is
//! intentionally simple — a warm-up pass followed by a timed batch,
//! reporting mean ns/iteration — which is enough for `cargo bench` to
//! exercise every pipeline and print comparable numbers, without
//! criterion's statistical machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Runs a standalone benchmark. Accepts anything string-like for the
    /// id, as the real crate does.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), self.effective_samples(), &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: 0,
        }
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            50
        } else {
            self.sample_size
        }
    }
}

/// A group of related benchmarks (supports `sample_size` and `finish`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.sample_size == 0 {
            self.parent.effective_samples()
        } else {
            self.sample_size
        };
        run_one(name.as_ref(), samples, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until ~2ms or `samples` iterations.
        let warm_start = Instant::now();
        let mut warm_iters = 0usize;
        while warm_iters < self.samples && warm_start.elapsed() < Duration::from_millis(2) {
            black_box(routine());
            warm_iters += 1;
        }
        // Measured batch: enough iterations for ~10ms, bounded.
        let probe = Instant::now();
        black_box(routine());
        let per = probe.elapsed().as_nanos().max(1);
        let iters = ((10_000_000 / per) as usize).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F>(name: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        last_ns_per_iter: 0.0,
    };
    f(&mut b);
    println!("  {name:<40} {:>14.1} ns/iter", b.last_ns_per_iter);
}

/// Groups benchmark target functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.finish();
    }
}
